//! Property-based tests for the baseline methods.

use dtucker_baselines::{hooi, hosvd, st_hosvd, HooiConfig};
use dtucker_tensor::random::low_rank_plus_noise;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn case() -> impl Strategy<Value = (Vec<usize>, usize, f64, u64)> {
    (
        proptest::collection::vec(5usize..=14, 3),
        2usize..=3,
        0.0f64..0.15,
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn hooi_never_worse_than_hosvd((shape, rank, noise, seed) in case()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks = vec![rank.min(*shape.iter().min().unwrap()); 3];
        let x = low_rank_plus_noise(&shape, &ranks, noise, &mut rng).unwrap();

        let h = hosvd(&x, &ranks).unwrap().decomposition;
        let mut cfg = HooiConfig::new(&ranks);
        cfg.seed = seed;
        let a = hooi(&x, &cfg).unwrap().decomposition;

        let e_hosvd = h.relative_error_sq(&x).unwrap();
        let e_hooi = a.relative_error_sq(&x).unwrap();
        // HOOI refines the HOSVD init, so it can only improve (up to the
        // convergence tolerance).
        prop_assert!(e_hooi <= e_hosvd + 1e-6, "hooi {} vs hosvd {}", e_hooi, e_hosvd);
    }

    #[test]
    fn one_shot_methods_agree_on_clean_low_rank((shape, rank, _n, seed) in case()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5);
        let ranks = vec![rank.min(*shape.iter().min().unwrap()); 3];
        let x = low_rank_plus_noise(&shape, &ranks, 0.0, &mut rng).unwrap();
        let e1 = hosvd(&x, &ranks).unwrap().decomposition.relative_error_sq(&x).unwrap();
        let e2 = st_hosvd(&x, &ranks).unwrap().decomposition.relative_error_sq(&x).unwrap();
        // Both are exact on an exactly low-rank tensor.
        prop_assert!(e1 < 1e-8, "hosvd {}", e1);
        prop_assert!(e2 < 1e-8, "st-hosvd {}", e2);
    }

    #[test]
    fn hosvd_factors_always_orthonormal((shape, rank, noise, seed) in case()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB6);
        let ranks = vec![rank.min(*shape.iter().min().unwrap()); 3];
        let x = low_rank_plus_noise(&shape, &ranks, noise, &mut rng).unwrap();
        let d = st_hosvd(&x, &ranks).unwrap().decomposition;
        prop_assert!(d.factors_orthonormal(1e-6));
        // Core energy never exceeds the tensor's.
        prop_assert!(d.core.fro_norm_sq() <= x.fro_norm_sq() * (1.0 + 1e-9));
    }
}
