//! RTD: randomized Tucker decomposition (Che & Wei 2019).
//!
//! A one-pass randomized sequentially-truncated HOSVD: for each mode, an
//! orthonormal basis of the (current, already-projected) unfolding's range
//! is found with a Gaussian sketch; the leading `Jₙ` directions are
//! extracted from the small projected matrix and the tensor is shrunk
//! before the next mode.

use crate::common::{fit_indicator, validate_ranks, MethodOutput};
use dtucker_core::error::Result;
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::gemm::{matmul, t_matmul};
use dtucker_linalg::rsvd::randomized_range_finder;
use dtucker_linalg::svd::truncated_svd_gram;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::ttm::ttm_t;
use dtucker_tensor::unfold::unfold;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// RTD configuration.
#[derive(Debug, Clone)]
pub struct RtdConfig {
    /// Target multilinear ranks.
    pub ranks: Vec<usize>,
    /// Oversampling of the Gaussian range finder.
    pub oversample: usize,
    /// Power iterations of the range finder.
    pub power_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RtdConfig {
    /// Defaults: oversampling 5, one power iteration.
    pub fn new(ranks: &[usize]) -> Self {
        RtdConfig {
            ranks: ranks.to_vec(),
            oversample: 5,
            power_iters: 1,
            seed: 0,
        }
    }
}

/// Runs randomized Tucker decomposition.
pub fn rtd(x: &DenseTensor, cfg: &RtdConfig) -> Result<MethodOutput> {
    validate_ranks(x.shape(), &cfg.ranks)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cur = x.clone();
    let mut factors = Vec::with_capacity(x.order());
    for n in 0..x.order() {
        let unf = unfold(&cur, n)?;
        let j = cfg.ranks[n];
        let l = (j + cfg.oversample).min(unf.rows().min(unf.cols()));
        // Range finder on the current unfolding, then extract the leading
        // j directions from the small projected matrix B = QᵀU.
        let q = randomized_range_finder(&unf, l, cfg.power_iters, &mut rng);
        let b = t_matmul(&q, &unf);
        let inner = truncated_svd_gram(&b, j)?;
        let a = matmul(&q, &inner.u);
        cur = ttm_t(&cur, &a, n)?;
        factors.push(a);
    }
    let mut trace = ConvergenceTrace::default();
    trace.record(fit_indicator(x.fro_norm_sq(), cur.fro_norm_sq()), 0.0);
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core: cur, factors },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn rtd_exact_on_low_rank() {
        let x = noisy(&[20, 16, 12], &[3, 3, 3], 0.0, 1);
        let out = rtd(&x, &RtdConfig::new(&[3, 3, 3])).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-9);
        assert!(out.decomposition.factors_orthonormal(1e-7));
    }

    #[test]
    fn rtd_noisy_close_to_st_hosvd() {
        let x = noisy(&[24, 20, 14], &[4, 4, 4], 0.1, 2);
        let randomized = rtd(&x, &RtdConfig::new(&[4, 4, 4]))
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        let deterministic = crate::hosvd::st_hosvd(&x, &[4, 4, 4])
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        assert!(
            randomized < deterministic * 1.5 + 0.01,
            "rtd {randomized} vs st-hosvd {deterministic}"
        );
    }

    #[test]
    fn rtd_deterministic_given_seed() {
        let x = noisy(&[12, 10, 8], &[2, 2, 2], 0.05, 3);
        let cfg = RtdConfig::new(&[2, 2, 2]);
        let a = rtd(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        let b = rtd(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rtd_validates() {
        let x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 4);
        assert!(rtd(&x, &RtdConfig::new(&[2, 2])).is_err());
        assert!(rtd(&x, &RtdConfig::new(&[2, 9, 2])).is_err());
    }

    #[test]
    fn rtd_order4() {
        let x = noisy(&[8, 7, 6, 5], &[2, 2, 2, 2], 0.0, 5);
        let out = rtd(&x, &RtdConfig::new(&[2, 2, 2, 2])).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-8);
    }
}
