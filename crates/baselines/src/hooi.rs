//! Tucker-ALS (HOOI): the reference algorithm every faster method is
//! compared against. Operates directly on the raw dense tensor.

use crate::common::{fit_indicator, random_factors, validate_ranks, MethodOutput};
use crate::hosvd::hosvd_factors;
use dtucker_core::error::{CoreError, Result};
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::svd::leading_left_singular_vectors;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::ttm::{multi_ttm_t, ttm_t};
use dtucker_tensor::unfold::unfold;

/// How HOOI seeds its factor matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HooiInit {
    /// Random orthonormal matrices (cheapest start).
    Random,
    /// Truncated-HOSVD factors (the Tensor Toolbox default).
    Hosvd,
}

/// HOOI configuration.
#[derive(Debug, Clone)]
pub struct HooiConfig {
    /// Target multilinear ranks.
    pub ranks: Vec<usize>,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Tolerance on the fit-indicator change.
    pub tolerance: f64,
    /// RNG seed (random init only).
    pub seed: u64,
    /// Initialization strategy.
    pub init: HooiInit,
}

impl HooiConfig {
    /// Paper-protocol defaults: 100 sweeps max, tolerance `1e-4`, HOSVD
    /// initialization.
    pub fn new(ranks: &[usize]) -> Self {
        HooiConfig {
            ranks: ranks.to_vec(),
            max_iters: 100,
            tolerance: 1e-4,
            seed: 0,
            init: HooiInit::Hosvd,
        }
    }
}

/// Runs HOOI on a dense tensor.
pub fn hooi(x: &DenseTensor, cfg: &HooiConfig) -> Result<MethodOutput> {
    validate_ranks(x.shape(), &cfg.ranks)?;
    let n_modes = x.order();
    let norm_x_sq = x.fro_norm_sq();
    let mut factors = match cfg.init {
        HooiInit::Random => random_factors(x.shape(), &cfg.ranks, cfg.seed),
        HooiInit::Hosvd => hosvd_factors(x, &cfg.ranks)?,
    };
    let mut trace = ConvergenceTrace::default();
    let mut core: Option<DenseTensor> = None;

    for _sweep in 0..cfg.max_iters.max(1) {
        for n in 0..n_modes {
            let y = multi_ttm_t(x, &factors, n)?;
            factors[n] = leading_left_singular_vectors(&unfold(&y, n)?, cfg.ranks[n])?;
            if n == n_modes - 1 {
                // Reuse the last chain for the core: G = Y ×_N A⁽ᴺ⁾ᵀ.
                core = Some(ttm_t(&y, &factors[n], n)?);
            }
        }
        let g = core.as_ref().ok_or_else(|| CoreError::Internal {
            details: "HOOI sweep finished without computing a core".into(),
        })?;
        let fit = fit_indicator(norm_x_sq, g.fro_norm_sq());
        if trace.record(fit, cfg.tolerance) {
            break;
        }
    }
    let core = core.ok_or_else(|| CoreError::Internal {
        details: "HOOI ran zero sweeps".into(),
    })?;
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core, factors },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn hooi_exact_on_low_rank() {
        let x = noisy(&[15, 12, 10], &[3, 3, 3], 0.0, 1);
        let out = hooi(&x, &HooiConfig::new(&[3, 3, 3])).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-10);
        assert!(out.trace.converged);
        assert!(out.decomposition.factors_orthonormal(1e-7));
    }

    #[test]
    fn hooi_random_init_also_works() {
        let x = noisy(&[15, 12, 10], &[3, 3, 3], 0.0, 2);
        let mut cfg = HooiConfig::new(&[3, 3, 3]);
        cfg.init = HooiInit::Random;
        cfg.seed = 3;
        let out = hooi(&x, &cfg).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-9);
    }

    #[test]
    fn hooi_noisy_near_optimal() {
        let noise = 0.1f64;
        let x = noisy(&[20, 18, 12], &[3, 3, 3], noise, 4);
        let out = hooi(&x, &HooiConfig::new(&[3, 3, 3])).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        let optimal = noise * noise / (1.0 + noise * noise);
        assert!(err < 1.2 * optimal + 1e-4, "err {err} vs optimal {optimal}");
    }

    #[test]
    fn hooi_order4() {
        let x = noisy(&[8, 7, 6, 5], &[2, 2, 2, 2], 0.0, 5);
        let out = hooi(&x, &HooiConfig::new(&[2, 2, 2, 2])).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-10);
        assert_eq!(out.decomposition.core.shape(), &[2, 2, 2, 2]);
    }

    #[test]
    fn hooi_validates() {
        let x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 6);
        assert!(hooi(&x, &HooiConfig::new(&[2, 2])).is_err());
        assert!(hooi(&x, &HooiConfig::new(&[9, 2, 2])).is_err());
    }

    #[test]
    fn hooi_fit_non_increasing() {
        let x = noisy(&[16, 14, 10], &[3, 3, 3], 0.3, 7);
        let out = hooi(&x, &HooiConfig::new(&[3, 3, 3])).unwrap();
        for w in out.trace.sweep_fits.windows(2) {
            assert!(w[1] <= w[0] + 1e-8, "{:?}", out.trace.sweep_fits);
        }
    }
}
