//! Tucker-ts (Malik & Becker 2018): Tucker ALS on TensorSketched least
//! squares.
//!
//! Preprocessing makes **one pass** over the raw tensor per mode, computing
//! the sketched unfoldings `X₍ₙ₎Sₙᵀ` plus one sketch of `vec(X)`; the ALS
//! iterations then never touch the tensor again. Factor updates solve the
//! sketched least-squares problem
//!
//! `A⁽ⁿ⁾ ← (X₍ₙ₎Sₙᵀ) · pinv(G₍ₙ₎ (Sₙ K_n)ᵀ)`,  `K_n = ⊗_{k≠n} A⁽ᵏ⁾`,
//!
//! where `Sₙ K_n` is computed via the TensorSketch FFT identity without
//! forming the Kronecker product. The core solves a sketched LS against
//! `S₂ vec(X)`.

use crate::common::{random_factors, validate_ranks, MethodOutput};
use dtucker_core::error::Result;
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::cholesky::Cholesky;
use dtucker_linalg::gemm::{matmul, matmul_t, t_matmul};
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::svd::pinv;
use dtucker_sketch::TensorSketch;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::unfold::unfold;

/// Tucker-ts configuration.
#[derive(Debug, Clone)]
pub struct TuckerTsConfig {
    /// Target multilinear ranks.
    pub ranks: Vec<usize>,
    /// Sketch-size multiplier: `m₁ = k·Π_{k≠n}Jₖ`, `m₂ = k·ΠJₖ`
    /// (rounded up to powers of two).
    pub k_factor: usize,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Tolerance on the sketched-residual change.
    pub tolerance: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TuckerTsConfig {
    /// Defaults: `k = 10` (the paper's sketch multiplier), 20 sweeps,
    /// tolerance `1e-4`. The sketched residual plateaus within a handful of
    /// sweeps and then oscillates at sketch-noise level, so a tight sweep
    /// cap plus the keep-best safeguard is both faster and as accurate as a
    /// large cap.
    pub fn new(ranks: &[usize]) -> Self {
        TuckerTsConfig {
            ranks: ranks.to_vec(),
            k_factor: 10,
            max_iters: 20,
            tolerance: 1e-4,
            seed: 0,
        }
    }
}

/// The preprocessed (sketched) representation: everything the iterations
/// need, with the raw tensor discarded.
#[derive(Debug, Clone)]
pub struct SketchedTensor {
    /// Original shape.
    pub shape: Vec<usize>,
    /// Per-mode TensorSketch over dims `(I_k)_{k≠n}`.
    pub mode_sketches: Vec<TensorSketch>,
    /// Per-mode sketched unfoldings `X₍ₙ₎Sₙᵀ` of shape `Iₙ × m₁`.
    pub sketched_unfoldings: Vec<Matrix>,
    /// TensorSketch over all dims (for the core update).
    pub full_sketch: TensorSketch,
    /// `S₂ vec(X)` of length `m₂`.
    pub sketched_vec: Vec<f64>,
    /// `‖X‖²_F` (for reporting).
    pub norm_x_sq: f64,
}

impl SketchedTensor {
    /// Bytes held by the preprocessed representation (sketched unfoldings +
    /// sketched vec; the hash tables are counted too).
    pub fn memory_bytes(&self) -> usize {
        let mats: usize = self
            .sketched_unfoldings
            .iter()
            .map(|m| m.len() * std::mem::size_of::<f64>())
            .sum();
        let hashes: usize = self
            .mode_sketches
            .iter()
            .chain(std::iter::once(&self.full_sketch))
            .flat_map(|ts| ts.components())
            .map(|cs| cs.input_dim() * (std::mem::size_of::<usize>() + std::mem::size_of::<f64>()))
            .sum();
        mats + self.sketched_vec.len() * std::mem::size_of::<f64>() + hashes
    }
}

/// Rounds a sketch size up to a power of two (fast FFT path), capped.
fn sketch_size(k_factor: usize, prod_ranks: usize) -> usize {
    (k_factor.max(2) * prod_ranks)
        .next_power_of_two()
        .min(1 << 20)
}

/// One pass per mode over the tensor: computes every `X₍ₙ₎Sₙᵀ` plus
/// `S₂ vec(X)`.
pub fn preprocess(x: &DenseTensor, cfg: &TuckerTsConfig) -> Result<SketchedTensor> {
    validate_ranks(x.shape(), &cfg.ranks)?;
    let shape = x.shape().to_vec();
    let n_modes = shape.len();
    let prod_ranks: usize = cfg.ranks.iter().product();

    let mut mode_sketches = Vec::with_capacity(n_modes);
    let mut sketched_unfoldings = Vec::with_capacity(n_modes);
    for n in 0..n_modes {
        let other_dims: Vec<usize> = (0..n_modes).filter(|&k| k != n).map(|k| shape[k]).collect();
        let other_ranks: usize = (0..n_modes)
            .filter(|&k| k != n)
            .map(|k| cfg.ranks[k])
            .product();
        let m1 = sketch_size(cfg.k_factor, other_ranks);
        let ts = TensorSketch::new(&other_dims, m1, cfg.seed ^ ((n as u64 + 1) << 32));
        sketched_unfoldings.push(sketch_unfolding(x, &ts, n));
        mode_sketches.push(ts);
    }

    let m2 = sketch_size(cfg.k_factor, prod_ranks);
    let full_sketch = TensorSketch::new(&shape, m2, cfg.seed ^ 0xF00D);
    let sketched_vec = sketch_full_vec(x, &full_sketch);

    Ok(SketchedTensor {
        shape,
        mode_sketches,
        sketched_unfoldings,
        full_sketch,
        sketched_vec,
        norm_x_sq: x.fro_norm_sq(),
    })
}

/// Computes `X₍ₙ₎ Sᵀ` (`Iₙ × m`) in one pass: every entry lands in bucket
/// `Σ_{k≠n} h_k(i_k) mod m` with sign `Π_{k≠n} s_k(i_k)`.
pub fn sketch_unfolding(x: &DenseTensor, ts: &TensorSketch, mode: usize) -> Matrix {
    let shape = x.shape();
    let n_modes = shape.len();
    let m = ts.sketch_dim();
    let comps = ts.components();
    // Component index for tensor mode k (skipping `mode`).
    let comp_of = |k: usize| if k < mode { k } else { k - 1 };

    let mut out = Matrix::zeros(shape[mode], m);
    let odat = out.as_mut_slice();
    let mut idx = vec![0usize; n_modes];
    // Incrementally maintained combined hash (unreduced) and sign.
    let mut hsum: usize = (0..n_modes)
        .filter(|&k| k != mode)
        .map(|k| comps[comp_of(k)].bucket(0))
        .sum();
    let mut sgn: f64 = (0..n_modes)
        .filter(|&k| k != mode)
        .map(|k| comps[comp_of(k)].sign(0))
        .product();
    for &v in x.as_slice() {
        odat[idx[mode] * m + hsum % m] += sgn * v;
        // Advance the multi-index, updating hash/sign trackers.
        for k in 0..n_modes {
            let old = idx[k];
            idx[k] += 1;
            let wrapped = idx[k] == shape[k];
            if wrapped {
                idx[k] = 0;
            }
            if k != mode {
                let cs = &comps[comp_of(k)];
                hsum = hsum + cs.bucket(idx[k]) - cs.bucket(old);
                sgn *= cs.sign(idx[k]) * cs.sign(old);
            }
            if !wrapped {
                break;
            }
        }
    }
    out
}

/// Computes `S vec(X)` in one pass (hash over **all** modes).
pub fn sketch_full_vec(x: &DenseTensor, ts: &TensorSketch) -> Vec<f64> {
    let shape = x.shape();
    let n_modes = shape.len();
    let m = ts.sketch_dim();
    let comps = ts.components();
    let mut out = vec![0.0f64; m];
    let mut idx = vec![0usize; n_modes];
    let mut hsum: usize = comps.iter().map(|cs| cs.bucket(0)).sum();
    let mut sgn: f64 = comps.iter().map(|cs| cs.sign(0)).product();
    for &v in x.as_slice() {
        out[hsum % m] += sgn * v;
        for k in 0..n_modes {
            let old = idx[k];
            idx[k] += 1;
            let wrapped = idx[k] == shape[k];
            if wrapped {
                idx[k] = 0;
            }
            let cs = &comps[k];
            hsum = hsum + cs.bucket(idx[k]) - cs.bucket(old);
            sgn *= cs.sign(idx[k]) * cs.sign(old);
            if !wrapped {
                break;
            }
        }
    }
    out
}

/// Solves the sketched core LS `min_g ‖(S₂ ⊗A) g − S₂vec(X)‖` and returns
/// `(core, relative sketched residual)`.
fn core_update(
    skt: &SketchedTensor,
    factors: &[Matrix],
    ranks: &[usize],
) -> Result<(DenseTensor, f64)> {
    let mats: Vec<&Matrix> = factors.iter().collect();
    let sk_all = skt.full_sketch.sketch_kron_cols(&mats); // m₂ × ΠJ
                                                          // Normal equations with a Cholesky solve; fall back to the
                                                          // pseudo-inverse if the Gram matrix is numerically singular. The Gram
                                                          // product is the hot spot for order-4 tensors (m2 x (PiJ)^2 flops), so
                                                          // it uses the blocked multi-threaded kernel.
    let g_mat = t_matmul(&sk_all, &sk_all);
    let mut rhs = Matrix::zeros(sk_all.cols(), 1);
    let atb = {
        let mut v = vec![0.0; sk_all.cols()];
        for r in 0..sk_all.rows() {
            let row = sk_all.row(r);
            let b = skt.sketched_vec[r];
            for (vi, &a) in v.iter_mut().zip(row.iter()) {
                *vi += a * b;
            }
        }
        v
    };
    rhs.set_col(0, &atb);
    // Tikhonov ridge: sketched designs can be numerically rank-deficient
    // when factor columns become collinear mid-iteration; an escalating
    // ridge keeps the solve O(P^3) instead of falling back to a dense SVD
    // pseudo-inverse.
    let p_dim = g_mat.rows();
    let trace_avg = (0..p_dim).map(|i| g_mat.get(i, i)).sum::<f64>() / p_dim.max(1) as f64;
    let mut g_vec = None;
    let mut lambda = trace_avg.max(f64::MIN_POSITIVE) * 1e-12;
    for _attempt in 0..8 {
        let mut ridged = g_mat.clone();
        for i in 0..p_dim {
            let d = ridged.get(i, i);
            ridged.set(i, i, d + lambda);
        }
        if let Ok(ch) = Cholesky::new(&ridged) {
            g_vec = Some(ch.solve(&rhs)?.col(0));
            break;
        }
        lambda *= 1e3;
    }
    let g_vec = match g_vec {
        Some(v) => v,
        None => {
            let p = pinv(&g_mat, 1e-12)?;
            matmul(&p, &rhs).col(0)
        }
    };
    // Residual of the sketched system.
    let fitted = sk_all.matvec(&g_vec)?;
    let mut resid_sq = 0.0;
    let mut b_sq = 0.0;
    for (f, &b) in fitted.iter().zip(skt.sketched_vec.iter()) {
        resid_sq += (f - b) * (f - b);
        b_sq += b * b;
    }
    let rel = if b_sq == 0.0 {
        0.0
    } else {
        (resid_sq / b_sq).sqrt()
    };
    // g is indexed by the core multi-index with mode 0 fastest — exactly the
    // Fortran element order of the core tensor.
    let core = DenseTensor::from_vec(ranks, g_vec)?;
    Ok((core, rel))
}

/// Core update shared with Tucker-ttmts (same sketched LS).
pub(crate) fn core_update_for_ttmts(
    skt: &SketchedTensor,
    factors: &[Matrix],
    ranks: &[usize],
) -> Result<(DenseTensor, f64)> {
    core_update(skt, factors, ranks)
}

/// Runs Tucker-ts end to end (preprocess + iterate).
pub fn tucker_ts(x: &DenseTensor, cfg: &TuckerTsConfig) -> Result<MethodOutput> {
    let skt = preprocess(x, cfg)?;
    tucker_ts_sketched(&skt, cfg)
}

/// Tucker-ts iterations on a preprocessed sketch.
pub fn tucker_ts_sketched(skt: &SketchedTensor, cfg: &TuckerTsConfig) -> Result<MethodOutput> {
    validate_ranks(&skt.shape, &cfg.ranks)?;
    let n_modes = skt.shape.len();
    let mut factors = random_factors(&skt.shape, &cfg.ranks, cfg.seed ^ 0x7573);
    // Initial core from the sketched LS.
    let (mut core, init_rel) = core_update(skt, &factors, &cfg.ranks)?;
    let mut trace = ConvergenceTrace::default();
    // Sketched ALS can oscillate; keep the best iterate seen (by sketched
    // residual) and return that, which is the standard safeguard for
    // randomized ALS solvers.
    let mut best = (core.clone(), factors.clone(), init_rel);
    let mut stalled = 0usize;

    for _sweep in 0..cfg.max_iters.max(1) {
        for n in 0..n_modes {
            let mats: Vec<&Matrix> = (0..n_modes)
                .filter(|&k| k != n)
                .map(|k| &factors[k])
                .collect();
            let sk = skt.mode_sketches[n].sketch_kron_cols(&mats); // m₁ × Π_{k≠n}J
            drop(mats);
            let g_n = unfold(&core, n)?; // Jₙ × Π_{k≠n}J
            let b_s = matmul_t(&g_n, &sk); // Jₙ × m₁
                                           // Generous pinv cutoff: small singular values of the sketched
                                           // design matrix are dominated by sketch noise, and inverting
                                           // them is what makes unregularized sketched ALS blow up.
            let p = pinv(&b_s, 1e-6)?; // m₁ × Jₙ
            let mut a = matmul(&skt.sketched_unfoldings[n], &p);
            // Normalize factor columns — the core absorbs the scales; this
            // keeps the sketched LS well conditioned across sweeps.
            for c in 0..a.cols() {
                let nrm = dtucker_linalg::norms::fro_norm(&a.col(c));
                if nrm > 0.0 && nrm.is_finite() {
                    let inv = 1.0 / nrm;
                    for r in 0..a.rows() {
                        let v = a.get(r, c);
                        a.set(r, c, v * inv);
                    }
                }
            }
            factors[n] = a;
        }
        let (new_core, rel) = core_update(skt, &factors, &cfg.ranks)?;
        core = new_core;
        if rel < best.2 - 1e-12 {
            best = (core.clone(), factors.clone(), rel);
            stalled = 0;
        } else {
            // Sketch-noise plateau: keep-best makes further sweeps useless.
            stalled += 1;
            if stalled >= 3 {
                break;
            }
        }
        if trace.record(rel, cfg.tolerance) {
            break;
        }
    }
    let (core, factors, _) = best;
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core, factors },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn sketch_unfolding_matches_direct() {
        let x = DenseTensor::from_fn(&[3, 4, 2], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64 * 0.01 + 1.0
        })
        .unwrap();
        for mode in 0..3 {
            let other_dims: Vec<usize> = (0..3)
                .filter(|&k| k != mode)
                .map(|k| x.shape()[k])
                .collect();
            let ts = TensorSketch::new(&other_dims, 8, 5);
            let fast = sketch_unfolding(&x, &ts, mode);
            // Direct route: enumerate entries, compute buckets from scratch.
            let mut slow = Matrix::zeros(x.shape()[mode], 8);
            let mut idx = vec![0usize; 3];
            for &v in x.as_slice() {
                let others: Vec<usize> = (0..3).filter(|&k| k != mode).map(|k| idx[k]).collect();
                let b = ts.bucket(&others);
                let s = ts.sign(&others);
                let cur = slow.get(idx[mode], b);
                slow.set(idx[mode], b, cur + s * v);
                dtucker_tensor::dense::increment_index(&mut idx, x.shape());
            }
            assert!(fast.approx_eq(&slow, 1e-10), "mode {mode}");
        }
    }

    #[test]
    fn sketch_full_vec_matches_direct() {
        let x = DenseTensor::from_fn(&[3, 2, 4], |idx| {
            (idx[0] + 2 * idx[1] + 3 * idx[2]) as f64 * 0.1 - 0.4
        })
        .unwrap();
        let ts = TensorSketch::new(x.shape(), 16, 9);
        let fast = sketch_full_vec(&x, &ts);
        let mut slow = [0.0; 16];
        let mut idx = vec![0usize; 3];
        for &v in x.as_slice() {
            slow[ts.bucket(&idx)] += ts.sign(&idx) * v;
            dtucker_tensor::dense::increment_index(&mut idx, x.shape());
        }
        for t in 0..16 {
            assert!((fast[t] - slow[t]).abs() < 1e-10);
        }
    }

    #[test]
    fn tucker_ts_recovers_low_rank() {
        let x = noisy(&[18, 15, 12], &[2, 2, 2], 0.0, 1);
        let mut cfg = TuckerTsConfig::new(&[2, 2, 2]);
        cfg.k_factor = 12;
        cfg.seed = 2;
        let out = tucker_ts(&x, &cfg).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.05, "error {err}");
    }

    #[test]
    fn tucker_ts_noisy_reasonable() {
        let x = noisy(&[20, 16, 12], &[3, 3, 3], 0.05, 3);
        let mut cfg = TuckerTsConfig::new(&[3, 3, 3]);
        cfg.k_factor = 10;
        cfg.seed = 4;
        let out = tucker_ts(&x, &cfg).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        // Sketched methods trade accuracy for speed; the paper's plots show
        // them strictly above the exact methods. Accept a loose bound.
        assert!(err < 0.25, "error {err}");
    }

    #[test]
    fn preprocessing_memory_smaller_than_dense() {
        let x = noisy(&[40, 30, 20], &[2, 2, 2], 0.0, 5);
        let cfg = TuckerTsConfig::new(&[2, 2, 2]);
        let skt = preprocess(&x, &cfg).unwrap();
        let dense = x.numel() * 8;
        assert!(
            skt.memory_bytes() < dense,
            "sketched {} vs dense {dense}",
            skt.memory_bytes()
        );
        assert!((skt.norm_x_sq - x.fro_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn tucker_ts_validates() {
        let x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 6);
        assert!(tucker_ts(&x, &TuckerTsConfig::new(&[2, 2])).is_err());
    }

    #[test]
    fn sketch_size_rounding() {
        assert_eq!(sketch_size(4, 4), 16);
        assert_eq!(sketch_size(4, 100), 512);
        assert_eq!(sketch_size(1, 3), 8); // k_factor clamped to 2 → 6 → 8
    }
}
