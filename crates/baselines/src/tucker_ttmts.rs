//! Tucker-ttmts (Malik & Becker 2018): the cheaper one-pass variant that
//! replaces the sketched least-squares factor update of Tucker-ts with a
//! sketched **TTM chain**:
//!
//! `Y ≈ X₍ₙ₎ Sₙᵀ · (Sₙ K_n)` approximates `X₍ₙ₎ K_n` (the HOOI chain), and
//! `A⁽ⁿ⁾` is taken as its leading Jₙ left singular vectors. The core still
//! solves the small sketched LS. Faster per sweep, noisier than Tucker-ts —
//! matching the trade-off reported in the paper.

use crate::common::{random_factors, validate_ranks, MethodOutput};
use crate::tucker_ts::{preprocess, SketchedTensor, TuckerTsConfig};
use dtucker_core::error::{CoreError, Result};
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::gemm::matmul;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::svd::leading_left_singular_vectors;
use dtucker_tensor::dense::DenseTensor;

/// Runs Tucker-ttmts end to end (shares [`TuckerTsConfig`] and the
/// preprocessing pass with Tucker-ts).
pub fn tucker_ttmts(x: &DenseTensor, cfg: &TuckerTsConfig) -> Result<MethodOutput> {
    let skt = preprocess(x, cfg)?;
    tucker_ttmts_sketched(&skt, cfg)
}

/// Tucker-ttmts iterations on a preprocessed sketch.
pub fn tucker_ttmts_sketched(skt: &SketchedTensor, cfg: &TuckerTsConfig) -> Result<MethodOutput> {
    validate_ranks(&skt.shape, &cfg.ranks)?;
    let n_modes = skt.shape.len();
    let mut factors = random_factors(&skt.shape, &cfg.ranks, cfg.seed ^ 0x7474);
    let mut trace = ConvergenceTrace::default();
    let mut core: Option<DenseTensor> = None;
    let mut best_rel = f64::INFINITY;
    let mut stalled = 0usize;

    for _sweep in 0..cfg.max_iters.max(1) {
        for n in 0..n_modes {
            let mats: Vec<&Matrix> = (0..n_modes)
                .filter(|&k| k != n)
                .map(|k| &factors[k])
                .collect();
            let sk = skt.mode_sketches[n].sketch_kron_cols(&mats); // m₁ × Π_{k≠n}J
                                                                   // Sketched TTM chain: (X₍ₙ₎Sₙᵀ)(SₙK_n) ≈ X₍ₙ₎K_n.
            let y = matmul(&skt.sketched_unfoldings[n], &sk); // Iₙ × Π_{k≠n}J
            factors[n] = leading_left_singular_vectors(&y, cfg.ranks[n])?;
        }
        let (g, rel) = crate::tucker_ts::core_update_for_ttmts(skt, &factors, &cfg.ranks)?;
        core = Some(g);
        if rel < best_rel - 1e-12 {
            best_rel = rel;
            stalled = 0;
        } else {
            stalled += 1;
            if stalled >= 3 {
                trace.record(rel, cfg.tolerance);
                break;
            }
        }
        if trace.record(rel, cfg.tolerance) {
            break;
        }
    }
    let core = core.ok_or_else(|| CoreError::Internal {
        details: "Tucker-ttmts ran zero sweeps".into(),
    })?;
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core, factors },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn ttmts_recovers_low_rank() {
        let x = noisy(&[18, 15, 12], &[2, 2, 2], 0.0, 1);
        let mut cfg = TuckerTsConfig::new(&[2, 2, 2]);
        cfg.k_factor = 12;
        cfg.seed = 2;
        let out = tucker_ttmts(&x, &cfg).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.05, "error {err}");
        assert!(out.decomposition.factors_orthonormal(1e-7));
    }

    #[test]
    fn ttmts_noisy_reasonable() {
        let x = noisy(&[20, 16, 12], &[3, 3, 3], 0.05, 3);
        let mut cfg = TuckerTsConfig::new(&[3, 3, 3]);
        cfg.k_factor = 10;
        cfg.seed = 4;
        let out = tucker_ttmts(&x, &cfg).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.3, "error {err}");
    }

    #[test]
    fn ttmts_validates() {
        let x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 5);
        assert!(tucker_ttmts(&x, &TuckerTsConfig::new(&[2, 2])).is_err());
    }

    #[test]
    fn ttmts_deterministic() {
        let x = noisy(&[12, 10, 8], &[2, 2, 2], 0.02, 6);
        let cfg = TuckerTsConfig::new(&[2, 2, 2]);
        let a = tucker_ttmts(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        let b = tucker_ttmts(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        assert_eq!(a, b);
    }
}
