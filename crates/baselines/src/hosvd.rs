//! Truncated HOSVD and sequentially truncated HOSVD (ST-HOSVD).

use crate::common::{fit_indicator, validate_ranks, MethodOutput};
use dtucker_core::error::Result;
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::svd::leading_left_singular_vectors;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::ttm::ttm_t;
use dtucker_tensor::unfold::unfold;

/// HOSVD factor matrices only (used as HOOI's initialization).
pub fn hosvd_factors(x: &DenseTensor, ranks: &[usize]) -> Result<Vec<Matrix>> {
    validate_ranks(x.shape(), ranks)?;
    let mut factors = Vec::with_capacity(x.order());
    for n in 0..x.order() {
        factors.push(leading_left_singular_vectors(&unfold(x, n)?, ranks[n])?);
    }
    Ok(factors)
}

/// Truncated HOSVD: each factor from the leading singular vectors of the
/// corresponding unfolding of the **original** tensor, core by projection.
pub fn hosvd(x: &DenseTensor, ranks: &[usize]) -> Result<MethodOutput> {
    let factors = hosvd_factors(x, ranks)?;
    let mut core = x.clone();
    for (n, f) in factors.iter().enumerate() {
        core = ttm_t(&core, f, n)?;
    }
    let mut trace = ConvergenceTrace::default();
    trace.record(fit_indicator(x.fro_norm_sq(), core.fro_norm_sq()), 0.0);
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core, factors },
        trace,
    })
}

/// Sequentially truncated HOSVD: each mode's SVD runs on the
/// already-projected (shrinking) tensor — cheaper than HOSVD and usually at
/// least as accurate (Vannieuwenhoven et al. 2012).
pub fn st_hosvd(x: &DenseTensor, ranks: &[usize]) -> Result<MethodOutput> {
    validate_ranks(x.shape(), ranks)?;
    let mut cur = x.clone();
    let mut factors = Vec::with_capacity(x.order());
    for n in 0..x.order() {
        let f = leading_left_singular_vectors(&unfold(&cur, n)?, ranks[n])?;
        cur = ttm_t(&cur, &f, n)?;
        factors.push(f);
    }
    let mut trace = ConvergenceTrace::default();
    trace.record(fit_indicator(x.fro_norm_sq(), cur.fro_norm_sq()), 0.0);
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core: cur, factors },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn hosvd_exact_on_low_rank() {
        let x = noisy(&[14, 12, 9], &[3, 2, 3], 0.0, 1);
        let out = hosvd(&x, &[3, 2, 3]).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-10);
        assert_eq!(out.decomposition.core.shape(), &[3, 2, 3]);
    }

    #[test]
    fn st_hosvd_exact_on_low_rank() {
        let x = noisy(&[14, 12, 9], &[3, 2, 3], 0.0, 2);
        let out = st_hosvd(&x, &[3, 2, 3]).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-10);
    }

    #[test]
    fn hosvd_error_within_sqrt_n_of_optimal() {
        // HOSVD is quasi-optimal: error ≤ √N × optimal.
        let noise = 0.2f64;
        let x = noisy(&[18, 15, 10], &[3, 3, 3], noise, 3);
        let out = hosvd(&x, &[3, 3, 3]).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        let optimal = noise * noise / (1.0 + noise * noise);
        assert!(
            err <= 3.0 * optimal + 1e-6,
            "err {err} vs optimal {optimal}"
        );
    }

    #[test]
    fn st_hosvd_tracks_hosvd() {
        let x = noisy(&[16, 13, 11], &[3, 3, 3], 0.15, 4);
        let e1 = hosvd(&x, &[3, 3, 3])
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        let e2 = st_hosvd(&x, &[3, 3, 3])
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        assert!((e1 - e2).abs() < 0.05, "hosvd {e1} vs st-hosvd {e2}");
    }

    #[test]
    fn factors_orthonormal() {
        let x = noisy(&[12, 10, 8], &[2, 2, 2], 0.1, 5);
        for out in [
            hosvd(&x, &[2, 2, 2]).unwrap(),
            st_hosvd(&x, &[2, 2, 2]).unwrap(),
        ] {
            assert!(out.decomposition.factors_orthonormal(1e-7));
            assert_eq!(out.trace.iterations(), 1);
        }
    }

    #[test]
    fn validates_ranks() {
        let x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 6);
        assert!(hosvd(&x, &[2, 2]).is_err());
        assert!(st_hosvd(&x, &[9, 2, 2]).is_err());
    }
}
