//! MACH (Tsourakakis 2010): randomized element-wise sparsification followed
//! by Tucker-ALS on the (rescaled) sample.
//!
//! Each entry is kept with probability `p` and scaled by `1/p`, an unbiased
//! estimator of the tensor; HOOI then runs with the first n-mode product of
//! every chain evaluated sparsely in `O(nnz · J)`.

use crate::common::{fit_indicator, random_factors, validate_ranks, MethodOutput};
use dtucker_core::error::{CoreError, Result};
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::svd::leading_left_singular_vectors;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::sparse::SparseTensor;
use dtucker_tensor::ttm::ttm_t;
use dtucker_tensor::unfold::unfold;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MACH configuration.
#[derive(Debug, Clone)]
pub struct MachConfig {
    /// Target multilinear ranks.
    pub ranks: Vec<usize>,
    /// Keep probability `p ∈ (0, 1]`.
    pub sample_rate: f64,
    /// Maximum ALS sweeps.
    pub max_iters: usize,
    /// Tolerance on the fit-indicator change.
    pub tolerance: f64,
    /// RNG seed (sampling and initialization).
    pub seed: u64,
}

impl MachConfig {
    /// Defaults: 10% sampling, 100 sweeps, tolerance `1e-4`.
    pub fn new(ranks: &[usize]) -> Self {
        MachConfig {
            ranks: ranks.to_vec(),
            sample_rate: 0.1,
            max_iters: 100,
            tolerance: 1e-4,
            seed: 0,
        }
    }
}

/// Sparsifies `x` per MACH. Exposed separately so the space-cost experiment
/// can account for the preprocessed representation.
pub fn mach_sample(x: &DenseTensor, cfg: &MachConfig) -> Result<SparseTensor> {
    if !(0.0..=1.0).contains(&cfg.sample_rate) || cfg.sample_rate == 0.0 {
        return Err(CoreError::InvalidConfig {
            details: format!("sample rate {} must be in (0, 1]", cfg.sample_rate),
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    Ok(SparseTensor::sample_from_dense(
        x,
        cfg.sample_rate,
        &mut rng,
    )?)
}

/// Runs MACH: sample, then HOOI on the sample.
pub fn mach(x: &DenseTensor, cfg: &MachConfig) -> Result<MethodOutput> {
    validate_ranks(x.shape(), &cfg.ranks)?;
    let sample = mach_sample(x, cfg)?;
    hooi_on_sample(&sample, cfg)
}

/// HOOI on a pre-sampled sparse tensor.
pub fn hooi_on_sample(sample: &SparseTensor, cfg: &MachConfig) -> Result<MethodOutput> {
    validate_ranks(sample.shape(), &cfg.ranks)?;
    let n_modes = sample.order();
    let norm_sq = sample.fro_norm_sq();
    let mut factors = random_factors(sample.shape(), &cfg.ranks, cfg.seed ^ 0x4D41_4348);
    let mut trace = ConvergenceTrace::default();
    let mut core: Option<DenseTensor> = None;

    for _sweep in 0..cfg.max_iters.max(1) {
        for n in 0..n_modes {
            // Contract one mode sparsely (pick the first k ≠ n), the rest
            // densely on the already-small intermediate.
            let first = (0..n_modes)
                .find(|&k| k != n)
                .ok_or_else(|| CoreError::InvalidConfig {
                    details: "MACH requires an order ≥ 2 tensor".into(),
                })?;
            let mut y = sample.ttm_t(&factors[first], first)?;
            for k in 0..n_modes {
                if k != n && k != first {
                    y = ttm_t(&y, &factors[k], k)?;
                }
            }
            factors[n] = leading_left_singular_vectors(&unfold(&y, n)?, cfg.ranks[n])?;
            if n == n_modes - 1 {
                core = Some(ttm_t(&y, &factors[n], n)?);
            }
        }
        let g = core.as_ref().ok_or_else(|| CoreError::Internal {
            details: "MACH sweep finished without computing a core".into(),
        })?;
        let fit = fit_indicator(norm_sq, g.fro_norm_sq());
        if trace.record(fit, cfg.tolerance) {
            break;
        }
    }
    let core = core.ok_or_else(|| CoreError::Internal {
        details: "MACH ran zero sweeps".into(),
    })?;
    Ok(MethodOutput {
        decomposition: TuckerDecomp { core, factors },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn mach_full_sampling_matches_hooi_accuracy() {
        let x = noisy(&[14, 12, 10], &[3, 3, 3], 0.0, 1);
        let mut cfg = MachConfig::new(&[3, 3, 3]);
        cfg.sample_rate = 1.0;
        let out = mach(&x, &cfg).unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-9);
    }

    #[test]
    fn mach_subsampled_degrades_gracefully() {
        let x = noisy(&[20, 18, 14], &[3, 3, 3], 0.01, 2);
        let mut cfg = MachConfig::new(&[3, 3, 3]);
        cfg.sample_rate = 0.5;
        let out = mach(&x, &cfg).unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        // Half the entries: noticeably worse than exact but still a usable
        // approximation of a strongly low-rank tensor.
        assert!(err < 0.5, "error {err}");
        // And full sampling must be better.
        cfg.sample_rate = 1.0;
        let full = mach(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        assert!(full <= err + 1e-6, "full {full} vs half {err}");
    }

    #[test]
    fn mach_validates() {
        let x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 3);
        let mut cfg = MachConfig::new(&[2, 2, 2]);
        cfg.sample_rate = 0.0;
        assert!(mach(&x, &cfg).is_err());
        cfg.sample_rate = 1.5;
        assert!(mach(&x, &cfg).is_err());
        assert!(mach(&x, &MachConfig::new(&[2, 2])).is_err());
    }

    #[test]
    fn sample_memory_is_proportional_to_rate() {
        let x = noisy(&[20, 20, 10], &[2, 2, 2], 0.1, 4);
        let mut cfg = MachConfig::new(&[2, 2, 2]);
        cfg.sample_rate = 0.25;
        let s = mach_sample(&x, &cfg).unwrap();
        let frac = s.nnz() as f64 / x.numel() as f64;
        assert!((frac - 0.25).abs() < 0.05, "kept {frac}");
    }

    #[test]
    fn mach_deterministic() {
        let x = noisy(&[10, 9, 8], &[2, 2, 2], 0.05, 5);
        let cfg = MachConfig::new(&[2, 2, 2]);
        let a = mach(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        let b = mach(&x, &cfg)
            .unwrap()
            .decomposition
            .relative_error_sq(&x)
            .unwrap();
        assert_eq!(a, b);
    }
}
