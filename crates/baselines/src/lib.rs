//! # dtucker-baselines
//!
//! The comparison methods from the D-Tucker evaluation, implemented from
//! scratch on the same substrates as D-Tucker itself:
//!
//! * [`hooi`] — Tucker-ALS / HOOI (the exact reference);
//! * [`hosvd`] — truncated HOSVD and ST-HOSVD;
//! * [`mach`] — MACH: element-wise sparsification + ALS on the sample
//!   (Tsourakakis 2010);
//! * [`rtd`] — randomized Tucker decomposition (Che & Wei 2019);
//! * [`tucker_ts`] / [`tucker_ttmts`] — TensorSketch methods
//!   (Malik & Becker 2018).
//!
//! Every method returns a [`common::MethodOutput`] holding a
//! `dtucker_core::TuckerDecomp` plus its convergence trace, so the
//! experiment harness can treat all methods uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

/// Shared helpers: rank validation, random factors, `MethodOutput`.
pub mod common;
/// Tucker-ALS (HOOI), the reference baseline.
pub mod hooi;
/// Truncated higher-order SVD (one-pass, no iteration).
pub mod hosvd;
/// MACH: randomized entry sparsification + sparse HOOI.
pub mod mach;
/// Randomized Tucker via per-mode sketched range finders.
pub mod rtd;
/// Tucker-ts: TensorSketch-accelerated ALS.
pub mod tucker_ts;
/// Tucker-ttmts: the cheaper sketched-TTM-chain variant.
pub mod tucker_ttmts;

pub use common::MethodOutput;
pub use hooi::{hooi, HooiConfig, HooiInit};
pub use hosvd::{hosvd, st_hosvd};
pub use mach::{mach, MachConfig};
pub use rtd::{rtd, RtdConfig};
pub use tucker_ts::{tucker_ts, TuckerTsConfig};
pub use tucker_ttmts::tucker_ttmts;
