//! Shared plumbing for the baseline Tucker methods.

use dtucker_core::error::{CoreError, Result};
use dtucker_core::trace::ConvergenceTrace;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::qr::orthonormalize;
use dtucker_linalg::random::gaussian_matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Common result shape for every baseline.
#[derive(Debug, Clone)]
pub struct MethodOutput {
    /// The decomposition.
    pub decomposition: TuckerDecomp,
    /// Convergence record (single entry for one-shot methods).
    pub trace: ConvergenceTrace,
}

/// Validates a ranks vector against a tensor shape.
pub fn validate_ranks(shape: &[usize], ranks: &[usize]) -> Result<()> {
    if ranks.len() != shape.len() {
        return Err(CoreError::InvalidConfig {
            details: format!("{} ranks for an order-{} tensor", ranks.len(), shape.len()),
        });
    }
    for (n, (&j, &i)) in ranks.iter().zip(shape.iter()).enumerate() {
        if j == 0 || j > i {
            return Err(CoreError::InvalidConfig {
                details: format!("rank {j} invalid for mode {n} of dimensionality {i}"),
            });
        }
    }
    Ok(())
}

/// Random orthonormal factor matrices, seeded.
pub fn random_factors(shape: &[usize], ranks: &[usize], seed: u64) -> Vec<Matrix> {
    let mut rng = StdRng::seed_from_u64(seed);
    shape
        .iter()
        .zip(ranks.iter())
        .map(|(&i, &j)| orthonormalize(&gaussian_matrix(i, j, &mut rng)))
        .collect()
}

/// The standard fit indicator `sqrt(max(‖X‖² − ‖G‖², 0))/‖X‖`.
pub fn fit_indicator(norm_x_sq: f64, core_norm_sq: f64) -> f64 {
    let nx = norm_x_sq.max(f64::MIN_POSITIVE);
    (nx - core_norm_sq).max(0.0).sqrt() / nx.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_ranks_cases() {
        assert!(validate_ranks(&[10, 8], &[3, 2]).is_ok());
        assert!(validate_ranks(&[10, 8], &[3]).is_err());
        assert!(validate_ranks(&[10, 8], &[0, 2]).is_err());
        assert!(validate_ranks(&[10, 8], &[11, 2]).is_err());
    }

    #[test]
    fn random_factors_orthonormal_and_seeded() {
        let f1 = random_factors(&[12, 9], &[3, 2], 5);
        let f2 = random_factors(&[12, 9], &[3, 2], 5);
        assert_eq!(f1[0], f2[0]);
        for f in &f1 {
            assert!(f.has_orthonormal_cols(1e-9));
        }
        assert_eq!(f1[0].shape(), (12, 3));
    }

    #[test]
    fn fit_indicator_bounds() {
        assert_eq!(fit_indicator(4.0, 4.0), 0.0);
        assert!((fit_indicator(4.0, 0.0) - 1.0).abs() < 1e-12);
        // Numerical overshoot clamps to zero.
        assert_eq!(fit_indicator(4.0, 4.1), 0.0);
    }
}
