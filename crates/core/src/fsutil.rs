//! Crash-atomic file writing, shared by every writer in the workspace.
//!
//! This module is the canonical import path for the temp + fsync + rename
//! pattern: the store's artifact writers, the CLI, and the `exp_*` bench
//! binaries all write through here, and the `atomic-write-required` lint
//! rule rejects raw `File::create` / `fs::write` anywhere else. The
//! implementation lives in [`dtucker_tensor::io`] (the lowest crate that
//! touches the filesystem — `dtucker-core` sits above it in the dependency
//! graph, so the helper is re-exported rather than duplicated).

use std::path::Path;

pub use dtucker_tensor::io::atomic_write;

/// [`atomic_write`] for text payloads (JSON reports, CSV result tables).
pub fn atomic_write_str(path: impl AsRef<Path>, text: &str) -> std::io::Result<()> {
    atomic_write(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_writer_round_trips() {
        let dir = std::env::temp_dir().join("dtucker-fsutil-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        atomic_write_str(&path, "{\"ok\":true}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        atomic_write_str(&path, "v2").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
