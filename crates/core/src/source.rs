//! Out-of-core slice sourcing: the [`SliceSource`] abstraction.
//!
//! D-Tucker's approximation phase only ever needs one frontal slice
//! `X_l ∈ R^{I₁×I₂}` at a time, so the full `DenseTensor` never has to be
//! resident: anything that can produce slices **in the internal (permuted)
//! mode order** can feed [`SlicedTensor::compress_source`], which loads
//! slices in bounded chunks and keeps only the compressed output. Peak
//! memory is `O(I₁·I₂·chunk + compressed)` instead of `O(I₁·I₂·L)`.
//!
//! Two implementations live here:
//!
//! * [`InMemorySource`] — wraps a [`DenseTensor`] (the classic path);
//! * [`SyntheticSource`] — generates seeded low-rank slices on demand, so
//!   benchmarks can exercise tensors far larger than RAM.
//!
//! The chunked on-disk reader over `.dten` files (`DtenSliceSource`) lives
//! in the `dtucker-store` crate, which re-exports this trait.
//!
//! ## Contract
//!
//! For a virtual tensor `X` with **original** shape `S` and permutation
//! `perm` (internal position → original mode):
//!
//! 1. [`shape`](SliceSource::shape) is the permuted shape
//!    (`shape[p] = S[perm[p]]`), with at least two modes;
//! 2. [`load_slice`](SliceSource::load_slice) returns frontal slice `l` of
//!    the permuted tensor as an `I₁×I₂` row-major [`Matrix`], slices
//!    indexed in Fortran order over the trailing internal modes;
//! 3. [`fro_norm_sq`](SliceSource::fro_norm_sq) must equal
//!    `DenseTensor::fro_norm_sq()` of the original tensor **bit-for-bit**
//!    (use `dtucker_linalg::norms::FroNormAccumulator` over the original
//!    Fortran element order) — the value seeds the iteration phase's
//!    convergence functional, so an inexact norm would break the
//!    bit-identity guarantee between in-memory and out-of-core runs.
//!
//! [`SlicedTensor::compress_source`]: crate::slices::SlicedTensor::compress_source

use crate::error::{CoreError, Result};
use crate::slices::slice_seed;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::norms::FroNormAccumulator;
use dtucker_linalg::qr::orthonormalize;
use dtucker_linalg::random::gaussian_matrix;
use dtucker_linalg::svd::scale_cols;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::unfold::{descending_mode_order, permute};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// On-demand producer of frontal slices in internal (permuted) mode order.
///
/// Methods take `&mut self` because implementations may hold I/O cursors or
/// lazily computed caches; the chunked compression driver loads slices
/// serially and only fans out the (pure) per-slice SVDs.
pub trait SliceSource {
    /// Shape in the internal (permuted) mode order.
    fn shape(&self) -> &[usize];

    /// Mode permutation: `perm()[p]` is the original mode stored at
    /// internal position `p`.
    fn perm(&self) -> &[usize];

    /// Number of frontal slices `L = I₃⋯I_N` (1 for order-2 tensors).
    fn num_slices(&self) -> usize {
        self.shape()[2..].iter().product()
    }

    /// The shape in the **original** mode order (derived from
    /// [`shape`](Self::shape) and [`perm`](Self::perm)).
    fn original_shape(&self) -> Vec<usize> {
        let shape = self.shape();
        let perm = self.perm();
        let mut orig = vec![0usize; shape.len()];
        for (p, &m) in perm.iter().enumerate() {
            orig[m] = shape[p];
        }
        orig
    }

    /// Loads frontal slice `l` as an `I₁ × I₂` row-major matrix.
    fn load_slice(&mut self, l: usize) -> Result<Matrix>;

    /// Loads the contiguous slice range `start..end`. Chunked readers
    /// override this to batch their I/O; the default calls
    /// [`load_slice`](Self::load_slice) per index.
    fn load_slices(&mut self, start: usize, end: usize) -> Result<Vec<Matrix>> {
        (start..end).map(|l| self.load_slice(l)).collect()
    }

    /// `‖X‖²_F` of the original tensor, bit-identical to
    /// `DenseTensor::fro_norm_sq()` on the materialized tensor.
    fn fro_norm_sq(&mut self) -> Result<f64>;

    /// Bytes one resident slice occupies (for peak-memory accounting).
    fn slice_bytes(&self) -> usize {
        self.shape()[0] * self.shape()[1] * std::mem::size_of::<f64>()
    }
}

/// [`SliceSource`] over a resident [`DenseTensor`] (permuted once at
/// construction). This is what the classic `SlicedTensor::compress` path
/// uses under the hood.
#[derive(Debug, Clone)]
pub struct InMemorySource {
    internal: DenseTensor,
    perm: Vec<usize>,
    norm_x_sq: f64,
}

impl InMemorySource {
    /// Wraps a tensor with the paper's default reordering (two largest
    /// modes first).
    pub fn new(x: &DenseTensor) -> Result<Self> {
        Self::with_perm(x, &descending_mode_order(x.shape()))
    }

    /// Wraps a tensor with an explicit mode permutation.
    pub fn with_perm(x: &DenseTensor, perm: &[usize]) -> Result<Self> {
        let norm_x_sq = x.fro_norm_sq();
        let internal = permute(x, perm)?;
        Ok(InMemorySource {
            internal,
            perm: perm.to_vec(),
            norm_x_sq,
        })
    }
}

impl SliceSource for InMemorySource {
    fn shape(&self) -> &[usize] {
        self.internal.shape()
    }

    fn perm(&self) -> &[usize] {
        &self.perm
    }

    fn num_slices(&self) -> usize {
        self.internal.num_frontal_slices()
    }

    fn load_slice(&mut self, l: usize) -> Result<Matrix> {
        Ok(self.internal.frontal_slice(l)?)
    }

    fn fro_norm_sq(&mut self) -> Result<f64> {
        Ok(self.norm_x_sq)
    }
}

/// Seeded synthetic low-rank slice generator: slice `l` is
/// `U diag(w_l) Vᵀ` with fixed orthonormal `U ∈ R^{I₁×r}`, `V ∈ R^{I₂×r}`
/// and per-slice weights drawn from a seed derived from `(seed, l)`.
///
/// Memory is `O((I₁+I₂)·r)` no matter how many slices the virtual tensor
/// has, so benchmarks can source tensors far larger than RAM. The modes are
/// served in the given order (identity permutation).
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    shape: Vec<usize>,
    perm: Vec<usize>,
    u: Matrix,
    v: Matrix,
    rank: usize,
    seed: u64,
    norm_cache: Option<f64>,
}

impl SyntheticSource {
    /// Creates a generator for the given (internal-order) shape and slice
    /// rank.
    pub fn new(shape: &[usize], rank: usize, seed: u64) -> Result<Self> {
        if shape.len() < 2 {
            return Err(CoreError::InvalidConfig {
                details: "SyntheticSource requires order >= 2".into(),
            });
        }
        if shape.contains(&0) {
            return Err(CoreError::InvalidConfig {
                details: format!("zero dimension in {shape:?}"),
            });
        }
        if rank == 0 || rank > shape[0].min(shape[1]) {
            return Err(CoreError::InvalidConfig {
                details: format!(
                    "slice rank {rank} invalid for leading dims {}x{}",
                    shape[0], shape[1]
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let u = orthonormalize(&gaussian_matrix(shape[0], rank, &mut rng));
        let v = orthonormalize(&gaussian_matrix(shape[1], rank, &mut rng));
        Ok(SyntheticSource {
            shape: shape.to_vec(),
            perm: (0..shape.len()).collect(),
            u,
            v,
            rank,
            seed,
            norm_cache: None,
        })
    }

    fn weights(&self, l: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(slice_seed(self.seed ^ 0x5EED, l));
        gaussian_matrix(self.rank, 1, &mut rng).into_vec()
    }

    fn build_slice(&self, l: usize) -> Matrix {
        let w = self.weights(l);
        dtucker_linalg::gemm::matmul_t(&scale_cols(&self.u, &w), &self.v)
    }

    /// Materializes the full tensor (test/verification helper — defeats the
    /// point for large shapes).
    pub fn materialize(&self) -> Result<DenseTensor> {
        let mats: Vec<Matrix> = (0..self.num_slices())
            .map(|l| self.build_slice(l))
            .collect();
        Ok(DenseTensor::from_frontal_slices(&self.shape, &mats)?)
    }
}

impl SliceSource for SyntheticSource {
    fn shape(&self) -> &[usize] {
        &self.shape
    }

    fn perm(&self) -> &[usize] {
        &self.perm
    }

    fn load_slice(&mut self, l: usize) -> Result<Matrix> {
        if l >= self.num_slices() {
            return Err(CoreError::InvalidConfig {
                details: format!("slice {l} out of range (have {})", self.num_slices()),
            });
        }
        Ok(self.build_slice(l))
    }

    fn fro_norm_sq(&mut self) -> Result<f64> {
        if let Some(n) = self.norm_cache {
            return Ok(n);
        }
        // Feed the accumulator in the Fortran element order of the
        // materialized tensor (i₁ fastest, then i₂, then the slice index)
        // so the result is bit-identical to materialize().fro_norm_sq().
        let (i1, i2) = (self.shape[0], self.shape[1]);
        let mut acc = FroNormAccumulator::new();
        for l in 0..self.num_slices() {
            let m = self.build_slice(l);
            for c in 0..i2 {
                for r in 0..i1 {
                    acc.push(m.get(r, c));
                }
            }
        }
        let n = acc.norm_sq();
        self.norm_cache = Some(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;

    #[test]
    fn in_memory_source_matches_tensor() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = low_rank_plus_noise(&[8, 12, 5], &[2, 2, 2], 0.1, &mut rng).unwrap();
        let mut src = InMemorySource::new(&x).unwrap();
        assert_eq!(src.shape(), &[12, 8, 5]);
        assert_eq!(src.perm(), &[1, 0, 2]);
        assert_eq!(src.original_shape(), vec![8, 12, 5]);
        assert_eq!(src.num_slices(), 5);
        assert_eq!(
            src.fro_norm_sq().unwrap().to_bits(),
            x.fro_norm_sq().to_bits()
        );
        let internal = permute(&x, &[1, 0, 2]).unwrap();
        for l in 0..5 {
            assert_eq!(
                src.load_slice(l).unwrap(),
                internal.frontal_slice(l).unwrap()
            );
        }
        assert_eq!(src.slice_bytes(), 12 * 8 * 8);
    }

    #[test]
    fn load_slices_default_matches_per_slice() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = low_rank_plus_noise(&[6, 9, 4], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let mut src = InMemorySource::new(&x).unwrap();
        let batch = src.load_slices(1, 4).unwrap();
        for (i, m) in batch.iter().enumerate() {
            assert_eq!(*m, src.load_slice(1 + i).unwrap());
        }
    }

    #[test]
    fn synthetic_source_is_deterministic_and_matches_materialization() {
        let mut a = SyntheticSource::new(&[10, 8, 6], 3, 42).unwrap();
        let mut b = SyntheticSource::new(&[10, 8, 6], 3, 42).unwrap();
        for l in [0usize, 3, 5] {
            assert_eq!(a.load_slice(l).unwrap(), b.load_slice(l).unwrap());
        }
        let x = a.materialize().unwrap();
        assert_eq!(x.shape(), &[10, 8, 6]);
        assert_eq!(
            a.fro_norm_sq().unwrap().to_bits(),
            x.fro_norm_sq().to_bits()
        );
        // Cache path returns the same value.
        assert_eq!(
            a.fro_norm_sq().unwrap().to_bits(),
            x.fro_norm_sq().to_bits()
        );
        // Different seeds give different data.
        let mut c = SyntheticSource::new(&[10, 8, 6], 3, 43).unwrap();
        assert_ne!(c.load_slice(0).unwrap(), b.load_slice(0).unwrap());
    }

    #[test]
    fn synthetic_source_validates() {
        assert!(SyntheticSource::new(&[5], 1, 0).is_err());
        assert!(SyntheticSource::new(&[5, 0, 2], 1, 0).is_err());
        assert!(SyntheticSource::new(&[5, 4, 2], 0, 0).is_err());
        assert!(SyntheticSource::new(&[5, 4, 2], 5, 0).is_err());
        let mut s = SyntheticSource::new(&[5, 4, 2], 2, 0).unwrap();
        assert!(s.load_slice(2).is_err());
    }
}
