//! Approximation phase: the sliced-SVD compressed tensor.
//!
//! D-Tucker reorders the modes so the two largest come first, views the
//! tensor as `L = I₃⋯I_N` frontal slices `X_l ∈ R^{I₁×I₂}`, and compresses
//! each slice with a truncated (by default randomized) SVD. The collection
//! of slice SVDs — [`SlicedTensor`] — is the only representation of the data
//! used by the initialization and iteration phases.

use crate::config::{DTuckerConfig, SliceSvdKind};
use crate::error::{CoreError, Result};
use crate::source::{InMemorySource, SliceSource};
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::pool;
use dtucker_linalg::rsvd::{rsvd, RsvdConfig};
use dtucker_linalg::svd::{scale_cols, svd, truncated_svd_gram};
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::unfold::{descending_mode_order, inverse_permutation, permute};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Truncated SVD of one frontal slice.
#[derive(Debug, Clone)]
pub struct SliceSvd {
    /// Left singular vectors, `I₁ × k`.
    pub u: Matrix,
    /// Singular values, descending, length `k`.
    pub s: Vec<f64>,
    /// Right singular vectors, `I₂ × k`.
    pub v: Matrix,
}

impl SliceSvd {
    /// `U diag(s)` — the scaled left factor used throughout the pipeline.
    pub fn us(&self) -> Matrix {
        scale_cols(&self.u, &self.s)
    }

    /// `V diag(s)`.
    pub fn vs(&self) -> Matrix {
        scale_cols(&self.v, &self.s)
    }

    /// Reconstructs the slice `U diag(s) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        dtucker_linalg::gemm::matmul_t(&self.us(), &self.v)
    }

    /// Squared Frobenius norm of the compressed slice (`Σ σ²`).
    pub fn fro_norm_sq(&self) -> f64 {
        self.s.iter().map(|&x| x * x).sum()
    }

    /// Bytes stored for this slice.
    pub fn memory_bytes(&self) -> usize {
        (self.u.len() + self.s.len() + self.v.len()) * std::mem::size_of::<f64>()
    }
}

/// The compressed output of D-Tucker's approximation phase.
#[derive(Debug, Clone)]
pub struct SlicedTensor {
    /// Shape in the **internal** (permuted) mode order.
    shape: Vec<usize>,
    /// `perm[p]` is the original mode stored at internal position `p`.
    perm: Vec<usize>,
    /// Rank of every slice SVD.
    slice_rank: usize,
    /// One SVD per frontal slice, Fortran order over modes 3..N.
    slices: Vec<SliceSvd>,
    /// `‖X‖²_F` of the original tensor (used for cheap error estimates).
    norm_x_sq: f64,
}

impl SlicedTensor {
    /// Compresses a tensor, reordering modes so the two largest lead
    /// (the paper's default).
    pub fn compress(x: &DenseTensor, cfg: &DTuckerConfig) -> Result<Self> {
        let perm = descending_mode_order(x.shape());
        Self::compress_with_perm(x, &perm, cfg)
    }

    /// Compresses a tensor keeping the **last mode last** (required by the
    /// streaming extension, where new data arrives along the last mode);
    /// the remaining modes are still sorted descending.
    pub fn compress_keep_last(x: &DenseTensor, cfg: &DTuckerConfig) -> Result<Self> {
        let n = x.order();
        let mut perm = descending_mode_order(&x.shape()[..n - 1]);
        perm.push(n - 1);
        Self::compress_with_perm(x, &perm, cfg)
    }

    /// Compresses with an explicit mode permutation (`perm[p]` = original
    /// mode placed at internal position `p`).
    pub fn compress_with_perm(
        x: &DenseTensor,
        perm: &[usize],
        cfg: &DTuckerConfig,
    ) -> Result<Self> {
        cfg.validate(x.shape())?;
        let mut src = InMemorySource::with_perm(x, perm)?;
        Self::compress_source(&mut src, cfg)
    }

    /// Compresses a tensor presented through a [`SliceSource`] — the
    /// out-of-core approximation phase. Slices are loaded in chunks of
    /// [`DTuckerConfig::chunk_slices`] (0 = auto) and compressed across the
    /// shared worker pool, so peak memory is
    /// `O(I₁·I₂·chunk + compressed output)` instead of `O(I₁·I₂·L)`.
    ///
    /// Per-slice RNG seeds depend only on `cfg.seed` and the global slice
    /// index, and the source's norm contract is bit-exact, so the result is
    /// **bit-identical** for every chunk size, thread count, and source
    /// backing (in-memory vs on-disk) of the same data.
    pub fn compress_source(src: &mut dyn SliceSource, cfg: &DTuckerConfig) -> Result<Self> {
        cfg.validate(&src.original_shape())?;
        let shape = src.shape().to_vec();
        let perm = src.perm().to_vec();
        let j1 = cfg.ranks[perm[0]];
        let j2 = cfg.ranks[perm[1]];
        let k = cfg.effective_slice_rank(j1, j2).min(shape[0]).min(shape[1]);
        let num = src.num_slices();
        let slices = compress_source_slices(src, k, cfg, 0, num)?;
        let norm_x_sq = src.fro_norm_sq()?;
        Ok(SlicedTensor {
            shape,
            perm,
            slice_rank: k,
            slices,
            norm_x_sq,
        })
    }

    /// Rebuilds a [`SlicedTensor`] from its raw parts (deserialization
    /// hook for the `dtucker-store` artifact format). Validates shape,
    /// permutation, slice count, and per-slice dimensions.
    pub fn from_parts(
        shape: Vec<usize>,
        perm: Vec<usize>,
        slice_rank: usize,
        slices: Vec<SliceSvd>,
        norm_x_sq: f64,
    ) -> Result<Self> {
        let invalid = |details: String| CoreError::InvalidConfig { details };
        if shape.len() < 2 || shape.contains(&0) {
            return Err(invalid(format!("implausible sliced shape {shape:?}")));
        }
        if perm.len() != shape.len() {
            return Err(invalid(format!(
                "perm {perm:?} does not match order {}",
                shape.len()
            )));
        }
        let mut seen = vec![false; perm.len()];
        for &p in &perm {
            if p >= perm.len() || seen[p] {
                return Err(invalid(format!("{perm:?} is not a permutation")));
            }
            seen[p] = true;
        }
        let expected: usize = shape[2..].iter().product();
        if slices.len() != expected {
            return Err(invalid(format!(
                "shape {shape:?} has {expected} slices, got {}",
                slices.len()
            )));
        }
        if slice_rank == 0 || slice_rank > shape[0].min(shape[1]) {
            return Err(invalid(format!(
                "slice rank {slice_rank} invalid for leading dims {}x{}",
                shape[0], shape[1]
            )));
        }
        for (l, sl) in slices.iter().enumerate() {
            let k = sl.s.len();
            if k == 0 || k > slice_rank {
                return Err(invalid(format!(
                    "slice {l} stores rank {k}, outside 1..={slice_rank}"
                )));
            }
            if sl.u.shape() != (shape[0], k) || sl.v.shape() != (shape[1], k) {
                return Err(invalid(format!(
                    "slice {l} factor shapes {:?}/{:?} inconsistent with {shape:?} rank {k}",
                    sl.u.shape(),
                    sl.v.shape()
                )));
            }
        }
        if !norm_x_sq.is_finite() || norm_x_sq < 0.0 {
            return Err(invalid(format!("implausible norm {norm_x_sq}")));
        }
        Ok(SlicedTensor {
            shape,
            perm,
            slice_rank,
            slices,
            norm_x_sq,
        })
    }

    /// Adaptive compression (extension): each slice keeps the **smallest**
    /// rank whose discarded energy is at most `epsilon · ‖X_l‖²_F`, capped
    /// at the rank the configuration would use anyway. Slices that are
    /// nearly low-rank store fewer vectors; busy slices keep the full
    /// budget. Mode reordering is the paper's default (two largest lead).
    pub fn compress_adaptive(x: &DenseTensor, epsilon: f64, cfg: &DTuckerConfig) -> Result<Self> {
        if !(0.0..1.0).contains(&epsilon) {
            return Err(CoreError::InvalidConfig {
                details: format!("epsilon {epsilon} must be in [0, 1)"),
            });
        }
        let mut st = Self::compress(x, cfg)?;
        // Per-slice energy truncation. The discarded-energy estimate uses
        // the exact slice norm, so the bound is honest even for randomized
        // slice SVDs.
        let internal = permute(x, &st.perm)?;
        let j_floor = st
            .perm
            .iter()
            .take(2)
            .map(|&p| cfg.ranks[p])
            .max()
            .unwrap_or(1);
        for (l, sl) in st.slices.iter_mut().enumerate() {
            let slice_norm_sq = {
                let m = internal.frontal_slice(l)?;
                let n = m.fro_norm();
                n * n
            };
            if slice_norm_sq == 0.0 {
                continue;
            }
            let budget = epsilon * slice_norm_sq;
            let mut kept = 0.0;
            let mut r = sl.s.len();
            for (idx, &sv) in sl.s.iter().enumerate() {
                kept += sv * sv;
                if slice_norm_sq - kept <= budget {
                    r = idx + 1;
                    break;
                }
            }
            // Never truncate below the Tucker rank the slice must support.
            let r = r.max(j_floor.min(sl.s.len()));
            if r < sl.s.len() {
                sl.u = sl.u.truncate_cols(r);
                sl.v = sl.v.truncate_cols(r);
                sl.s.truncate(r);
            }
        }
        Ok(st)
    }

    /// Ranks actually stored per slice (uniform after [`compress`],
    /// variable after [`compress_adaptive`]).
    ///
    /// [`compress`]: Self::compress
    /// [`compress_adaptive`]: Self::compress_adaptive
    pub fn slice_ranks(&self) -> Vec<usize> {
        self.slices.iter().map(|sl| sl.s.len()).collect()
    }

    /// Compresses a **sparse** tensor (the lineage's stated future-work
    /// direction): per-slice randomized SVDs evaluated through CSR
    /// products in `O(nnz·k)`, producing the same [`SlicedTensor`]
    /// representation — the initialization/iteration phases are untouched.
    pub fn compress_sparse(x: &dtucker_tensor::SparseTensor, cfg: &DTuckerConfig) -> Result<Self> {
        let perm = descending_mode_order(x.shape());
        Self::compress_sparse_with_perm(x, &perm, cfg)
    }

    /// [`Self::compress_sparse`] with an explicit mode permutation.
    pub fn compress_sparse_with_perm(
        x: &dtucker_tensor::SparseTensor,
        perm: &[usize],
        cfg: &DTuckerConfig,
    ) -> Result<Self> {
        cfg.validate(x.shape())?;
        let internal = x.permute(perm)?;
        let shape = internal.shape().to_vec();
        let j1 = cfg.ranks[perm[0]];
        let j2 = cfg.ranks[perm[1]];
        let k = cfg.effective_slice_rank(j1, j2).min(shape[0]).min(shape[1]);
        let csr = internal.frontal_slices_csr()?;
        let mut slices = Vec::with_capacity(csr.len());
        for (l, sl) in csr.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(slice_seed(cfg.seed, l));
            let d = match cfg.slice_svd {
                SliceSvdKind::Randomized => dtucker_linalg::rsvd::rsvd_sparse(
                    sl,
                    RsvdConfig {
                        rank: k,
                        oversample: cfg.oversample,
                        power_iters: cfg.power_iters,
                    },
                    &mut rng,
                )?,
                SliceSvdKind::Exact => svd(&sl.to_dense())?.truncate(k),
            };
            slices.push(SliceSvd {
                u: d.u,
                s: d.s,
                v: d.v,
            });
        }
        Ok(SlicedTensor {
            shape,
            perm: perm.to_vec(),
            slice_rank: k,
            slices,
            norm_x_sq: x.fro_norm_sq(),
        })
    }

    /// Internal (permuted) shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Mode permutation (internal position → original mode).
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Number of frontal slices `L`.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Rank of every slice SVD.
    pub fn slice_rank(&self) -> usize {
        self.slice_rank
    }

    /// The slice SVDs.
    pub fn slices(&self) -> &[SliceSvd] {
        &self.slices
    }

    /// `‖X‖²_F` of the tensor that was compressed.
    pub fn norm_x_sq(&self) -> f64 {
        self.norm_x_sq
    }

    /// `Σ_l Σ_j σ_{lj}²` — the squared norm of the compressed approximation.
    pub fn compressed_norm_sq(&self) -> f64 {
        self.slices.iter().map(SliceSvd::fro_norm_sq).sum()
    }

    /// Bytes stored by the compressed representation.
    pub fn memory_bytes(&self) -> usize {
        self.slices.iter().map(SliceSvd::memory_bytes).sum()
    }

    /// Bytes the raw dense tensor would occupy.
    pub fn dense_bytes(&self) -> usize {
        self.shape.iter().product::<usize>() * std::mem::size_of::<f64>()
    }

    /// Compression ratio `dense / compressed`.
    pub fn compression_ratio(&self) -> f64 {
        self.dense_bytes() as f64 / self.memory_bytes().max(1) as f64
    }

    /// Reconstructs the full tensor in the **original** mode order.
    pub fn reconstruct(&self) -> Result<DenseTensor> {
        let mats: Vec<Matrix> = self.slices.iter().map(SliceSvd::reconstruct).collect();
        let internal = DenseTensor::from_frontal_slices(&self.shape, &mats)?;
        Ok(permute(&internal, &inverse_permutation(&self.perm))?)
    }

    /// Relative squared compression error against the original tensor.
    pub fn compression_error_sq(&self, x: &DenseTensor) -> Result<f64> {
        Ok(x.relative_error_sq(&self.reconstruct()?)?)
    }

    /// Appends a block along the **original last mode** (streaming).
    ///
    /// Requires that the representation was built with
    /// [`compress_keep_last`], so the internal last mode is the temporal
    /// one; `block` must match the original shape in every other mode.
    pub fn append_block(&mut self, block: &DenseTensor, cfg: &DTuckerConfig) -> Result<()> {
        let n = self.shape.len();
        if self.perm.last() != Some(&(n - 1)) {
            return Err(CoreError::InvalidConfig {
                details: "append_block requires a compress_keep_last layout".into(),
            });
        }
        if block.order() != n {
            return Err(CoreError::InvalidConfig {
                details: format!("block order {} vs tensor order {}", block.order(), n),
            });
        }
        // Check all non-temporal dims match (in original order).
        let inv = inverse_permutation(&self.perm);
        for orig_mode in 0..n - 1 {
            let expected = self.shape[inv[orig_mode]];
            if block.shape()[orig_mode] != expected {
                return Err(CoreError::InvalidConfig {
                    details: format!(
                        "block mode {orig_mode} is {}, expected {expected}",
                        block.shape()[orig_mode]
                    ),
                });
            }
        }
        let internal = permute(block, &self.perm)?;
        let new_slices = compress_slices(&internal, self.slice_rank, cfg, self.slices.len())?;
        self.slices.extend(new_slices);
        self.shape[n - 1] += block.shape()[n - 1];
        self.norm_x_sq += block.fro_norm_sq();
        Ok(())
    }

    /// Appends a block presented through a [`SliceSource`] that already
    /// serves slices in **this** representation's internal order: the
    /// source's permutation must equal [`perm`](Self::perm) and its shape
    /// must match in every mode except the internal last one. The block's
    /// slices are loaded in chunks, so streaming appends never materialize
    /// the block as a `DenseTensor`.
    pub fn append_source(&mut self, src: &mut dyn SliceSource, cfg: &DTuckerConfig) -> Result<()> {
        let n = self.shape.len();
        if src.perm() != self.perm.as_slice() {
            return Err(CoreError::InvalidConfig {
                details: format!(
                    "source perm {:?} does not match representation perm {:?}",
                    src.perm(),
                    self.perm
                ),
            });
        }
        if src.shape().len() != n || src.shape()[..n - 1] != self.shape[..n - 1] {
            return Err(CoreError::InvalidConfig {
                details: format!(
                    "source shape {:?} incompatible with {:?} (all modes but the last must match)",
                    src.shape(),
                    self.shape
                ),
            });
        }
        let num = src.num_slices();
        let new_slices = compress_source_slices(src, self.slice_rank, cfg, self.slices.len(), num)?;
        self.slices.extend(new_slices);
        self.shape[n - 1] += src.shape()[n - 1];
        self.norm_x_sq += src.fro_norm_sq()?;
        Ok(())
    }
}

/// Compresses every frontal slice of `internal`, fanning out across the
/// shared worker pool (`cfg.threads` resolved through the pool policy;
/// `0` means auto). Per-slice RNG seeds are derived from `cfg.seed` and
/// the **global** slice index (`index_offset + l`), so results are
/// identical for any thread count.
fn compress_slices(
    internal: &DenseTensor,
    k: usize,
    cfg: &DTuckerConfig,
    index_offset: usize,
) -> Result<Vec<SliceSvd>> {
    let num = internal.num_frontal_slices();
    let threads = pool::resolve_threads(cfg.threads).min(num);
    pool::parallel_map(num, threads, |l| {
        let m = internal.frontal_slice(l)?;
        compress_one(&m, k, cfg, slice_seed(cfg.seed, index_offset + l))
    })
    .into_iter()
    .collect()
}

/// Compresses slices `[index_offset, index_offset + num)` drawn from a
/// [`SliceSource`] in chunks of `cfg.effective_chunk_slices(..)`: each
/// chunk is loaded serially (sources own I/O cursors), then its per-slice
/// SVDs fan out over the shared worker pool. Seeds use the **global** slice
/// index, so chunking and threading never change the result.
fn compress_source_slices(
    src: &mut dyn SliceSource,
    k: usize,
    cfg: &DTuckerConfig,
    index_offset: usize,
    num: usize,
) -> Result<Vec<SliceSvd>> {
    let chunk = cfg.effective_chunk_slices(num);
    let mut out = Vec::with_capacity(num);
    let mut l0 = 0usize;
    while l0 < num {
        let l1 = (l0 + chunk).min(num);
        let mats = src.load_slices(l0, l1)?;
        let threads = pool::resolve_threads(cfg.threads).min(l1 - l0);
        let compressed: Result<Vec<SliceSvd>> = pool::parallel_map(l1 - l0, threads, |i| {
            compress_one(
                &mats[i],
                k,
                cfg,
                slice_seed(cfg.seed, index_offset + l0 + i),
            )
        })
        .into_iter()
        .collect();
        out.extend(compressed?);
        l0 = l1;
    }
    Ok(out)
}

/// Derives a per-slice seed (splitmix-style) so compression is reproducible
/// independent of threading.
pub(crate) fn slice_seed(base: u64, l: usize) -> u64 {
    let mut z = base ^ (l as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn compress_one(m: &Matrix, k: usize, cfg: &DTuckerConfig, seed: u64) -> Result<SliceSvd> {
    let d = match cfg.slice_svd {
        SliceSvdKind::Randomized => {
            let mut rng = StdRng::seed_from_u64(seed);
            rsvd(
                m,
                RsvdConfig {
                    rank: k,
                    oversample: cfg.oversample,
                    power_iters: cfg.power_iters,
                },
                &mut rng,
            )?
        }
        SliceSvdKind::Exact => {
            if k * 4 < m.rows().min(m.cols()) {
                truncated_svd_gram(m, k)?
            } else {
                svd(m)?.truncate(k)
            }
        }
    };
    Ok(SliceSvd {
        u: d.u,
        s: d.s,
        v: d.v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config(j: usize, n: usize) -> DTuckerConfig {
        DTuckerConfig::uniform(j, n).with_seed(7)
    }

    #[test]
    fn compress_low_rank_is_nearly_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = low_rank_plus_noise(&[20, 16, 6], &[3, 3, 3], 0.0, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(3, 3)).unwrap();
        assert_eq!(st.num_slices(), 6);
        let err = st.compression_error_sq(&x).unwrap();
        assert!(err < 1e-12, "compression error {err}");
    }

    #[test]
    fn compress_reorders_modes_descending() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = low_rank_plus_noise(&[6, 30, 20], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(2, 3)).unwrap();
        // Internal shape must be sorted descending: 30, 20, 6.
        assert_eq!(st.shape(), &[30, 20, 6]);
        assert_eq!(st.perm(), &[1, 2, 0]);
        // Reconstruction comes back in the original order.
        let rec = st.reconstruct().unwrap();
        assert_eq!(rec.shape(), &[6, 30, 20]);
        assert!(x.relative_error_sq(&rec).unwrap() < 1e-12);
    }

    #[test]
    fn keep_last_layout() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = low_rank_plus_noise(&[10, 30, 12], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let st = SlicedTensor::compress_keep_last(&x, &config(2, 3)).unwrap();
        // First two sorted among modes 0..1 (30, 10), last stays 12.
        assert_eq!(st.shape(), &[30, 10, 12]);
        assert_eq!(st.perm(), &[1, 0, 2]);
    }

    #[test]
    fn memory_is_much_smaller_than_dense() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = low_rank_plus_noise(&[60, 50, 20], &[3, 3, 3], 0.05, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(3, 3)).unwrap();
        assert!(st.memory_bytes() < st.dense_bytes() / 2);
        assert!(st.compression_ratio() > 2.0);
        // Slice rank = max(J1,J2)+oversample = 8.
        assert_eq!(st.slice_rank(), 8);
        assert_eq!(st.memory_bytes(), 20 * (60 * 8 + 8 + 50 * 8) * 8);
    }

    #[test]
    fn parallel_compression_matches_serial() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = low_rank_plus_noise(&[24, 20, 8], &[3, 3, 3], 0.1, &mut rng).unwrap();
        let serial = SlicedTensor::compress(&x, &config(3, 3)).unwrap();
        let parallel = SlicedTensor::compress(&x, &config(3, 3).with_threads(4)).unwrap();
        assert_eq!(serial.num_slices(), parallel.num_slices());
        for (a, b) in serial.slices().iter().zip(parallel.slices().iter()) {
            assert_eq!(a.s, b.s, "threaded compression must be deterministic");
            assert_eq!(a.u, b.u);
        }
    }

    #[test]
    fn exact_svd_never_worse_than_randomized() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = low_rank_plus_noise(&[30, 25, 6], &[4, 4, 4], 0.3, &mut rng).unwrap();
        let mut c = config(4, 3);
        let randomized = SlicedTensor::compress(&x, &c).unwrap();
        c.slice_svd = SliceSvdKind::Exact;
        let exact = SlicedTensor::compress(&x, &c).unwrap();
        let e_r = randomized.compression_error_sq(&x).unwrap();
        let e_e = exact.compression_error_sq(&x).unwrap();
        assert!(e_e <= e_r + 1e-10, "exact {e_e} vs randomized {e_r}");
    }

    #[test]
    fn order4_tensor_slices() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = low_rank_plus_noise(&[12, 10, 4, 3], &[2, 2, 2, 2], 0.0, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(2, 4)).unwrap();
        assert_eq!(st.num_slices(), 12);
        assert!(st.compression_error_sq(&x).unwrap() < 1e-10);
    }

    #[test]
    fn norm_bookkeeping() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = low_rank_plus_noise(&[15, 12, 5], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(2, 3)).unwrap();
        assert!((st.norm_x_sq() - x.fro_norm_sq()).abs() < 1e-9);
        // Lossless compression ⇒ compressed norm equals original.
        assert!((st.compressed_norm_sq() - x.fro_norm_sq()).abs() < 1e-6);
    }

    #[test]
    fn append_block_streaming() {
        let mut rng = StdRng::seed_from_u64(9);
        let x = low_rank_plus_noise(&[10, 20, 12], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let head = x.subtensor_last(0, 8).unwrap();
        let tail = x.subtensor_last(8, 12).unwrap();
        let cfg = config(2, 3);
        let mut st = SlicedTensor::compress_keep_last(&head, &cfg).unwrap();
        let before = st.num_slices();
        st.append_block(&tail, &cfg).unwrap();
        assert_eq!(st.num_slices(), before + 4);
        assert_eq!(st.shape()[2], 12);
        let full = SlicedTensor::compress_keep_last(&x, &cfg).unwrap();
        assert_eq!(st.num_slices(), full.num_slices());
        assert!(st.compression_error_sq(&x).unwrap() < 1e-10);
    }

    #[test]
    fn append_block_validates() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = low_rank_plus_noise(&[8, 10, 6], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let cfg = config(2, 3);
        // Wrong layout (plain compress moved the last mode).
        let mut st = SlicedTensor::compress(&x, &cfg).unwrap();
        if st.perm().last() != Some(&2) {
            assert!(st.append_block(&x, &cfg).is_err());
        }
        // Wrong leading shape.
        let mut st = SlicedTensor::compress_keep_last(&x, &cfg).unwrap();
        let bad = DenseTensor::zeros(&[8, 11, 2]).unwrap();
        assert!(st.append_block(&bad, &cfg).is_err());
        let bad_order = DenseTensor::zeros(&[8, 10]).unwrap();
        assert!(st.append_block(&bad_order, &cfg).is_err());
    }

    #[test]
    fn adaptive_compression_varies_slice_ranks() {
        use dtucker_linalg::gemm::matmul_t;
        use dtucker_linalg::qr::orthonormalize;
        use dtucker_linalg::random::gaussian_matrix;
        // Hand-build a tensor whose slices have very different ranks:
        // slice 0 is rank 1, slice 1 is rank 6, slices 2..4 are rank 3.
        let mut rng = StdRng::seed_from_u64(12);
        let mut slices_mats = Vec::new();
        for rank in [1usize, 6, 3, 3] {
            let u = orthonormalize(&gaussian_matrix(30, rank, &mut rng));
            let v = orthonormalize(&gaussian_matrix(24, rank, &mut rng));
            let mut m = matmul_t(&u, &v);
            m.scale(5.0);
            slices_mats.push(m);
        }
        let x = DenseTensor::from_frontal_slices(&[30, 24, 4], &slices_mats).unwrap();
        let mut cfg = config(3, 3);
        cfg.slice_rank = Some(8);
        cfg.slice_svd = SliceSvdKind::Exact;
        let st = SlicedTensor::compress_adaptive(&x, 1e-10, &cfg).unwrap();
        let ranks = st.slice_ranks();
        assert_eq!(ranks[0], 3, "rank-1 slice floors at the Tucker rank");
        assert_eq!(ranks[1], 6, "rank-6 slice keeps 6 vectors");
        assert_eq!(ranks[2], 3);
        // Adaptive storage is smaller than the uniform budget.
        let uniform = SlicedTensor::compress(&x, &cfg).unwrap();
        assert!(st.memory_bytes() < uniform.memory_bytes());
        // And reconstruction stays accurate.
        assert!(st.compression_error_sq(&x).unwrap() < 1e-9);
    }

    #[test]
    fn adaptive_validates_epsilon() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = low_rank_plus_noise(&[10, 8, 3], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let cfg = config(2, 3);
        assert!(SlicedTensor::compress_adaptive(&x, 1.0, &cfg).is_err());
        assert!(SlicedTensor::compress_adaptive(&x, -0.1, &cfg).is_err());
        let st = SlicedTensor::compress_adaptive(&x, 0.01, &cfg).unwrap();
        assert_eq!(st.slice_ranks().len(), 3);
    }

    #[test]
    fn adaptive_slices_still_decompose() {
        let mut rng = StdRng::seed_from_u64(14);
        let x = low_rank_plus_noise(&[24, 20, 10], &[3, 3, 3], 0.02, &mut rng).unwrap();
        let cfg = config(3, 3);
        let st = SlicedTensor::compress_adaptive(&x, 1e-3, &cfg).unwrap();
        let out = crate::dtucker::DTucker::new(cfg)
            .decompose_sliced(&st)
            .unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.01, "error {err}");
    }

    #[test]
    fn sparse_compression_matches_dense_pipeline() {
        use dtucker_tensor::SparseTensor;
        let mut rng = StdRng::seed_from_u64(20);
        let x = low_rank_plus_noise(&[18, 14, 6], &[3, 3, 3], 0.05, &mut rng).unwrap();
        // Keep every entry: the sparse tensor equals the dense one, so the
        // two compression routes (same per-slice seeds) must agree exactly.
        let sx = SparseTensor::sample_from_dense(&x, 1.0, &mut rng).unwrap();
        let cfg = config(3, 3);
        let dense_st = SlicedTensor::compress(&x, &cfg).unwrap();
        let sparse_st = SlicedTensor::compress_sparse(&sx, &cfg).unwrap();
        assert_eq!(sparse_st.num_slices(), dense_st.num_slices());
        assert_eq!(sparse_st.perm(), dense_st.perm());
        for (a, b) in sparse_st.slices().iter().zip(dense_st.slices().iter()) {
            for (sa, sb) in a.s.iter().zip(b.s.iter()) {
                assert!((sa - sb).abs() < 1e-9 * (1.0 + sb), "{sa} vs {sb}");
            }
        }
        assert!((sparse_st.norm_x_sq() - dense_st.norm_x_sq()).abs() < 1e-9);
    }

    #[test]
    fn sparse_compression_exact_kind() {
        use dtucker_tensor::SparseTensor;
        let mut rng = StdRng::seed_from_u64(21);
        let x = low_rank_plus_noise(&[12, 10, 4], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let sx = SparseTensor::sample_from_dense(&x, 1.0, &mut rng).unwrap();
        let mut cfg = config(2, 3);
        cfg.slice_svd = SliceSvdKind::Exact;
        let st = SlicedTensor::compress_sparse(&sx, &cfg).unwrap();
        assert!(st.compression_error_sq(&x).unwrap() < 1e-10);
    }

    fn assert_bit_identical(a: &SlicedTensor, b: &SlicedTensor) {
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.perm(), b.perm());
        assert_eq!(a.slice_rank(), b.slice_rank());
        assert_eq!(a.norm_x_sq().to_bits(), b.norm_x_sq().to_bits());
        assert_eq!(a.num_slices(), b.num_slices());
        for (x, y) in a.slices().iter().zip(b.slices().iter()) {
            assert_eq!(x.u, y.u);
            assert_eq!(x.s, y.s);
            assert_eq!(x.v, y.v);
        }
    }

    #[test]
    fn chunk_size_never_changes_the_result() {
        let mut rng = StdRng::seed_from_u64(30);
        let x = low_rank_plus_noise(&[18, 14, 11], &[3, 3, 3], 0.05, &mut rng).unwrap();
        let baseline = SlicedTensor::compress(&x, &config(3, 3)).unwrap();
        // Non-divisible, single-slice, oversized, and threaded chunkings
        // must all be bit-identical to the default.
        for (chunk, threads) in [(1usize, 1usize), (3, 1), (5, 4), (100, 2)] {
            let cfg = config(3, 3).with_chunk_slices(chunk).with_threads(threads);
            let st = SlicedTensor::compress(&x, &cfg).unwrap();
            assert_bit_identical(&st, &baseline);
        }
    }

    #[test]
    fn compress_source_synthetic_matches_materialized() {
        use crate::source::SyntheticSource;
        let mut src = SyntheticSource::new(&[16, 12, 7], 3, 99).unwrap();
        let x = src.materialize().unwrap();
        let cfg = config(3, 3).with_chunk_slices(2);
        let from_source = SlicedTensor::compress_source(&mut src, &cfg).unwrap();
        let from_tensor = SlicedTensor::compress_with_perm(&x, &[0, 1, 2], &cfg).unwrap();
        assert_bit_identical(&from_source, &from_tensor);
    }

    #[test]
    fn from_parts_round_trip_and_validation() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = low_rank_plus_noise(&[12, 10, 4], &[2, 2, 2], 0.1, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(2, 3)).unwrap();
        let rebuilt = SlicedTensor::from_parts(
            st.shape().to_vec(),
            st.perm().to_vec(),
            st.slice_rank(),
            st.slices().to_vec(),
            st.norm_x_sq(),
        )
        .unwrap();
        assert_bit_identical(&rebuilt, &st);

        let parts = |st: &SlicedTensor| {
            (
                st.shape().to_vec(),
                st.perm().to_vec(),
                st.slice_rank(),
                st.slices().to_vec(),
                st.norm_x_sq(),
            )
        };
        // Order < 2 / zero dims.
        let (_, p, k, sl, n) = parts(&st);
        assert!(SlicedTensor::from_parts(vec![12], p, k, sl, n).is_err());
        // Bad permutation.
        let (s, _, k, sl, n) = parts(&st);
        assert!(SlicedTensor::from_parts(s, vec![0, 0, 2], k, sl, n).is_err());
        // Slice count mismatch.
        let (s, p, k, mut sl, n) = parts(&st);
        sl.pop();
        assert!(SlicedTensor::from_parts(s, p, k, sl, n).is_err());
        // Slice rank outside the leading dims.
        let (s, p, _, sl, n) = parts(&st);
        assert!(SlicedTensor::from_parts(s, p, 11, sl, n).is_err());
        // Inconsistent factor shape.
        let (s, p, k, mut sl, n) = parts(&st);
        sl[0].u = Matrix::zeros(3, k);
        assert!(SlicedTensor::from_parts(s, p, k, sl, n).is_err());
        // Non-finite norm.
        let (s, p, k, sl, _) = parts(&st);
        assert!(SlicedTensor::from_parts(s, p, k, sl, f64::NAN).is_err());
    }

    #[test]
    fn append_source_matches_append_block() {
        use crate::source::InMemorySource;
        let mut rng = StdRng::seed_from_u64(32);
        let x = low_rank_plus_noise(&[10, 16, 12], &[2, 2, 2], 0.02, &mut rng).unwrap();
        let head = x.subtensor_last(0, 7).unwrap();
        let tail = x.subtensor_last(7, 12).unwrap();
        let cfg = config(2, 3).with_chunk_slices(2);

        let mut via_block = SlicedTensor::compress_keep_last(&head, &cfg).unwrap();
        let mut via_source = via_block.clone();
        via_block.append_block(&tail, &cfg).unwrap();
        let mut src = InMemorySource::with_perm(&tail, via_source.perm()).unwrap();
        via_source.append_source(&mut src, &cfg).unwrap();
        assert_bit_identical(&via_source, &via_block);

        // Mismatched perm rejected.
        let mut bad = InMemorySource::with_perm(&tail, &[0, 1, 2]).unwrap();
        if bad.perm() != via_source.perm() {
            assert!(via_source.append_source(&mut bad, &cfg).is_err());
        }
        // Mismatched leading shape rejected.
        let wrong = DenseTensor::zeros(&[10, 15, 2]).unwrap();
        let mut wrong_src = InMemorySource::with_perm(&wrong, via_source.perm()).unwrap();
        assert!(via_source.append_source(&mut wrong_src, &cfg).is_err());
    }

    #[test]
    fn slice_svd_helpers() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = low_rank_plus_noise(&[10, 8, 2], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let st = SlicedTensor::compress(&x, &config(2, 3)).unwrap();
        let s0 = &st.slices()[0];
        assert_eq!(s0.us().shape(), (10, st.slice_rank()));
        assert_eq!(s0.vs().shape(), (8, st.slice_rank()));
        let rec = s0.reconstruct();
        assert_eq!(rec.shape(), (10, 8));
        assert!(s0.memory_bytes() > 0);
    }
}
