//! Configuration for the D-Tucker pipeline.

use crate::error::{CoreError, Result};

/// Which SVD backs the approximation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceSvdKind {
    /// Randomized SVD (the paper's choice — fast, slightly lossy).
    Randomized,
    /// Exact truncated SVD (ablation baseline: slower, tighter slices).
    Exact,
}

/// Configuration of a D-Tucker run.
#[derive(Debug, Clone, PartialEq)]
pub struct DTuckerConfig {
    /// Target multilinear ranks `J₁, …, J_N`, in the **original** mode
    /// order of the input tensor.
    pub ranks: Vec<usize>,
    /// Rank of each slice SVD in the approximation phase. Defaults to
    /// `max(J₁, J₂) + oversample` when `None`.
    pub slice_rank: Option<usize>,
    /// Oversampling for the randomized slice SVDs.
    pub oversample: usize,
    /// Power iterations for the randomized slice SVDs.
    pub power_iters: usize,
    /// SVD flavor for the approximation phase.
    pub slice_svd: SliceSvdKind,
    /// Maximum ALS sweeps in the iteration phase.
    pub max_iters: usize,
    /// Convergence tolerance on the change of the fit indicator
    /// `sqrt(|‖X‖² − ‖G‖²|)/‖X‖` between sweeps.
    pub tolerance: f64,
    /// RNG seed (per-slice seeds are derived, so results are independent of
    /// thread count).
    pub seed: u64,
    /// Worker threads for the per-slice loops of all three phases.
    ///
    /// `1` (the default) runs serially, matching the paper's single-thread
    /// measurement protocol. `0` means "auto": resolve through the shared
    /// pool policy — the `DTUCKER_THREADS` environment variable if set,
    /// otherwise the machine's available parallelism. Any other value is
    /// used as-is (capped at the pool's `MAX_THREADS`). Results are
    /// bit-identical for every setting.
    pub threads: usize,
    /// Frontal slices resident at once when compressing through a
    /// `SliceSource` (the out-of-core approximation path). `0` (the
    /// default) means "auto": twice the resolved thread count, at least 4.
    /// Peak memory of the approximation phase scales with
    /// `chunk_slices · I₁ · I₂`; results are bit-identical for every
    /// setting.
    pub chunk_slices: usize,
}

impl DTuckerConfig {
    /// A default configuration for the given ranks: oversample 5, one power
    /// iteration, at most 100 sweeps, tolerance `1e-4` (the settings used
    /// across the paper's experiments).
    pub fn new(ranks: &[usize]) -> Self {
        DTuckerConfig {
            ranks: ranks.to_vec(),
            slice_rank: None,
            oversample: 5,
            power_iters: 1,
            slice_svd: SliceSvdKind::Randomized,
            max_iters: 100,
            tolerance: 1e-4,
            seed: 0,
            threads: 1,
            chunk_slices: 0,
        }
    }

    /// Uniform rank `j` for an order-`n` tensor.
    pub fn uniform(j: usize, n: usize) -> Self {
        Self::new(&vec![j; n])
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thread count (builder style). `0` means "auto" — see
    /// [`DTuckerConfig::threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the out-of-core chunk size (builder style). `0` means "auto" —
    /// see [`DTuckerConfig::chunk_slices`].
    pub fn with_chunk_slices(mut self, chunk: usize) -> Self {
        self.chunk_slices = chunk;
        self
    }

    /// Resolved chunk size for a source with `num_slices` frontal slices:
    /// the configured value (or the auto policy for `0`), clamped to
    /// `1..=num_slices`.
    pub fn effective_chunk_slices(&self, num_slices: usize) -> usize {
        let chunk = if self.chunk_slices == 0 {
            (dtucker_linalg::pool::resolve_threads(self.threads) * 2).max(4)
        } else {
            self.chunk_slices
        };
        chunk.clamp(1, num_slices.max(1))
    }

    /// Effective slice rank for a tensor whose two leading (largest) modes
    /// have ranks `j1`, `j2` after reordering.
    pub fn effective_slice_rank(&self, j1: usize, j2: usize) -> usize {
        self.slice_rank
            .unwrap_or_else(|| j1.max(j2) + self.oversample)
    }

    /// Validates the configuration against a tensor shape.
    pub fn validate(&self, shape: &[usize]) -> Result<()> {
        if self.ranks.len() != shape.len() {
            return Err(CoreError::InvalidConfig {
                details: format!(
                    "{} ranks given for an order-{} tensor",
                    self.ranks.len(),
                    shape.len()
                ),
            });
        }
        if shape.len() < 2 {
            return Err(CoreError::InvalidConfig {
                details: "D-Tucker requires tensors of order ≥ 2".into(),
            });
        }
        for (n, (&j, &i)) in self.ranks.iter().zip(shape.iter()).enumerate() {
            if j == 0 {
                return Err(CoreError::InvalidConfig {
                    details: format!("rank of mode {n} is zero"),
                });
            }
            if j > i {
                return Err(CoreError::InvalidConfig {
                    details: format!("rank {j} of mode {n} exceeds its dimensionality {i}"),
                });
            }
        }
        if self.max_iters == 0 {
            return Err(CoreError::InvalidConfig {
                details: "max_iters must be ≥ 1".into(),
            });
        }
        if self.tolerance.is_nan() || self.tolerance < 0.0 {
            return Err(CoreError::InvalidConfig {
                details: "tolerance must be ≥ 0".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_protocol() {
        let c = DTuckerConfig::uniform(10, 3);
        assert_eq!(c.ranks, vec![10, 10, 10]);
        assert_eq!(c.max_iters, 100);
        assert!((c.tolerance - 1e-4).abs() < 1e-15);
        assert_eq!(c.threads, 1);
        assert_eq!(c.effective_slice_rank(10, 10), 15);
    }

    #[test]
    fn builders() {
        let c = DTuckerConfig::uniform(5, 3).with_seed(42).with_threads(4);
        assert_eq!(c.seed, 42);
        assert_eq!(c.threads, 4);
        // 0 is preserved: it means "auto" and resolves via the pool policy.
        let auto = DTuckerConfig::uniform(5, 3).with_threads(0);
        assert_eq!(auto.threads, 0);
    }

    #[test]
    fn chunk_slices_resolution() {
        let c = DTuckerConfig::uniform(5, 3);
        assert_eq!(c.chunk_slices, 0);
        // Auto with 1 thread: at least 4, clamped to the slice count.
        assert_eq!(c.effective_chunk_slices(100), 4);
        assert_eq!(c.effective_chunk_slices(3), 3);
        assert_eq!(c.effective_chunk_slices(0), 1);
        let c = c.with_chunk_slices(7);
        assert_eq!(c.effective_chunk_slices(100), 7);
        assert_eq!(c.effective_chunk_slices(5), 5);
    }

    #[test]
    fn explicit_slice_rank_wins() {
        let mut c = DTuckerConfig::uniform(10, 3);
        c.slice_rank = Some(12);
        assert_eq!(c.effective_slice_rank(10, 10), 12);
    }

    #[test]
    fn validation() {
        let shape = [20, 15, 10];
        assert!(DTuckerConfig::uniform(5, 3).validate(&shape).is_ok());
        assert!(DTuckerConfig::uniform(5, 2).validate(&shape).is_err()); // wrong order
        assert!(DTuckerConfig::new(&[5, 5, 11]).validate(&shape).is_err()); // rank > dim
        assert!(DTuckerConfig::new(&[5, 0, 5]).validate(&shape).is_err()); // zero rank
        let mut c = DTuckerConfig::uniform(5, 3);
        c.max_iters = 0;
        assert!(c.validate(&shape).is_err());
        let mut c = DTuckerConfig::uniform(5, 3);
        c.tolerance = f64::NAN;
        assert!(c.validate(&shape).is_err());
        assert!(DTuckerConfig::uniform(1, 1).validate(&[5]).is_err()); // order 1
    }
}
