//! Streaming extension (the paper's future-work direction, published later
//! as D-TuckerO): maintain a Tucker decomposition of a tensor that grows
//! along its last (temporal) mode.
//!
//! New data arrives as blocks `ΔX ∈ R^{I₁×…×I_{N−1}×Δt}`. Each block is
//! compressed into slice SVDs and appended to the [`SlicedTensor`]; the
//! factors are then refreshed with a handful of warm-started ALS sweeps —
//! the non-temporal factors barely move, so a small `refresh_iters` (default
//! 5) recovers batch-level accuracy at a fraction of the cost of
//! recomputing from scratch.

use crate::config::DTuckerConfig;
use crate::error::{CoreError, Result};
use crate::init::initialize_threaded;
use crate::iterate::iterate;
use crate::slices::SlicedTensor;
use crate::source::SliceSource;
use crate::trace::ConvergenceTrace;
use crate::tucker::TuckerDecomp;
use dtucker_linalg::matrix::Matrix;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::unfold::{inverse_permutation, permute};

/// Incremental D-Tucker over a temporally growing tensor.
#[derive(Debug, Clone)]
pub struct DTuckerStream {
    cfg: DTuckerConfig,
    /// ALS sweeps per append (warm-started).
    refresh_iters: usize,
    sliced: SlicedTensor,
    /// Current factors in internal order.
    factors_int: Vec<Matrix>,
    /// Current core in internal order.
    core_int: DenseTensor,
    /// Trace of the most recent refresh.
    last_trace: ConvergenceTrace,
}

impl DTuckerStream {
    /// Builds the initial decomposition from the first chunk of data.
    ///
    /// The temporal mode must be the **last** mode of `x`.
    pub fn new(x: &DenseTensor, cfg: DTuckerConfig) -> Result<Self> {
        cfg.validate(x.shape())?;
        let sliced = SlicedTensor::compress_keep_last(x, &cfg)?;
        let ranks_int = internal_ranks(&cfg, sliced.perm());
        let init = initialize_threaded(&sliced, &ranks_int, cfg.threads)?;
        let out = iterate(&sliced, &ranks_int, init.factors, &cfg)?;
        Ok(DTuckerStream {
            cfg,
            refresh_iters: 5,
            sliced,
            factors_int: out.factors,
            core_int: out.core,
            last_trace: out.trace,
        })
    }

    /// Sets the number of warm-started sweeps per append.
    pub fn with_refresh_iters(mut self, iters: usize) -> Self {
        self.refresh_iters = iters.max(1);
        self
    }

    /// Appends a block along the temporal mode and refreshes the
    /// decomposition.
    pub fn append(&mut self, block: &DenseTensor) -> Result<()> {
        let n = block.order();
        if n != self.sliced.shape().len() {
            return Err(CoreError::InvalidConfig {
                details: format!("block order {n} does not match stream order"),
            });
        }
        self.sliced.append_block(block, &self.cfg)?;
        self.refresh()
    }

    /// Appends a block arriving through a [`SliceSource`] (an on-disk or
    /// generated block that never needs to exist as one `DenseTensor`) and
    /// refreshes the decomposition. The source must use the stream's mode
    /// permutation and match its non-temporal shape.
    pub fn append_source(&mut self, src: &mut dyn SliceSource) -> Result<()> {
        self.sliced.append_source(src, &self.cfg)?;
        self.refresh()
    }

    /// Warm-started factor refresh after an append: keep the non-temporal
    /// factors and zero-pad the temporal factor to the new row count. The
    /// first ALS sweep's mode-N update recomputes the whole temporal factor
    /// from the (barely moved) non-temporal ones, so no re-initialization
    /// pass over the history is needed.
    fn refresh(&mut self) -> Result<()> {
        let ranks_int = internal_ranks(&self.cfg, self.sliced.perm());
        let temporal = self.factors_int.len() - 1;
        let mut factors = std::mem::take(&mut self.factors_int);
        let new_rows = *self
            .sliced
            .shape()
            .last()
            .ok_or_else(|| CoreError::Internal {
                details: "streaming state has an empty shape".into(),
            })?;
        let old = &factors[temporal];
        let mut grown = Matrix::zeros(new_rows, old.cols());
        for r in 0..old.rows().min(new_rows) {
            grown.row_mut(r).copy_from_slice(old.row(r));
        }
        factors[temporal] = grown;

        let mut cfg = self.cfg.clone();
        cfg.max_iters = self.refresh_iters;
        let out = iterate(&self.sliced, &ranks_int, factors, &cfg)?;
        self.factors_int = out.factors;
        self.core_int = out.core;
        self.last_trace = out.trace;
        Ok(())
    }

    /// The current decomposition, with factors in the original mode order.
    pub fn decomposition(&self) -> Result<TuckerDecomp> {
        let perm = self.sliced.perm();
        let inv = inverse_permutation(perm);
        let mut factors: Vec<Matrix> = vec![Matrix::zeros(0, 0); perm.len()];
        for (p, f) in self.factors_int.iter().enumerate() {
            factors[perm[p]] = f.clone();
        }
        let core = permute(&self.core_int, &inv)?;
        Ok(TuckerDecomp { core, factors })
    }

    /// The compressed representation accumulated so far.
    pub fn sliced(&self) -> &SlicedTensor {
        &self.sliced
    }

    /// Length of the temporal mode seen so far.
    pub fn timesteps(&self) -> usize {
        self.sliced.shape().last().copied().unwrap_or(0)
    }

    /// Trace of the most recent refresh.
    pub fn last_trace(&self) -> &ConvergenceTrace {
        &self.last_trace
    }
}

fn internal_ranks(cfg: &DTuckerConfig, perm: &[usize]) -> Vec<usize> {
    perm.iter().map(|&p| cfg.ranks[p]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtucker::DTucker;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn growing_tensor(t_total: usize, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(&[24, 18, t_total], &[3, 3, 3], 0.05, &mut rng).unwrap()
    }

    #[test]
    fn stream_matches_batch_accuracy() {
        let x = growing_tensor(30, 1);
        let cfg = DTuckerConfig::uniform(3, 3).with_seed(2);

        // Batch reference.
        let batch = DTucker::new(cfg.clone()).decompose(&x).unwrap();
        let batch_err = batch.decomposition.relative_error_sq(&x).unwrap();

        // Streaming: first 10 steps, then 4 appends of 5.
        let mut stream = DTuckerStream::new(&x.subtensor_last(0, 10).unwrap(), cfg).unwrap();
        for start in (10..30).step_by(5) {
            stream
                .append(&x.subtensor_last(start, start + 5).unwrap())
                .unwrap();
        }
        assert_eq!(stream.timesteps(), 30);
        let d = stream.decomposition().unwrap();
        let stream_err = d.relative_error_sq(&x).unwrap();
        assert!(
            stream_err < batch_err * 1.5 + 5e-3,
            "stream {stream_err} vs batch {batch_err}"
        );
    }

    #[test]
    fn stream_decomposition_shapes_track_growth() {
        let x = growing_tensor(12, 3);
        let cfg = DTuckerConfig::uniform(2, 3).with_seed(4);
        let mut stream = DTuckerStream::new(&x.subtensor_last(0, 6).unwrap(), cfg).unwrap();
        assert_eq!(stream.timesteps(), 6);
        stream.append(&x.subtensor_last(6, 12).unwrap()).unwrap();
        assert_eq!(stream.timesteps(), 12);
        let d = stream.decomposition().unwrap();
        assert_eq!(d.full_shape(), vec![24, 18, 12]);
        assert!(d.factors_orthonormal(1e-7));
    }

    #[test]
    fn append_validates_block() {
        let x = growing_tensor(10, 5);
        let cfg = DTuckerConfig::uniform(2, 3).with_seed(6);
        let mut stream = DTuckerStream::new(&x.subtensor_last(0, 5).unwrap(), cfg).unwrap();
        let bad = DenseTensor::zeros(&[24, 17, 2]).unwrap();
        assert!(stream.append(&bad).is_err());
        let bad_order = DenseTensor::zeros(&[24, 18]).unwrap();
        assert!(stream.append(&bad_order).is_err());
    }

    #[test]
    fn refresh_iters_builder() {
        let x = growing_tensor(8, 7);
        let cfg = DTuckerConfig::uniform(2, 3).with_seed(8);
        let stream = DTuckerStream::new(&x, cfg).unwrap().with_refresh_iters(0);
        assert_eq!(stream.refresh_iters, 1);
        assert!(stream.last_trace().iterations() >= 1);
    }
}
