//! # dtucker-core
//!
//! A Rust implementation of **D-Tucker** (Jang & Kang, *D-Tucker: Fast and
//! Memory-Efficient Tucker Decomposition for Dense Tensors*, ICDE 2020).
//!
//! D-Tucker computes a rank-(J₁,…,J_N) Tucker decomposition of a large
//! dense tensor in three phases, none of which ever runs ALS on the raw
//! tensor:
//!
//! 1. **approximation** ([`slices`]) — the tensor is viewed as
//!    `L = I₃⋯I_N` frontal slices (after reordering modes so the two
//!    largest lead) and each slice is compressed with a randomized SVD;
//! 2. **initialization** ([`init`]) — factor matrices are seeded directly
//!    from the slice SVDs;
//! 3. **iteration** ([`iterate`]) — HOOI-style ALS whose n-mode products
//!    are all evaluated through the slice factors.
//!
//! The [`dtucker::DTucker`] type orchestrates the three phases;
//! [`streaming::DTuckerStream`] extends the method to temporally growing
//! tensors (the paper's future-work direction).
//!
//! ```
//! use dtucker_core::{DTucker, DTuckerConfig};
//! use dtucker_tensor::random::low_rank_plus_noise;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = low_rank_plus_noise(&[40, 30, 20], &[5, 5, 5], 0.05, &mut rng).unwrap();
//! let out = DTucker::new(DTuckerConfig::uniform(5, 3)).decompose(&x).unwrap();
//! println!(
//!     "error {:.4}, {} sweeps, compression {:.1}x",
//!     out.decomposition.relative_error_sq(&x).unwrap(),
//!     out.trace.iterations(),
//!     out.sliced.compression_ratio(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

/// Decomposition configuration (`DTuckerConfig`) and per-phase knobs.
pub mod config;
/// The three-phase D-Tucker orchestrator.
pub mod dtucker;
/// Typed errors shared by every core phase.
pub mod error;
/// Crash-atomic file writing shared by store, CLI, and bench writers.
pub mod fsutil;
/// Phase 2: factor initialization from the slice SVDs.
pub mod init;
/// Phase 3: HOOI-style iteration evaluated through the slice factors.
pub mod iterate;
/// Per-phase timing/error profiles and anomaly helpers.
pub mod profile;
/// Phase 1: frontal-slice randomized-SVD approximation.
pub mod slices;
/// `SliceSource` out-of-core sourcing abstractions.
pub mod source;
/// Streaming D-Tucker for temporally growing tensors.
pub mod streaming;
/// Convergence traces recorded during iteration.
pub mod trace;
/// The Tucker decomposition container and reconstruction helpers.
pub mod tucker;

pub use config::{DTuckerConfig, SliceSvdKind};
pub use dtucker::{decompose_to_target_error, DTucker, DTuckerOutput, InitStrategy, PhaseTimings};
pub use error::{CoreError, Result};
pub use iterate::{SweepHook, SweepSnapshot, SweepState};
pub use profile::{anomalous_indices, error_profile_last_mode, PhaseProfile};
pub use slices::{SliceSvd, SlicedTensor};
pub use source::{InMemorySource, SliceSource, SyntheticSource};
pub use streaming::DTuckerStream;
pub use trace::ConvergenceTrace;
pub use tucker::TuckerDecomp;
