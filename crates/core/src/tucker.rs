//! The Tucker decomposition value type shared by D-Tucker and every
//! baseline.

use crate::error::{CoreError, Result};
use dtucker_linalg::matrix::Matrix;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::ttm::ttm;

/// A rank-(J₁,…,J_N) Tucker decomposition: a core tensor plus one factor
/// matrix per mode.
#[derive(Debug, Clone)]
pub struct TuckerDecomp {
    /// Core tensor `G ∈ R^{J₁×…×J_N}`.
    pub core: DenseTensor,
    /// Factor matrices `A⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ}` with (approximately) orthonormal
    /// columns.
    pub factors: Vec<Matrix>,
}

impl TuckerDecomp {
    /// Validates internal shape consistency.
    pub fn validate(&self) -> Result<()> {
        if self.factors.len() != self.core.order() {
            return Err(CoreError::InvalidConfig {
                details: format!(
                    "{} factors for an order-{} core",
                    self.factors.len(),
                    self.core.order()
                ),
            });
        }
        for (n, f) in self.factors.iter().enumerate() {
            if f.cols() != self.core.shape()[n] {
                return Err(CoreError::InvalidConfig {
                    details: format!(
                        "factor {n} has {} columns but core mode {n} is {}",
                        f.cols(),
                        self.core.shape()[n]
                    ),
                });
            }
        }
        Ok(())
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.core.order()
    }

    /// The core tensor `G`.
    pub fn core(&self) -> &DenseTensor {
        &self.core
    }

    /// Checked access to factor `A⁽ⁿ⁾`.
    pub fn factor(&self, mode: usize) -> Result<&Matrix> {
        self.factors
            .get(mode)
            .ok_or_else(|| CoreError::InvalidConfig {
                details: format!(
                    "mode {mode} out of range for an order-{} decomposition",
                    self.factors.len()
                ),
            })
    }

    /// Shape of the tensor this decomposition approximates.
    pub fn full_shape(&self) -> Vec<usize> {
        self.factors.iter().map(Matrix::rows).collect()
    }

    /// Multilinear ranks `(J₁,…,J_N)`.
    pub fn ranks(&self) -> &[usize] {
        self.core.shape()
    }

    /// Expands `G ×₁ A⁽¹⁾ ⋯ ×_N A⁽ᴺ⁾` into the full tensor.
    pub fn reconstruct(&self) -> Result<DenseTensor> {
        self.validate()?;
        let mut t = self.core.clone();
        for (mode, f) in self.factors.iter().enumerate() {
            t = ttm(&t, f, mode)?;
        }
        Ok(t)
    }

    /// Relative squared reconstruction error `‖X − X̂‖²_F / ‖X‖²_F` against
    /// an explicit tensor (materializes the reconstruction).
    pub fn relative_error_sq(&self, x: &DenseTensor) -> Result<f64> {
        let rec = self.reconstruct()?;
        Ok(x.relative_error_sq(&rec)?)
    }

    /// Cheap error estimate `(‖X‖² − ‖G‖²)/‖X‖²`, exact when the factors are
    /// orthonormal and the core is the projection of `X` onto their span.
    pub fn projection_error_sq(&self, norm_x_sq: f64) -> f64 {
        if norm_x_sq == 0.0 {
            return 0.0;
        }
        ((norm_x_sq - self.core.fro_norm_sq()) / norm_x_sq).max(0.0)
    }

    /// Reconstructs only hyperslab `t` along the **last** mode (e.g. one
    /// timestep of a temporal tensor), without materializing the full
    /// reconstruction. The result has the last mode dropped.
    ///
    /// Cost: one multi-TTM of the core plus a row contraction —
    /// `O(ΠIₖ·J)` instead of `O(ΠIₖ·J·I_N)` for a full reconstruction.
    pub fn reconstruct_last_mode_slice(&self, t: usize) -> Result<DenseTensor> {
        self.validate()?;
        let n = self.factors.len();
        let last = &self.factors[n - 1];
        if t >= last.rows() {
            return Err(CoreError::InvalidConfig {
                details: format!(
                    "slice {t} out of range for last mode of size {}",
                    last.rows()
                ),
            });
        }
        // Contract the last mode with row t first (shrinks to size 1), then
        // expand the remaining modes.
        let row = Matrix::from_vec(1, last.cols(), last.row(t).to_vec())?;
        let mut cur = ttm(&self.core, &row, n - 1)?;
        for mode in 0..n - 1 {
            cur = ttm(&cur, &self.factors[mode], mode)?;
        }
        let shape: Vec<usize> = cur.shape()[..n - 1].to_vec();
        cur.reshape(&shape).map_err(Into::into)
    }

    /// Truncates the decomposition to smaller multilinear ranks **without
    /// touching the original tensor**, by running a sequentially truncated
    /// HOSVD on the (small) core and absorbing the rotations into the
    /// factors. This is the optimal rank reduction of the *model* (not of
    /// the original data — but the two coincide up to the model's own
    /// error).
    pub fn truncate_to(&self, ranks: &[usize]) -> Result<TuckerDecomp> {
        self.validate()?;
        let n = self.factors.len();
        if ranks.len() != n {
            return Err(CoreError::InvalidConfig {
                details: format!("{} ranks for an order-{n} decomposition", ranks.len()),
            });
        }
        for (mode, (&r, &j)) in ranks.iter().zip(self.core.shape().iter()).enumerate() {
            if r == 0 || r > j {
                return Err(CoreError::InvalidConfig {
                    details: format!("rank {r} invalid for core mode {mode} of size {j}"),
                });
            }
        }
        let mut core = self.core.clone();
        let mut factors = Vec::with_capacity(n);
        for mode in 0..n {
            let unf = dtucker_tensor::unfold::unfold(&core, mode)?;
            let u = dtucker_linalg::svd::leading_left_singular_vectors(&unf, ranks[mode])?;
            core = dtucker_tensor::ttm::ttm_t(&core, &u, mode)?;
            factors.push(dtucker_linalg::gemm::matmul(&self.factors[mode], &u));
        }
        Ok(TuckerDecomp { core, factors })
    }

    /// Memory footprint of the decomposition in bytes (core + factors).
    pub fn memory_bytes(&self) -> usize {
        let f: usize = self.factors.iter().map(|m| m.len()).sum();
        (self.core.numel() + f) * std::mem::size_of::<f64>()
    }

    /// True when every factor matrix has orthonormal columns within `tol`.
    pub fn factors_orthonormal(&self, tol: f64) -> bool {
        self.factors.iter().all(|f| f.has_orthonormal_cols(tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::random_tucker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> TuckerDecomp {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_tucker(&[8, 7, 6], &[3, 2, 4], &mut rng).unwrap();
        TuckerDecomp {
            core: m.core,
            factors: m.factors,
        }
    }

    #[test]
    fn shapes_and_validation() {
        let d = model(1);
        d.validate().unwrap();
        assert_eq!(d.full_shape(), vec![8, 7, 6]);
        assert_eq!(d.ranks(), &[3, 2, 4]);
    }

    #[test]
    fn validate_catches_mismatch() {
        let mut d = model(2);
        d.factors[1] = Matrix::zeros(7, 5);
        assert!(d.validate().is_err());
        let mut d = model(3);
        d.factors.pop();
        assert!(d.validate().is_err());
        assert!(d.reconstruct().is_err());
    }

    #[test]
    fn reconstruct_exact_model() {
        let d = model(4);
        let x = d.reconstruct().unwrap();
        assert_eq!(x.shape(), &[8, 7, 6]);
        // The decomposition reproduces itself exactly.
        assert!(d.relative_error_sq(&x).unwrap() < 1e-20);
    }

    #[test]
    fn projection_error_matches_exact_for_own_tensor() {
        let d = model(5);
        let x = d.reconstruct().unwrap();
        let est = d.projection_error_sq(x.fro_norm_sq());
        assert!(est < 1e-12, "estimate {est}");
    }

    #[test]
    fn memory_accounting() {
        let d = model(6);
        let expected = (3 * 2 * 4 + 8 * 3 + 7 * 2 + 6 * 4) * 8;
        assert_eq!(d.memory_bytes(), expected);
    }

    #[test]
    fn orthonormality_check() {
        let d = model(7);
        assert!(d.factors_orthonormal(1e-8));
        let mut d2 = d.clone();
        d2.factors[0].scale(2.0);
        assert!(!d2.factors_orthonormal(1e-8));
    }

    #[test]
    fn truncate_to_reduces_ranks_optimally() {
        use dtucker_tensor::random::low_rank_plus_noise;
        // Build a rank-(4,4,4) model of a noisy tensor, then truncate to
        // (2,2,2) and compare with decomposing straight to (2,2,2).
        let mut rng = StdRng::seed_from_u64(31);
        let x = low_rank_plus_noise(&[20, 18, 14], &[4, 4, 4], 0.05, &mut rng).unwrap();
        let full =
            crate::dtucker::DTucker::new(crate::config::DTuckerConfig::uniform(4, 3).with_seed(1))
                .decompose(&x)
                .unwrap()
                .decomposition;
        let truncated = full.truncate_to(&[2, 2, 2]).unwrap();
        assert_eq!(truncated.ranks(), &[2, 2, 2]);
        assert!(truncated.factors_orthonormal(1e-7));

        let direct =
            crate::dtucker::DTucker::new(crate::config::DTuckerConfig::uniform(2, 3).with_seed(1))
                .decompose(&x)
                .unwrap()
                .decomposition;
        let e_trunc = truncated.relative_error_sq(&x).unwrap();
        let e_direct = direct.relative_error_sq(&x).unwrap();
        assert!(
            e_trunc <= e_direct * 1.3 + 1e-4,
            "truncated {e_trunc} vs direct {e_direct}"
        );
        // Identity truncation is a no-op up to rotation.
        let same = full.truncate_to(&[4, 4, 4]).unwrap();
        let e_same = same.relative_error_sq(&x).unwrap();
        let e_full = full.relative_error_sq(&x).unwrap();
        assert!((e_same - e_full).abs() < 1e-9);
    }

    #[test]
    fn truncate_to_validates() {
        let d = model(30);
        assert!(d.truncate_to(&[3, 2]).is_err());
        assert!(d.truncate_to(&[4, 2, 4]).is_err()); // exceeds core mode 0 (3)
        assert!(d.truncate_to(&[0, 2, 4]).is_err());
        assert!(d.truncate_to(&[2, 2, 2]).is_ok());
    }

    #[test]
    fn partial_reconstruction_matches_full() {
        let d = model(9);
        let full = d.reconstruct().unwrap();
        let last = d.factors[2].rows();
        for t in [0usize, 3, last - 1] {
            let slice = d.reconstruct_last_mode_slice(t).unwrap();
            assert_eq!(slice.shape(), &[8, 7]);
            for i in 0..8 {
                for j in 0..7 {
                    assert!(
                        (slice.get(&[i, j]) - full.get(&[i, j, t])).abs() < 1e-10,
                        "t={t} ({i},{j})"
                    );
                }
            }
        }
        assert!(d.reconstruct_last_mode_slice(last).is_err());
    }

    #[test]
    fn projection_error_zero_norm() {
        let d = model(8);
        assert_eq!(d.projection_error_sq(0.0), 0.0);
    }
}
