//! The D-Tucker front door: approximation → initialization → iteration.

use crate::config::DTuckerConfig;
use crate::error::{CoreError, Result};
use crate::init::initialize_threaded;
use crate::iterate::{iterate, iterate_from, SweepHook, SweepState};
use crate::slices::SlicedTensor;
use crate::trace::ConvergenceTrace;
use crate::tucker::TuckerDecomp;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::qr::orthonormalize;
use dtucker_linalg::random::gaussian_matrix;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::unfold::{inverse_permutation, permute};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Wall-clock time spent in each phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Approximation phase (slice compression). Zero when a pre-compressed
    /// tensor was supplied.
    pub approximation: Duration,
    /// Initialization phase.
    pub initialization: Duration,
    /// Iteration phase (all ALS sweeps).
    pub iteration: Duration,
}

impl PhaseTimings {
    /// Total wall-clock time.
    pub fn total(&self) -> Duration {
        self.approximation + self.initialization + self.iteration
    }

    /// The timings as a generic [`crate::profile::PhaseProfile`], so the
    /// pipeline's phase split renders through the same reporting path as
    /// every other subsystem.
    pub fn as_profile(&self) -> crate::profile::PhaseProfile {
        let mut p = crate::profile::PhaseProfile::new();
        p.record("approximation", self.approximation);
        p.record("initialization", self.initialization);
        p.record("iteration", self.iteration);
        p
    }
}

/// How the iteration phase is seeded (ablation hook for the convergence
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// The paper's SVD-based initialization phase.
    DTucker,
    /// Random orthonormal factors (what vanilla HOOI starts from).
    Random,
}

/// Result of a full D-Tucker run.
#[derive(Debug, Clone)]
pub struct DTuckerOutput {
    /// The decomposition, with factors in the **original** mode order.
    pub decomposition: TuckerDecomp,
    /// Convergence record of the iteration phase.
    pub trace: ConvergenceTrace,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// The compressed representation (reusable for further runs at other
    /// ranks ≤ slice rank, and for memory accounting).
    pub sliced: SlicedTensor,
}

/// The D-Tucker solver.
///
/// ```
/// use dtucker_core::{DTucker, DTuckerConfig};
/// use dtucker_tensor::random::low_rank_plus_noise;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let x = low_rank_plus_noise(&[30, 25, 10], &[3, 3, 3], 0.01, &mut rng).unwrap();
/// let out = DTucker::new(DTuckerConfig::uniform(3, 3)).decompose(&x).unwrap();
/// assert!(out.decomposition.relative_error_sq(&x).unwrap() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct DTucker {
    cfg: DTuckerConfig,
}

impl DTucker {
    /// Creates a solver with the given configuration.
    pub fn new(cfg: DTuckerConfig) -> Self {
        DTucker { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &DTuckerConfig {
        &self.cfg
    }

    /// Runs all three phases on a dense tensor.
    pub fn decompose(&self, x: &DenseTensor) -> Result<DTuckerOutput> {
        self.decompose_with_init(x, InitStrategy::DTucker)
    }

    /// Runs all three phases with an explicit initialization strategy.
    pub fn decompose_with_init(
        &self,
        x: &DenseTensor,
        strategy: InitStrategy,
    ) -> Result<DTuckerOutput> {
        self.cfg.validate(x.shape())?;
        if !x.is_finite() {
            return Err(crate::error::CoreError::InvalidConfig {
                details: "input tensor contains non-finite entries".into(),
            });
        }
        let t0 = Instant::now();
        let sliced = SlicedTensor::compress(x, &self.cfg)?;
        let approximation = t0.elapsed();
        let mut out = self.decompose_sliced_with_init(&sliced, strategy)?;
        out.timings.approximation = approximation;
        Ok(out)
    }

    /// Runs all three phases on a **sparse** tensor (the lineage's
    /// future-work extension): the approximation phase compresses slices
    /// through CSR products in `O(nnz·k)`; the rest of the pipeline is
    /// identical to the dense path.
    pub fn decompose_sparse(&self, x: &dtucker_tensor::SparseTensor) -> Result<DTuckerOutput> {
        self.cfg.validate(x.shape())?;
        let t0 = Instant::now();
        let sliced = crate::slices::SlicedTensor::compress_sparse(x, &self.cfg)?;
        let approximation = t0.elapsed();
        let mut out = self.decompose_sliced_with_init(&sliced, InitStrategy::DTucker)?;
        out.timings.approximation = approximation;
        Ok(out)
    }

    /// Runs the initialization and iteration phases on a pre-compressed
    /// tensor (the approximation phase is reported as zero time).
    pub fn decompose_sliced(&self, sliced: &SlicedTensor) -> Result<DTuckerOutput> {
        self.decompose_sliced_with_init(sliced, InitStrategy::DTucker)
    }

    /// [`Self::decompose_sliced`] with an explicit initialization strategy.
    pub fn decompose_sliced_with_init(
        &self,
        sliced: &SlicedTensor,
        strategy: InitStrategy,
    ) -> Result<DTuckerOutput> {
        let perm = sliced.perm().to_vec();
        let ranks_int: Vec<usize> = perm.iter().map(|&p| self.cfg.ranks[p]).collect();

        let t1 = Instant::now();
        let init_factors = match strategy {
            InitStrategy::DTucker => {
                initialize_threaded(sliced, &ranks_int, self.cfg.threads)?.factors
            }
            InitStrategy::Random => {
                let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xD7CE);
                sliced
                    .shape()
                    .iter()
                    .zip(ranks_int.iter())
                    .map(|(&i, &j)| orthonormalize(&gaussian_matrix(i, j, &mut rng)))
                    .collect()
            }
        };
        let initialization = t1.elapsed();

        let t2 = Instant::now();
        let iter_out = iterate(sliced, &ranks_int, init_factors, &self.cfg)?;
        let iteration = t2.elapsed();

        let decomposition = internal_to_original(&perm, iter_out.factors, iter_out.core)?;
        Ok(DTuckerOutput {
            decomposition,
            trace: iter_out.trace,
            timings: PhaseTimings {
                approximation: Duration::ZERO,
                initialization,
                iteration,
            },
            sliced: sliced.clone(),
        })
    }

    /// Checkpointable variant of [`Self::decompose_sliced`]: the iteration
    /// phase starts from `resume` (a [`SweepState`] restored from a
    /// checkpoint) when given, skipping the initialization phase, and
    /// `on_sweep` runs after every completed sweep (a checkpoint writer, or
    /// a hook that errors to simulate a crash). Resuming a killed run
    /// produces factors **bit-identical** to the uninterrupted run.
    pub fn decompose_sliced_resumable(
        &self,
        sliced: &SlicedTensor,
        resume: Option<SweepState>,
        on_sweep: &mut SweepHook<'_>,
    ) -> Result<DTuckerOutput> {
        let perm = sliced.perm().to_vec();
        let ranks_int: Vec<usize> = perm.iter().map(|&p| self.cfg.ranks[p]).collect();

        let t1 = Instant::now();
        let state = match resume {
            Some(state) => {
                if state.factors.len() != perm.len() {
                    return Err(crate::error::CoreError::InvalidConfig {
                        details: format!(
                            "resume state has {} factors for an order-{} tensor",
                            state.factors.len(),
                            perm.len()
                        ),
                    });
                }
                for (m, (f, (&i, &j))) in state
                    .factors
                    .iter()
                    .zip(sliced.shape().iter().zip(ranks_int.iter()))
                    .enumerate()
                {
                    if f.shape() != (i, j) {
                        return Err(crate::error::CoreError::InvalidConfig {
                            details: format!(
                                "resume factor {m} is {:?}, expected ({i}, {j})",
                                f.shape()
                            ),
                        });
                    }
                }
                state
            }
            None => SweepState::fresh(
                initialize_threaded(sliced, &ranks_int, self.cfg.threads)?.factors,
            ),
        };
        let initialization = t1.elapsed();

        let t2 = Instant::now();
        let iter_out = iterate_from(sliced, &ranks_int, state, &self.cfg, on_sweep)?;
        let iteration = t2.elapsed();

        let decomposition = internal_to_original(&perm, iter_out.factors, iter_out.core)?;
        Ok(DTuckerOutput {
            decomposition,
            trace: iter_out.trace,
            timings: PhaseTimings {
                approximation: Duration::ZERO,
                initialization,
                iteration,
            },
            sliced: sliced.clone(),
        })
    }
}

/// Automatic rank selection: finds the smallest uniform rank `J ≤ max_rank`
/// whose decomposition meets `target_error_sq` (relative squared error,
/// estimated via `‖X‖² − ‖G‖²`), compressing the tensor **once** with a
/// slice rank generous enough for `max_rank` and re-running only the cheap
/// initialization/iteration phases per candidate.
///
/// Returns the chosen output and rank; when even `max_rank` misses the
/// target, the `max_rank` result is returned (check its error).
pub fn decompose_to_target_error(
    x: &DenseTensor,
    max_rank: usize,
    target_error_sq: f64,
    base_cfg: &DTuckerConfig,
) -> Result<(DTuckerOutput, usize)> {
    if max_rank == 0 {
        return Err(crate::error::CoreError::InvalidConfig {
            details: "max_rank must be ≥ 1".into(),
        });
    }
    let clamp = |j: usize| -> Vec<usize> { x.shape().iter().map(|&i| j.min(i)).collect() };
    // Compress once, sized for the largest candidate.
    let mut cfg = base_cfg.clone();
    cfg.ranks = clamp(max_rank);
    cfg.slice_rank = Some(
        base_cfg
            .slice_rank
            .unwrap_or(max_rank + base_cfg.oversample)
            .max(max_rank + base_cfg.oversample),
    );
    cfg.validate(x.shape())?;
    let sliced = SlicedTensor::compress(x, &cfg)?;
    let norm_x_sq = x.fro_norm_sq();

    // Doubling search: 1, 2, 4, … then max_rank.
    let mut candidates: Vec<usize> = Vec::new();
    let mut j = 1usize;
    while j < max_rank {
        candidates.push(j);
        j *= 2;
    }
    candidates.push(max_rank);

    let mut best: Option<(DTuckerOutput, usize)> = None;
    for &j in &candidates {
        let mut cj = cfg.clone();
        cj.ranks = clamp(j);
        let out = DTucker::new(cj).decompose_sliced(&sliced)?;
        let err = out.decomposition.projection_error_sq(norm_x_sq);
        let done = err <= target_error_sq;
        best = Some((out, j));
        if done {
            break;
        }
    }
    best.ok_or_else(|| CoreError::Internal {
        details: "rank search produced no candidates".into(),
    })
}

/// Maps internal-order factors and core back to the original mode order.
fn internal_to_original(
    perm: &[usize],
    factors_int: Vec<Matrix>,
    core_int: DenseTensor,
) -> Result<TuckerDecomp> {
    let inv = inverse_permutation(perm);
    let mut factors: Vec<Matrix> = vec![Matrix::zeros(0, 0); perm.len()];
    for (p, f) in factors_int.into_iter().enumerate() {
        factors[perm[p]] = f;
    }
    let core = permute(&core_int, &inv)?;
    Ok(TuckerDecomp { core, factors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;

    fn noisy(shape: &[usize], ranks: &[usize], noise: f64, seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap()
    }

    #[test]
    fn end_to_end_exact_recovery() {
        let x = noisy(&[25, 20, 12], &[3, 3, 3], 0.0, 1);
        let out = DTucker::new(DTuckerConfig::uniform(3, 3))
            .decompose(&x)
            .unwrap();
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-9);
        assert!(out.decomposition.factors_orthonormal(1e-7));
        assert_eq!(out.decomposition.ranks(), &[3, 3, 3]);
        assert_eq!(out.decomposition.full_shape(), vec![25, 20, 12]);
    }

    #[test]
    fn end_to_end_noisy_close_to_optimal() {
        let noise = 0.1f64;
        let x = noisy(&[40, 30, 15], &[5, 5, 5], noise, 2);
        let out = DTucker::new(DTuckerConfig::uniform(5, 3).with_seed(3))
            .decompose(&x)
            .unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        let optimal = noise * noise / (1.0 + noise * noise);
        assert!(
            err < 1.5 * optimal + 1e-4,
            "error {err} vs optimal {optimal}"
        );
    }

    #[test]
    fn mode_reordering_is_transparent() {
        // Smallest mode first: D-Tucker must permute internally and return
        // factors in the original order anyway.
        let x = noisy(&[6, 30, 22], &[2, 4, 3], 0.0, 4);
        let out = DTucker::new(DTuckerConfig::new(&[2, 4, 3]))
            .decompose(&x)
            .unwrap();
        let d = &out.decomposition;
        assert_eq!(d.factors[0].shape(), (6, 2));
        assert_eq!(d.factors[1].shape(), (30, 4));
        assert_eq!(d.factors[2].shape(), (22, 3));
        assert_eq!(d.core.shape(), &[2, 4, 3]);
        assert!(d.relative_error_sq(&x).unwrap() < 1e-9);
    }

    #[test]
    fn order4_end_to_end() {
        let x = noisy(&[12, 10, 6, 5], &[2, 2, 2, 2], 0.02, 5);
        let out = DTucker::new(DTuckerConfig::uniform(2, 4).with_seed(6))
            .decompose(&x)
            .unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.01, "error {err}");
    }

    #[test]
    fn decompose_sliced_reuses_compression() {
        let x = noisy(&[20, 18, 10], &[3, 3, 3], 0.05, 7);
        let cfg = DTuckerConfig::uniform(3, 3).with_seed(8);
        let sliced = crate::slices::SlicedTensor::compress(&x, &cfg).unwrap();
        let out = DTucker::new(cfg).decompose_sliced(&sliced).unwrap();
        assert_eq!(out.timings.approximation, Duration::ZERO);
        assert!(out.timings.initialization > Duration::ZERO);
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 0.05);
    }

    #[test]
    fn dtucker_init_converges_faster_than_random() {
        let x = noisy(&[30, 24, 14], &[4, 4, 4], 0.05, 9);
        let solver = DTucker::new(DTuckerConfig::uniform(4, 3).with_seed(10));
        let smart = solver
            .decompose_with_init(&x, InitStrategy::DTucker)
            .unwrap();
        let random = solver
            .decompose_with_init(&x, InitStrategy::Random)
            .unwrap();
        assert!(
            smart.trace.iterations() <= random.trace.iterations(),
            "smart {} sweeps vs random {}",
            smart.trace.iterations(),
            random.trace.iterations()
        );
    }

    #[test]
    fn validates_config() {
        let x = noisy(&[10, 10, 10], &[2, 2, 2], 0.0, 11);
        assert!(DTucker::new(DTuckerConfig::uniform(2, 2))
            .decompose(&x)
            .is_err());
        assert!(DTucker::new(DTuckerConfig::uniform(11, 3))
            .decompose(&x)
            .is_err());
    }

    #[test]
    fn sparse_decomposition_recovers_sampled_tensor() {
        use dtucker_tensor::SparseTensor;
        // A genuinely sparse low-rank tensor: sample 30% of a low-rank
        // tensor's entries (rescaled), then decompose through the sparse
        // path. The rescaled sample is an unbiased but noisy estimator, so
        // accuracy is judged against the sample itself.
        let x = noisy(&[24, 20, 12], &[3, 3, 3], 0.0, 30);
        let mut rng = StdRng::seed_from_u64(31);
        let sx = SparseTensor::sample_from_dense(&x, 0.3, &mut rng).unwrap();
        let dense_of_sample = sx.to_dense().unwrap();
        let out = DTucker::new(DTuckerConfig::uniform(3, 3).with_seed(32))
            .decompose_sparse(&sx)
            .unwrap();
        let err = out
            .decomposition
            .relative_error_sq(&dense_of_sample)
            .unwrap();
        // A 30% Bernoulli sample of a low-rank tensor is mostly "low rank +
        // masking noise"; rank-3 should explain a good chunk of it.
        assert!(err < 0.9, "error {err}");
        assert!(out.decomposition.factors_orthonormal(1e-6));
        // Full-density sparse input must match the dense result closely.
        let full = SparseTensor::sample_from_dense(&x, 1.0, &mut rng).unwrap();
        let sparse_out = DTucker::new(DTuckerConfig::uniform(3, 3).with_seed(33))
            .decompose_sparse(&full)
            .unwrap();
        let dense_out = DTucker::new(DTuckerConfig::uniform(3, 3).with_seed(33))
            .decompose(&x)
            .unwrap();
        let es = sparse_out.decomposition.relative_error_sq(&x).unwrap();
        let ed = dense_out.decomposition.relative_error_sq(&x).unwrap();
        assert!((es - ed).abs() < 1e-6, "sparse {es} vs dense {ed}");
    }

    #[test]
    fn rejects_non_finite_input() {
        let mut x = noisy(&[8, 8, 8], &[2, 2, 2], 0.0, 20);
        x.set(&[1, 2, 3], f64::NAN);
        let err = DTucker::new(DTuckerConfig::uniform(2, 3)).decompose(&x);
        assert!(matches!(
            err,
            Err(crate::error::CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn target_error_rank_search() {
        // Exactly rank-4 tensor: the search should stop at J=4, not at
        // max_rank.
        let x = noisy(&[24, 20, 16], &[4, 4, 4], 0.0, 21);
        let base = DTuckerConfig::uniform(1, 3).with_seed(22);
        let (out, rank) = decompose_to_target_error(&x, 10, 1e-6, &base).unwrap();
        assert_eq!(rank, 4);
        assert!(out.decomposition.relative_error_sq(&x).unwrap() < 1e-6);

        // An unreachable target returns the max_rank attempt.
        let (out, rank) = decompose_to_target_error(&x, 2, 1e-12, &base).unwrap();
        assert_eq!(rank, 2);
        assert!(out.decomposition.relative_error_sq(&x).unwrap() > 1e-12);

        assert!(decompose_to_target_error(&x, 0, 0.1, &base).is_err());
    }

    #[test]
    fn killed_run_resumes_bit_identical() {
        let x = noisy(&[22, 18, 9], &[3, 3, 3], 0.05, 40);
        let mut cfg = DTuckerConfig::uniform(3, 3).with_seed(41);
        // Zero tolerance: exactly max_iters sweeps, so there is always a
        // mid-run point to interrupt at.
        cfg.tolerance = 0.0;
        cfg.max_iters = 6;
        let sliced = crate::slices::SlicedTensor::compress(&x, &cfg).unwrap();
        let solver = DTucker::new(cfg);

        let baseline = solver
            .decompose_sliced_resumable(&sliced, None, &mut |_| Ok(()))
            .unwrap();
        assert!(baseline.trace.iterations() >= 3, "need sweeps to interrupt");

        // "Crash" after sweep 2, keeping the last snapshot as a checkpoint.
        let mut saved: Option<SweepState> = None;
        let killed = solver.decompose_sliced_resumable(&sliced, None, &mut |snap| {
            saved = Some(SweepState {
                sweep: snap.sweep,
                factors: snap.factors.to_vec(),
                trace: snap.trace.clone(),
            });
            if snap.sweep == 2 {
                return Err(crate::error::CoreError::InvalidConfig {
                    details: "simulated crash".into(),
                });
            }
            Ok(())
        });
        assert!(killed.is_err());
        let state = saved.unwrap();
        assert_eq!(state.sweep, 2);

        let resumed = solver
            .decompose_sliced_resumable(&sliced, Some(state), &mut |_| Ok(()))
            .unwrap();
        assert_eq!(
            resumed.trace.iterations(),
            baseline.trace.iterations(),
            "resume must follow the same convergence path"
        );
        for (a, b) in resumed
            .decomposition
            .factors
            .iter()
            .zip(baseline.decomposition.factors.iter())
        {
            assert_eq!(a, b, "resumed factors must be bit-identical");
        }
        assert_eq!(
            resumed.decomposition.core.as_slice(),
            baseline.decomposition.core.as_slice()
        );

        // A resume state already past max_iters still yields a usable
        // output (core recomputed from the factors). The state stores
        // factors in internal order.
        let done_state = SweepState {
            sweep: baseline.trace.iterations(),
            factors: sliced
                .perm()
                .iter()
                .map(|&p| baseline.decomposition.factors[p].clone())
                .collect(),
            trace: baseline.trace.clone(),
        };
        let mut c2 = solver.config().clone();
        c2.max_iters = done_state.sweep.max(1);
        let finished = DTucker::new(c2)
            .decompose_sliced_resumable(&sliced, Some(done_state), &mut |_| Ok(()))
            .unwrap();
        for (a, b) in finished
            .decomposition
            .factors
            .iter()
            .zip(baseline.decomposition.factors.iter())
        {
            assert_eq!(a, b);
        }

        // Shape validation on resume.
        let bad = SweepState::fresh(vec![Matrix::zeros(2, 2); 3]);
        assert!(solver
            .decompose_sliced_resumable(&sliced, Some(bad), &mut |_| Ok(()))
            .is_err());
    }

    #[test]
    fn timings_populated() {
        let x = noisy(&[15, 12, 8], &[2, 2, 2], 0.0, 12);
        let out = DTucker::new(DTuckerConfig::uniform(2, 3))
            .decompose(&x)
            .unwrap();
        assert!(out.timings.total() > Duration::ZERO);
        assert!(out.timings.approximation > Duration::ZERO);
        assert!(out.trace.iterations() >= 1);
        assert!(out.sliced.num_slices() > 0);
    }
}
