//! Profiling: per-index reconstruction residuals along a mode, and the
//! shared per-phase wall-clock accumulator.
//!
//! The discovery workflows of the paper's lineage (anomalous ranges, trend
//! changes) all reduce to "which indices of a mode does the low-rank model
//! explain badly?" — this module computes those profiles without
//! materializing more than one hyperslab at a time beyond the full
//! reconstruction.
//!
//! [`PhaseProfile`] is the one phase-timing mechanism of the workspace:
//! the decomposition pipeline reports its approximation/initialization/
//! iteration split through it (see `PhaseTimings::as_profile`), and the
//! query engine reports its plan/contract/cache split through the same
//! type, so tooling renders both identically.

use crate::error::{CoreError, Result};
use crate::tucker::TuckerDecomp;
use dtucker_tensor::dense::DenseTensor;
use std::time::Duration;

/// Accumulating per-phase wall-clock profile: an ordered list of named
/// phases, each with a total duration and an invocation count.
///
/// Phases appear in first-recorded order; recording an existing name
/// accumulates into it. The type is intentionally generic — decomposition
/// phases, query-engine phases, and any future subsystem all share it
/// instead of inventing parallel timing structs.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfile {
    phases: Vec<(String, Duration, u64)>,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to phase `name` (creating it at the end of the
    /// ordering on first use) and bumps its invocation count.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        self.record_n(name, elapsed, 1);
    }

    /// Adds an already-aggregated total: `elapsed` across `count`
    /// invocations of phase `name`. This is the bridge for subsystems that
    /// accumulate timings in counters (e.g. a server's per-route atomics)
    /// and fold them into a profile after the fact; `count == 0` records
    /// nothing.
    pub fn record_n(&mut self, name: &str, elapsed: Duration, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(p) = self.phases.iter_mut().find(|(n, _, _)| n == name) {
            p.1 += elapsed;
            p.2 += count;
        } else {
            self.phases.push((name.to_string(), elapsed, count));
        }
    }

    /// Total time recorded for `name`, if the phase exists.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, d, _)| d)
    }

    /// Invocation count for `name` (0 if the phase was never recorded).
    pub fn count(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .find(|(n, _, _)| n == name)
            .map_or(0, |&(_, _, c)| c)
    }

    /// The phases as `(name, total, count)` in first-recorded order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, Duration, u64)> {
        self.phases.iter().map(|(n, d, c)| (n.as_str(), *d, *c))
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|&(_, d, _)| d).sum()
    }

    /// Folds another profile into this one (phase-wise accumulation).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (name, d, c) in &other.phases {
            if let Some(p) = self.phases.iter_mut().find(|(n, _, _)| n == name) {
                p.1 += *d;
                p.2 += *c;
            } else {
                self.phases.push((name.clone(), *d, *c));
            }
        }
    }

    /// Human-readable report: one aligned line per phase with its share of
    /// the total.
    pub fn report(&self) -> String {
        let total = self.total().as_secs_f64();
        let width = self
            .phases
            .iter()
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, d, count) in self.phases() {
            let secs = d.as_secs_f64();
            let share = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            out.push_str(&format!(
                "{name:<width$}  {secs:>9.6}s  {share:>5.1}%  ({count} call{})\n",
                if count == 1 { "" } else { "s" },
            ));
        }
        out.push_str(&format!("{:<width$}  {total:>9.6}s", "total"));
        out
    }
}

/// Relative squared residual of every index along the **last** mode:
/// `profile[t] = ‖X[..,t] − X̂[..,t]‖² / ‖X[..,t]‖²`
/// (`0` for all-zero hyperslabs).
///
/// This is the per-timestep error curve used for anomaly scans on temporal
/// tensors.
pub fn error_profile_last_mode(d: &TuckerDecomp, x: &DenseTensor) -> Result<Vec<f64>> {
    if d.full_shape() != x.shape() {
        return Err(CoreError::InvalidConfig {
            details: format!(
                "decomposition shape {:?} does not match tensor {:?}",
                d.full_shape(),
                x.shape()
            ),
        });
    }
    let rec = d.reconstruct()?;
    let n = x.order();
    let last = x.shape()[n - 1];
    let stride: usize = x.shape()[..n - 1].iter().product();
    let xs = x.as_slice();
    let rs = rec.as_slice();
    let mut out = Vec::with_capacity(last);
    for t in 0..last {
        let a = &xs[t * stride..(t + 1) * stride];
        let b = &rs[t * stride..(t + 1) * stride];
        let mut num = 0.0;
        let mut den = 0.0;
        for (&av, &bv) in a.iter().zip(b.iter()) {
            num += (av - bv) * (av - bv);
            den += av * av;
        }
        out.push(if den == 0.0 { 0.0 } else { num / den });
    }
    Ok(out)
}

/// Indices whose residual exceeds `mean + k·std` of the profile — the
/// simple anomaly rule the discovery experiments use.
pub fn anomalous_indices(profile: &[f64], k_sigma: f64) -> Vec<usize> {
    if profile.is_empty() {
        return vec![];
    }
    let n = profile.len() as f64;
    let mean = profile.iter().sum::<f64>() / n;
    let var = profile
        .iter()
        .map(|&p| (p - mean) * (p - mean))
        .sum::<f64>()
        / n;
    let threshold = mean + k_sigma * var.sqrt();
    profile
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p > threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DTuckerConfig;
    use crate::dtucker::DTucker;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn profile_flags_a_corrupted_timestep() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = low_rank_plus_noise(&[16, 12, 30], &[2, 2, 2], 0.02, &mut rng).unwrap();
        // Corrupt timestep 17 with full-rank junk scaled to the data: a
        // low-rank model cannot absorb it, and it cannot dominate the
        // whole tensor either.
        let rms = x.fro_norm() / (x.numel() as f64).sqrt();
        let amp = rms;
        for i in 0..16 {
            for j in 0..12 {
                let v = x.get(&[i, j, 17]);
                let sign = if (i * 7 + j * 13 + i * j) % 3 == 0 {
                    1.0
                } else {
                    -1.0
                };
                x.set(&[i, j, 17], v + sign * amp);
            }
        }
        let out = DTucker::new(DTuckerConfig::uniform(2, 3).with_seed(2))
            .decompose(&x)
            .unwrap();
        let profile = error_profile_last_mode(&out.decomposition, &x).unwrap();
        assert_eq!(profile.len(), 30);
        let worst = profile
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(worst, 17, "profile {profile:?}");
        let flagged = anomalous_indices(&profile, 2.0);
        assert!(flagged.contains(&17));
        assert!(
            flagged.len() <= 3,
            "only the corrupted step should stand out: {flagged:?}"
        );
    }

    #[test]
    fn phase_profile_accumulates_and_reports() {
        let mut p = PhaseProfile::new();
        p.record("plan", Duration::from_millis(2));
        p.record("contract", Duration::from_millis(10));
        p.record("plan", Duration::from_millis(3));
        assert_eq!(p.get("plan"), Some(Duration::from_millis(5)));
        assert_eq!(p.count("plan"), 2);
        assert_eq!(p.count("cache"), 0);
        assert_eq!(p.total(), Duration::from_millis(15));
        // First-recorded order is preserved.
        let names: Vec<&str> = p.phases().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["plan", "contract"]);

        let mut q = PhaseProfile::new();
        q.record("contract", Duration::from_millis(1));
        q.record("cache", Duration::from_millis(4));
        p.merge(&q);
        assert_eq!(p.get("contract"), Some(Duration::from_millis(11)));
        assert_eq!(p.get("cache"), Some(Duration::from_millis(4)));
        let report = p.report();
        assert!(report.contains("plan"), "{report}");
        assert!(report.contains("total"), "{report}");
        assert!(PhaseProfile::new().report().contains("total"));
    }

    #[test]
    fn record_n_bridges_aggregated_counters() {
        let mut p = PhaseProfile::new();
        p.record_n("handle", Duration::from_millis(30), 3);
        p.record("handle", Duration::from_millis(5));
        assert_eq!(p.get("handle"), Some(Duration::from_millis(35)));
        assert_eq!(p.count("handle"), 4);
        // A zero count records nothing, not an empty phase.
        p.record_n("idle", Duration::from_millis(9), 0);
        assert_eq!(p.count("idle"), 0);
        assert!(p.get("idle").is_none());
    }

    #[test]
    fn phase_timings_bridge_to_profile() {
        let t = crate::dtucker::PhaseTimings {
            approximation: Duration::from_millis(7),
            initialization: Duration::from_millis(2),
            iteration: Duration::from_millis(11),
        };
        let p = t.as_profile();
        assert_eq!(p.total(), t.total());
        assert_eq!(p.get("iteration"), Some(Duration::from_millis(11)));
    }

    #[test]
    fn profile_shape_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = low_rank_plus_noise(&[10, 8, 6], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let y = low_rank_plus_noise(&[10, 8, 7], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let out = DTucker::new(DTuckerConfig::uniform(2, 3))
            .decompose(&x)
            .unwrap();
        assert!(error_profile_last_mode(&out.decomposition, &y).is_err());
    }

    #[test]
    fn clean_model_has_flat_profile() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = low_rank_plus_noise(&[12, 10, 20], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let out = DTucker::new(DTuckerConfig::uniform(2, 3).with_seed(5))
            .decompose(&x)
            .unwrap();
        let profile = error_profile_last_mode(&out.decomposition, &x).unwrap();
        assert!(profile.iter().all(|&p| p < 1e-9), "{profile:?}");
        assert!(anomalous_indices(&profile, 3.0).len() <= 2);
        assert!(anomalous_indices(&[], 2.0).is_empty());
    }
}
