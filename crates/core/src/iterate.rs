//! Iteration phase: HOOI-style ALS evaluated entirely through the slice
//! SVDs.
//!
//! Per sweep, for a tensor with internal shape `(I₁, I₂, I₃, …, I_N)`,
//! slice rank `k` and target ranks `J`:
//!
//! * mode 1: stack `W_l = U_lΣ_l (V_lᵀA⁽²⁾)` → tensor `(I₁, J₂, I₃, …)`,
//!   contract trailing factors, take leading J₁ left singular vectors;
//! * mode 2: symmetric with `Z_l = (A⁽¹⁾ᵀU_lΣ_l) V_lᵀ` stacked as
//!   `(J₁, I₂, I₃, …)`;
//! * modes ≥ 3: work on the small projected tensor
//!   `P_l = A⁽¹⁾ᵀX_lA⁽²⁾ ∈ R^{J₁×J₂}`;
//! * core: `P ×₃ A⁽³⁾ᵀ ⋯ ×_N A⁽ᴺ⁾ᵀ`.
//!
//! No step touches anything of size `I₁·I₂`, which is the source of
//! D-Tucker's speed: the per-sweep cost is `O(L·(I₁+I₂)·k·J)` instead of
//! HOOI's `O(L·I₁·I₂·J)`.

use crate::config::DTuckerConfig;
use crate::error::Result;
use crate::init::projected_tensor_threaded;
use crate::slices::SlicedTensor;
use crate::trace::ConvergenceTrace;
use dtucker_linalg::gemm::{matmul, t_matmul};
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::pool;
use dtucker_linalg::svd::leading_left_singular_vectors;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::ttm::ttm_t;
use dtucker_tensor::unfold::unfold;

/// Output of the iteration phase (internal mode order).
#[derive(Debug, Clone)]
pub struct IterationOutput {
    /// Updated factor matrices.
    pub factors: Vec<Matrix>,
    /// Final core tensor.
    pub core: DenseTensor,
    /// Convergence record.
    pub trace: ConvergenceTrace,
}

/// Owned ALS state between sweeps — everything the iteration phase needs to
/// continue, and therefore everything a HOOI checkpoint must persist.
///
/// Each sweep is a deterministic function of `(factors, trace)` and the
/// compressed tensor, so resuming from a state snapshot reproduces the
/// uninterrupted run **bit for bit** (the trace carries the previous fits
/// the stopping rule compares against).
#[derive(Debug, Clone)]
pub struct SweepState {
    /// Completed sweeps so far (the next sweep executed is `sweep`).
    pub sweep: usize,
    /// Factor matrices in internal mode order.
    pub factors: Vec<Matrix>,
    /// Convergence record of the completed sweeps.
    pub trace: ConvergenceTrace,
}

impl SweepState {
    /// State before the first sweep.
    pub fn fresh(factors: Vec<Matrix>) -> Self {
        SweepState {
            sweep: 0,
            factors,
            trace: ConvergenceTrace::default(),
        }
    }
}

/// Borrowed view of the state after one sweep, handed to checkpoint hooks.
#[derive(Debug)]
pub struct SweepSnapshot<'a> {
    /// Completed sweeps (1-based: the snapshot after the first sweep has
    /// `sweep == 1`).
    pub sweep: usize,
    /// Current factors in internal mode order.
    pub factors: &'a [Matrix],
    /// Convergence record so far.
    pub trace: &'a ConvergenceTrace,
    /// Whether the stopping rule fired on this sweep.
    pub done: bool,
}

/// Per-sweep checkpoint hook. Returning an error aborts the iteration
/// (which is also how the kill/resume tests simulate dying mid-run).
pub type SweepHook<'h> = dyn FnMut(SweepSnapshot<'_>) -> Result<()> + 'h;

/// Runs ALS sweeps starting from `factors` until the fit stalls or
/// `cfg.max_iters` is reached. `ranks` are in internal order.
pub fn iterate(
    st: &SlicedTensor,
    ranks: &[usize],
    factors: Vec<Matrix>,
    cfg: &DTuckerConfig,
) -> Result<IterationOutput> {
    iterate_from(st, ranks, SweepState::fresh(factors), cfg, &mut |_| Ok(()))
}

/// [`iterate`] with an explicit starting state and a per-sweep hook —
/// the checkpoint/resume entry point. Continuing from a snapshot produced
/// by a previous (killed) run yields the exact factors the uninterrupted
/// run would have produced.
pub fn iterate_from(
    st: &SlicedTensor,
    ranks: &[usize],
    state: SweepState,
    cfg: &DTuckerConfig,
    on_sweep: &mut SweepHook<'_>,
) -> Result<IterationOutput> {
    let n_modes = st.shape().len();
    let SweepState {
        sweep: start,
        mut factors,
        mut trace,
    } = state;
    debug_assert_eq!(factors.len(), n_modes);
    let norm_x = st.norm_x_sq().max(f64::MIN_POSITIVE);
    let threads = pool::resolve_threads(cfg.threads);
    let mut core: Option<DenseTensor> = None;

    for sweep in start..cfg.max_iters {
        // A resumed trace may already be converged (the checkpoint was
        // written at the final sweep); running more sweeps would diverge
        // from what the uninterrupted run produced.
        if trace.converged {
            break;
        }
        update_mode1(st, &mut factors, ranks[0], threads)?;
        update_mode2(st, &mut factors, ranks[1], threads)?;
        // Small projected tensor shared by all trailing updates + the core.
        let p = projected_tensor_threaded(st, &factors[0], &factors[1], threads)?;
        for mode in 2..n_modes {
            update_trailing_mode(&p, &mut factors, mode, ranks[mode])?;
        }
        let mut g = p;
        for mode in 2..n_modes {
            g = ttm_t(&g, &factors[mode], mode)?;
        }
        let fit = (norm_x - g.fro_norm_sq()).max(0.0).sqrt() / norm_x.sqrt();
        let done = trace.record(fit, cfg.tolerance);
        core = Some(g);
        on_sweep(SweepSnapshot {
            sweep: sweep + 1,
            factors: &factors,
            trace: &trace,
            done,
        })?;
        if done {
            break;
        }
    }
    // A resumed state may already sit at (or past) the sweep budget; the
    // loop then never runs, and the core is recomputed from the factors.
    let core = match core {
        Some(g) => g,
        None => compute_core(st, &factors, threads)?,
    };
    Ok(IterationOutput {
        factors,
        core,
        trace,
    })
}

/// Core tensor `X ×₁ A⁽¹⁾ᵀ ⋯ ×_N A⁽ᴺ⁾ᵀ` for a fixed set of factors,
/// evaluated through the slices.
fn compute_core(st: &SlicedTensor, factors: &[Matrix], threads: usize) -> Result<DenseTensor> {
    let mut g = projected_tensor_threaded(st, &factors[0], &factors[1], threads)?;
    for mode in 2..st.shape().len() {
        g = ttm_t(&g, &factors[mode], mode)?;
    }
    Ok(g)
}

/// Mode-1 update: `A⁽¹⁾ ← J₁` leading left singular vectors of the mode-1
/// unfolding of `X ×₂ A⁽²⁾ᵀ ⋯ ×_N A⁽ᴺ⁾ᵀ`, evaluated through the slices.
/// The per-slice products fan out across the shared pool; each slice is
/// computed independently, so results match the serial order exactly.
fn update_mode1(
    st: &SlicedTensor,
    factors: &mut [Matrix],
    j1: usize,
    threads: usize,
) -> Result<()> {
    let shape = st.shape();
    let a2 = &factors[1];
    let mut w_shape = vec![shape[0], a2.cols()];
    w_shape.extend_from_slice(&shape[2..]);
    let slices = pool::parallel_map(st.num_slices(), threads.min(st.num_slices()), |l| {
        // U_lΣ_l (V_lᵀ A2): (I₁×k)(k×J₂).
        let sl = &st.slices()[l];
        let vta = t_matmul(&sl.v, a2);
        matmul(&sl.us(), &vta)
    });
    let mut w = DenseTensor::from_frontal_slices(&w_shape, &slices)?;
    for mode in 2..shape.len() {
        w = ttm_t(&w, &factors[mode], mode)?;
    }
    factors[0] = leading_left_singular_vectors(&unfold(&w, 0)?, j1)?;
    Ok(())
}

/// Mode-2 update, symmetric to [`update_mode1`].
fn update_mode2(
    st: &SlicedTensor,
    factors: &mut [Matrix],
    j2: usize,
    threads: usize,
) -> Result<()> {
    let shape = st.shape();
    let a1 = &factors[0];
    let mut z_shape = vec![a1.cols(), shape[1]];
    z_shape.extend_from_slice(&shape[2..]);
    let slices = pool::parallel_map(st.num_slices(), threads.min(st.num_slices()), |l| {
        // (A1ᵀ U_lΣ_l) V_lᵀ: (J₁×k)(k×I₂).
        let sl = &st.slices()[l];
        let atu = t_matmul(a1, &sl.us());
        dtucker_linalg::gemm::matmul_t(&atu, &sl.v)
    });
    let mut z = DenseTensor::from_frontal_slices(&z_shape, &slices)?;
    for mode in 2..shape.len() {
        z = ttm_t(&z, &factors[mode], mode)?;
    }
    factors[1] = leading_left_singular_vectors(&unfold(&z, 1)?, j2)?;
    Ok(())
}

/// Trailing-mode update on the small projected tensor `P` (shape
/// `(J₁, J₂, I₃, …, I_N)`).
fn update_trailing_mode(
    p: &DenseTensor,
    factors: &mut [Matrix],
    mode: usize,
    j: usize,
) -> Result<()> {
    let n_modes = p.order();
    let mut y = p.clone();
    for m in 2..n_modes {
        if m != mode {
            y = ttm_t(&y, &factors[m], m)?;
        }
    }
    factors[mode] = leading_left_singular_vectors(&unfold(&y, mode)?, j)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DTuckerConfig;
    use crate::init::initialize;
    use crate::tucker::TuckerDecomp;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(
        shape: &[usize],
        ranks: &[usize],
        noise: f64,
        seed: u64,
    ) -> (DenseTensor, SlicedTensor, DTuckerConfig) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap();
        let cfg = DTuckerConfig::new(ranks).with_seed(seed);
        let st = SlicedTensor::compress(&x, &cfg).unwrap();
        (x, st, cfg)
    }

    #[test]
    fn iterate_converges_on_noiseless_input() {
        let (x, st, cfg) = setup(&[20, 15, 10], &[3, 3, 3], 0.0, 1);
        let init = initialize(&st, &[3, 3, 3]).unwrap();
        let out = iterate(&st, &[3, 3, 3], init.factors, &cfg).unwrap();
        assert!(
            out.trace.converged,
            "should converge well before 100 sweeps"
        );
        assert!(out.trace.iterations() < 20);
        let d = TuckerDecomp {
            core: out.core,
            factors: out.factors,
        };
        assert!(d.relative_error_sq(&x).unwrap() < 1e-9);
    }

    #[test]
    fn iterate_improves_or_maintains_fit() {
        let (_, st, cfg) = setup(&[25, 20, 12], &[3, 3, 3], 0.2, 2);
        let init = initialize(&st, &[3, 3, 3]).unwrap();
        let out = iterate(&st, &[3, 3, 3], init.factors, &cfg).unwrap();
        let fits = &out.trace.sweep_fits;
        assert!(!fits.is_empty());
        // The fit (residual indicator) should be non-increasing up to noise.
        for w in fits.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "fit increased: {:?}", fits);
        }
    }

    #[test]
    fn iterate_factors_stay_orthonormal() {
        let (_, st, cfg) = setup(&[18, 14, 9], &[4, 3, 2], 0.1, 3);
        let init = initialize(&st, &[4, 3, 2]).unwrap();
        let out = iterate(&st, &[4, 3, 2], init.factors, &cfg).unwrap();
        for f in &out.factors {
            assert!(f.has_orthonormal_cols(1e-7));
        }
        assert_eq!(out.core.shape(), &[4, 3, 2]);
    }

    #[test]
    fn iterate_order4() {
        let (x, st, cfg) = setup(&[12, 10, 5, 4], &[2, 2, 2, 2], 0.0, 4);
        let init = initialize(&st, &[2, 2, 2, 2]).unwrap();
        let out = iterate(&st, &[2, 2, 2, 2], init.factors, &cfg).unwrap();
        let d = TuckerDecomp {
            core: out.core,
            factors: out.factors,
        };
        assert!(d.relative_error_sq(&x).unwrap() < 1e-9);
    }

    #[test]
    fn iterate_matches_error_estimate() {
        let (x, st, cfg) = setup(&[20, 16, 10], &[3, 3, 3], 0.05, 5);
        let init = initialize(&st, &[3, 3, 3]).unwrap();
        let out = iterate(&st, &[3, 3, 3], init.factors, &cfg).unwrap();
        let d = TuckerDecomp {
            core: out.core,
            factors: out.factors,
        };
        let exact = d.relative_error_sq(&x).unwrap();
        let est = d.projection_error_sq(x.fro_norm_sq());
        // The cheap estimate should track the exact error closely (the
        // compression is nearly lossless at this noise level).
        assert!(
            (exact - est).abs() < 5e-3,
            "exact {exact} vs estimate {est}"
        );
    }

    #[test]
    fn iterate_from_random_start_still_converges() {
        let (x, st, cfg) = setup(&[20, 15, 10], &[3, 3, 3], 0.0, 6);
        let mut rng = StdRng::seed_from_u64(99);
        let factors: Vec<Matrix> = st
            .shape()
            .iter()
            .zip([3usize, 3, 3].iter())
            .map(|(&i, &j)| {
                dtucker_linalg::qr::orthonormalize(&dtucker_linalg::random::gaussian_matrix(
                    i, j, &mut rng,
                ))
            })
            .collect();
        let out = iterate(&st, &[3, 3, 3], factors, &cfg).unwrap();
        let d = TuckerDecomp {
            core: out.core,
            factors: out.factors,
        };
        assert!(d.relative_error_sq(&x).unwrap() < 1e-8);
    }
}
