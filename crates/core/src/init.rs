//! Initialization phase.
//!
//! Factor matrices are initialized **directly from the slice SVDs**, without
//! touching the raw tensor:
//!
//! * `A⁽¹⁾` — leading J₁ left singular vectors of the horizontal
//!   concatenation `[U₁Σ₁ | … | U_LΣ_L]` (computed through the smaller of
//!   the two Gram matrices, so the eigen cost is `min(I₁, L·k)³`);
//! * `A⁽²⁾` — same construction with `V_lΣ_l`;
//! * `A⁽ⁿ⁾, n ≥ 3` — leading Jₙ left singular vectors of the mode-`n`
//!   unfolding of the small projected tensor `Y` with slices
//!   `Y_l = A⁽¹⁾ᵀ X_l A⁽²⁾ ∈ R^{J₁×J₂}`.
//!
//! The same `Y` projected onto the trailing factors gives the initial core.

use crate::error::Result;
use crate::slices::SlicedTensor;
use dtucker_linalg::gemm::{matmul_t, t_matmul};
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::pool;
use dtucker_linalg::svd::leading_left_singular_vectors;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::ttm::ttm_t;
use dtucker_tensor::unfold::unfold;

/// Output of the initialization phase, in the sliced tensor's **internal**
/// mode order.
#[derive(Debug, Clone)]
pub struct Initialization {
    /// Factor matrices `A⁽ⁿ⁾ ∈ R^{Iₙ×Jₙ}` (internal order).
    pub factors: Vec<Matrix>,
    /// Initial core tensor (internal order).
    pub core: DenseTensor,
}

/// Runs the initialization phase on a compressed tensor with one worker
/// (see [`initialize_threaded`]).
///
/// `ranks` are the target ranks in the **internal** (permuted) mode order.
pub fn initialize(st: &SlicedTensor, ranks: &[usize]) -> Result<Initialization> {
    initialize_threaded(st, ranks, 1)
}

/// [`initialize`] with the per-slice work fanned out over `threads` pool
/// workers (`0` resolves through the pool policy). Slices are processed
/// independently, so the result is identical for every thread count.
pub fn initialize_threaded(
    st: &SlicedTensor,
    ranks: &[usize],
    threads: usize,
) -> Result<Initialization> {
    let shape = st.shape();
    let n_modes = shape.len();
    debug_assert_eq!(ranks.len(), n_modes);
    let (j1, j2) = (ranks[0], ranks[1]);
    let threads = pool::resolve_threads(threads);

    // A1 / A2 from the leading left singular vectors of the concatenations
    // [U₁Σ₁ | … | U_LΣ_L] and [V₁Σ₁ | … | V_LΣ_L]. The Gram side is chosen
    // by the SVD routine: min(I, L·k)³ eigen cost, never I³ — crucial when
    // a very long mode ends up as a slice dimension (e.g. a short tensor
    // whose time mode dominates).
    let k = st.slice_rank();
    let l = st.num_slices();
    let mut concat_u = Matrix::zeros(shape[0], l * k);
    let mut concat_v = Matrix::zeros(shape[1], l * k);
    let scaled = pool::parallel_map(l, threads.min(l), |i| {
        let sl = &st.slices()[i];
        (sl.us(), sl.vs())
    });
    for (i, (us, vs)) in scaled.iter().enumerate() {
        for r in 0..shape[0] {
            concat_u.row_mut(r)[i * k..i * k + us.cols()].copy_from_slice(us.row(r));
        }
        for r in 0..shape[1] {
            concat_v.row_mut(r)[i * k..i * k + vs.cols()].copy_from_slice(vs.row(r));
        }
    }
    let a1 = leading_lsv_adaptive(&concat_u, j1)?;
    let a2 = leading_lsv_adaptive(&concat_v, j2)?;

    // Projected slices Y_l = (A1ᵀ U_l Σ_l)(A2ᵀ V_l)ᵀ.
    let y = projected_tensor_threaded(st, &a1, &a2, threads)?;

    // Trailing factors from the small tensor's unfoldings.
    let mut factors = vec![a1, a2];
    for mode in 2..n_modes {
        let unf = unfold(&y, mode)?;
        factors.push(leading_left_singular_vectors(&unf, ranks[mode])?);
    }

    // Initial core: project Y onto the trailing factors.
    let mut core = y;
    for mode in 2..n_modes {
        core = ttm_t(&core, &factors[mode], mode)?;
    }
    Ok(Initialization { factors, core })
}

/// The cubic Gram-eigen route is exact but costs `min(m, n)³`; past this
/// size the deterministic subspace iteration (`O(iters·m·n·J)`) is used —
/// initialization only needs the right subspace, which the ALS sweeps then
/// polish.
const EXACT_LSV_LIMIT: usize = 600;

fn leading_lsv_adaptive(a: &Matrix, k: usize) -> Result<Matrix> {
    if a.rows().min(a.cols()) <= EXACT_LSV_LIMIT {
        Ok(leading_left_singular_vectors(a, k)?)
    } else {
        Ok(dtucker_linalg::svd::leading_left_singular_vectors_subspace(
            a, k, 8,
        )?)
    }
}

/// Builds the projected tensor `Y` of shape `(J₁, J₂, I₃, …, I_N)` whose
/// frontal slices are `A⁽¹⁾ᵀ X_l A⁽²⁾`, evaluated through the slice SVDs in
/// `O(L · (I₁+I₂) k J)` time. Single-worker form of
/// [`projected_tensor_threaded`].
pub fn projected_tensor(st: &SlicedTensor, a1: &Matrix, a2: &Matrix) -> Result<DenseTensor> {
    projected_tensor_threaded(st, a1, a2, 1)
}

/// [`projected_tensor`] with the per-slice products fanned out over
/// `threads` pool workers. Bit-identical for every thread count.
pub fn projected_tensor_threaded(
    st: &SlicedTensor,
    a1: &Matrix,
    a2: &Matrix,
    threads: usize,
) -> Result<DenseTensor> {
    let shape = st.shape();
    let mut y_shape = vec![a1.cols(), a2.cols()];
    y_shape.extend_from_slice(&shape[2..]);
    let slices = pool::parallel_map(st.num_slices(), threads.min(st.num_slices()), |l| {
        let sl = &st.slices()[l];
        let p = t_matmul(a1, &sl.us()); // J1 × k
        let q = t_matmul(a2, &sl.v); // J2 × k
        matmul_t(&p, &q) // J1 × J2
    });
    Ok(DenseTensor::from_frontal_slices(&y_shape, &slices)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DTuckerConfig;
    use crate::tucker::TuckerDecomp;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compressed(
        shape: &[usize],
        ranks: &[usize],
        noise: f64,
        seed: u64,
    ) -> (DenseTensor, SlicedTensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = low_rank_plus_noise(shape, ranks, noise, &mut rng).unwrap();
        let cfg = DTuckerConfig::new(ranks).with_seed(seed);
        let st = SlicedTensor::compress(&x, &cfg).unwrap();
        (x, st)
    }

    #[test]
    fn init_shapes() {
        let (_, st) = compressed(&[20, 16, 8], &[3, 2, 4], 0.05, 1);
        let init = initialize(&st, &[3, 2, 4]).unwrap();
        assert_eq!(init.factors.len(), 3);
        assert_eq!(init.factors[0].shape(), (20, 3));
        assert_eq!(init.factors[1].shape(), (16, 2));
        assert_eq!(init.factors[2].shape(), (8, 4));
        assert_eq!(init.core.shape(), &[3, 2, 4]);
    }

    #[test]
    fn init_factors_orthonormal() {
        let (_, st) = compressed(&[18, 14, 6], &[3, 3, 3], 0.1, 2);
        let init = initialize(&st, &[3, 3, 3]).unwrap();
        for f in &init.factors {
            assert!(f.has_orthonormal_cols(1e-8));
        }
    }

    #[test]
    fn init_recovers_exact_low_rank() {
        // For a noiseless low-rank tensor the initialization alone should
        // already be (nearly) exact.
        let (x, st) = compressed(&[20, 15, 10], &[3, 3, 3], 0.0, 3);
        let init = initialize(&st, &[3, 3, 3]).unwrap();
        let d = TuckerDecomp {
            core: init.core,
            factors: init.factors,
        };
        let err = d.relative_error_sq(&x).unwrap();
        assert!(err < 1e-10, "initialization error {err}");
    }

    #[test]
    fn init_on_noisy_tensor_is_reasonable() {
        let noise = 0.1;
        let (x, st) = compressed(&[30, 25, 12], &[3, 3, 3], noise, 4);
        let init = initialize(&st, &[3, 3, 3]).unwrap();
        let d = TuckerDecomp {
            core: init.core,
            factors: init.factors,
        };
        let err = d.relative_error_sq(&x).unwrap();
        // Optimal is ≈ noise²/(1+noise²) ≈ 0.0099; init should be within 2×.
        assert!(err < 0.03, "initialization error {err}");
    }

    #[test]
    fn init_order4() {
        let (x, st) = compressed(&[12, 10, 5, 4], &[2, 2, 2, 2], 0.0, 5);
        let init = initialize(&st, &[2, 2, 2, 2]).unwrap();
        assert_eq!(init.core.shape(), &[2, 2, 2, 2]);
        let d = TuckerDecomp {
            core: init.core,
            factors: init.factors,
        };
        assert!(d.relative_error_sq(&x).unwrap() < 1e-10);
    }

    #[test]
    fn projected_tensor_shape() {
        let (_, st) = compressed(&[20, 16, 8], &[3, 2, 4], 0.0, 6);
        let init = initialize(&st, &[3, 2, 4]).unwrap();
        let y = projected_tensor(&st, &init.factors[0], &init.factors[1]).unwrap();
        assert_eq!(y.shape(), &[3, 2, 8]);
    }
}
