//! Error types for the D-Tucker core.

use dtucker_linalg::LinalgError;
use dtucker_tensor::TensorError;
use std::fmt;

/// Errors produced by the D-Tucker algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The configuration is inconsistent with the input tensor.
    InvalidConfig {
        /// Description of the inconsistency.
        details: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
    /// An internal invariant was violated; this indicates a bug in
    /// dtucker itself, not bad input. Reported as an error instead of a
    /// panic so library callers never abort.
    Internal {
        /// Description of the broken invariant.
        details: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { details } => write!(f, "invalid configuration: {details}"),
            CoreError::Tensor(e) => write!(f, "tensor error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            CoreError::Internal { details } => {
                write!(f, "internal invariant violated (please report): {details}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidConfig {
            details: "ranks".into(),
        };
        assert!(e.to_string().contains("ranks"));
        assert!(e.source().is_none());
        let e: CoreError = LinalgError::NotPositiveDefinite.into();
        assert!(e.source().is_some());
        let e: CoreError = TensorError::Format("x".into()).into();
        assert!(e.to_string().contains("tensor error"));
    }
}
