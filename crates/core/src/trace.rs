//! Convergence tracing for the iteration phase.

/// Record of one ALS run: the fit indicator after every sweep.
///
/// The fit indicator is `sqrt(max(‖X‖² − ‖G‖², 0)) / ‖X‖` — the standard
/// Tucker convergence functional (identical to the one used by the MATLAB
/// Tensor Toolbox and the paper's stopping rule).
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTrace {
    /// Fit indicator after each sweep.
    pub sweep_fits: Vec<f64>,
    /// Whether the tolerance was met before `max_iters`.
    pub converged: bool,
}

impl ConvergenceTrace {
    /// Number of sweeps performed.
    pub fn iterations(&self) -> usize {
        self.sweep_fits.len()
    }

    /// Final fit indicator (`None` before the first sweep).
    pub fn final_fit(&self) -> Option<f64> {
        self.sweep_fits.last().copied()
    }

    /// Records a sweep; returns `true` when the change against the previous
    /// sweep is below `tol`.
    pub fn record(&mut self, fit: f64, tol: f64) -> bool {
        let done = match self.sweep_fits.last() {
            Some(&prev) => (prev - fit).abs() < tol,
            None => false,
        };
        self.sweep_fits.push(fit);
        if done {
            self.converged = true;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_detects_convergence() {
        let mut t = ConvergenceTrace::default();
        assert!(!t.record(0.5, 1e-3));
        assert!(!t.record(0.4, 1e-3));
        assert!(t.record(0.4000001, 1e-3));
        assert!(t.converged);
        assert_eq!(t.iterations(), 3);
        assert!((t.final_fit().unwrap() - 0.4000001).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = ConvergenceTrace::default();
        assert_eq!(t.iterations(), 0);
        assert!(t.final_fit().is_none());
        assert!(!t.converged);
    }
}
