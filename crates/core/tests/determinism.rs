//! Bit-identity of the full pipeline across thread counts.
//!
//! The contract of the execution layer (`dtucker_linalg::pool` + the packed
//! GEMM) is that threading only partitions *output ranges* — it never
//! changes the per-element accumulation order. These tests pin that down
//! end-to-end: approximation, initialization, and iteration must produce
//! the exact same bytes no matter how many workers run.

use dtucker_core::{DTucker, DTuckerConfig};
use dtucker_linalg::pool;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::random::low_rank_plus_noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_tensor(shape: &[usize], ranks: &[usize], seed: u64) -> DenseTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    low_rank_plus_noise(shape, ranks, 0.05, &mut rng).unwrap()
}

/// Runs the whole pipeline and flattens every output buffer (core + all
/// factors) into one `Vec<f64>` for exact comparison.
fn decompose_bits(x: &DenseTensor, ranks: &[usize], seed: u64, threads: usize) -> Vec<f64> {
    let cfg = DTuckerConfig::new(ranks)
        .with_seed(seed)
        .with_threads(threads);
    let out = DTucker::new(cfg).decompose(x).unwrap();
    let mut bits: Vec<f64> = out.decomposition.core.as_slice().to_vec();
    for f in &out.decomposition.factors {
        bits.extend_from_slice(f.as_slice());
    }
    bits
}

#[test]
fn pipeline_bit_identical_across_thread_counts() {
    let ranks = [3usize, 3, 3];
    let x = test_tensor(&[30, 24, 12], &ranks, 7);
    let baseline = decompose_bits(&x, &ranks, 7, 1);
    for threads in [2usize, 3, 4, 7] {
        let other = decompose_bits(&x, &ranks, 7, threads);
        assert_eq!(baseline.len(), other.len());
        for (i, (a, b)) in baseline.iter().zip(other.iter()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "threads={threads}: element {i} differs: {a:e} vs {b:e}"
            );
        }
    }
}

#[test]
fn pipeline_bit_identical_with_gemm_threading_forced() {
    // Force every GEMM above 0 flops through the threaded path so the
    // row-split code runs even on this small problem.
    pool::set_par_flop_threshold(Some(0));
    let ranks = [2usize, 3, 2, 2];
    let x = test_tensor(&[12, 10, 6, 5], &ranks, 11);
    let baseline = decompose_bits(&x, &ranks, 11, 1);
    for threads in [2usize, 5] {
        let other = decompose_bits(&x, &ranks, 11, threads);
        assert_eq!(baseline, other, "threads={threads} diverged");
    }
    pool::set_par_flop_threshold(None);
}

#[test]
fn auto_threads_matches_serial() {
    // threads = 0 resolves through the pool policy (env var / machine
    // parallelism); whatever it resolves to, the bytes must match serial.
    let ranks = [3usize, 2, 3];
    let x = test_tensor(&[25, 20, 9], &ranks, 3);
    let serial = decompose_bits(&x, &ranks, 3, 1);
    let auto = decompose_bits(&x, &ranks, 3, 0);
    assert_eq!(serial, auto);
}
