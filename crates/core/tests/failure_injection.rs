//! Failure-injection and edge-case tests for the D-Tucker pipeline.

use dtucker_core::{DTucker, DTuckerConfig, SlicedTensor};
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::random::low_rank_plus_noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_zero_tensor_decomposes_cleanly() {
    let x = DenseTensor::zeros(&[12, 10, 6]).unwrap();
    let out = DTucker::new(DTuckerConfig::uniform(2, 3))
        .decompose(&x)
        .unwrap();
    // Error against a zero tensor is defined as 0 (nothing to explain).
    assert_eq!(out.decomposition.relative_error_sq(&x).unwrap(), 0.0);
    assert!(out.decomposition.core.fro_norm() < 1e-12);
    assert_eq!(out.decomposition.ranks(), &[2, 2, 2]);
}

#[test]
fn nan_and_inf_inputs_are_rejected_not_propagated() {
    let mut rng = StdRng::seed_from_u64(1);
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut x = low_rank_plus_noise(&[10, 8, 6], &[2, 2, 2], 0.0, &mut rng).unwrap();
        x.set(&[3, 3, 3], bad);
        let err = DTucker::new(DTuckerConfig::uniform(2, 3)).decompose(&x);
        assert!(err.is_err(), "value {bad} must be rejected");
    }
}

#[test]
fn rank_equal_to_dimension_is_exact() {
    let mut rng = StdRng::seed_from_u64(2);
    let x = low_rank_plus_noise(&[6, 6, 6], &[6, 6, 6], 0.2, &mut rng).unwrap();
    let mut cfg = DTuckerConfig::uniform(6, 3);
    cfg.slice_rank = Some(6); // slices cannot hold more than min(I1,I2)=6
    let out = DTucker::new(cfg).decompose(&x).unwrap();
    // Full-rank decomposition of any tensor is exact (up to round-off).
    let err = out.decomposition.relative_error_sq(&x).unwrap();
    assert!(err < 1e-9, "full-rank error {err}");
}

#[test]
fn order2_matrix_case_works() {
    // An order-2 "tensor" is just a matrix: one frontal slice, and D-Tucker
    // reduces to a two-sided SVD-like factorization.
    let mut rng = StdRng::seed_from_u64(3);
    let x = low_rank_plus_noise(&[30, 20], &[3, 3], 0.01, &mut rng).unwrap();
    let out = DTucker::new(DTuckerConfig::uniform(3, 2).with_seed(4))
        .decompose(&x)
        .unwrap();
    assert_eq!(out.sliced.num_slices(), 1);
    let err = out.decomposition.relative_error_sq(&x).unwrap();
    assert!(err < 0.01, "error {err}");
}

#[test]
fn extremely_skewed_shapes() {
    let mut rng = StdRng::seed_from_u64(5);
    // Long and thin in different positions.
    for shape in [[200usize, 4, 4], [4, 200, 4], [4, 4, 200]] {
        let ranks = vec![2usize; 3];
        let x = low_rank_plus_noise(&shape, &ranks, 0.02, &mut rng).unwrap();
        let out = DTucker::new(DTuckerConfig::uniform(2, 3).with_seed(6))
            .decompose(&x)
            .unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.05, "{shape:?}: error {err}");
        assert_eq!(out.decomposition.full_shape(), shape.to_vec());
    }
}

#[test]
fn slice_rank_caps_at_slice_dims() {
    let mut rng = StdRng::seed_from_u64(7);
    let x = low_rank_plus_noise(&[9, 7, 5], &[2, 2, 2], 0.0, &mut rng).unwrap();
    let mut cfg = DTuckerConfig::uniform(2, 3);
    cfg.slice_rank = Some(1000); // absurd request
    let st = SlicedTensor::compress(&x, &cfg).unwrap();
    assert_eq!(st.slice_rank(), 7, "capped at min(I1, I2)");
    assert!(st.compression_error_sq(&x).unwrap() < 1e-10);
}

#[test]
fn constant_tensor_is_rank_one() {
    let x = DenseTensor::from_fn(&[14, 12, 8], |_| 3.5).unwrap();
    let out = DTucker::new(DTuckerConfig::uniform(1, 3).with_seed(8))
        .decompose(&x)
        .unwrap();
    let err = out.decomposition.relative_error_sq(&x).unwrap();
    assert!(err < 1e-10, "constant tensor is exactly rank 1, got {err}");
}

#[test]
fn duplicate_slices_compress_consistently() {
    // A tensor whose frontal slices are all identical: every slice SVD
    // should agree on the singular values.
    let mut rng = StdRng::seed_from_u64(9);
    let base = low_rank_plus_noise(&[16, 12], &[3, 3], 0.0, &mut rng).unwrap();
    let slice = base.frontal_slice(0).unwrap();
    let slices = vec![slice; 5];
    let x = DenseTensor::from_frontal_slices(&[16, 12, 5], &slices).unwrap();
    let cfg = DTuckerConfig::uniform(3, 3).with_seed(10);
    let st = SlicedTensor::compress(&x, &cfg).unwrap();
    let first = &st.slices()[0];
    for sl in st.slices() {
        for (a, b) in sl.s.iter().zip(first.s.iter()) {
            assert!((a - b).abs() < 1e-8, "slice spectra should match");
        }
    }
}
