//! Property-based tests for the D-Tucker pipeline.

use dtucker_core::{DTucker, DTuckerConfig, SlicedTensor};
use dtucker_tensor::random::low_rank_plus_noise;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: (shape, rank, noise, seed) for an order-3 tensor that is
/// approximately low rank.
fn case() -> impl Strategy<Value = (Vec<usize>, usize, f64, u64)> {
    (
        proptest::collection::vec(6usize..=20, 3),
        2usize..=4,
        0.0f64..0.2,
        any::<u64>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decompose_invariants((shape, rank, noise, seed) in case()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ranks = vec![rank.min(*shape.iter().min().unwrap()); 3];
        let x = low_rank_plus_noise(&shape, &ranks, noise, &mut rng).unwrap();
        let mut cfg = DTuckerConfig::new(&ranks);
        cfg.seed = seed;
        let out = DTucker::new(cfg).decompose(&x).unwrap();
        let d = &out.decomposition;

        // Shapes are as requested, factors orthonormal.
        prop_assert_eq!(d.ranks(), ranks.as_slice());
        prop_assert_eq!(d.full_shape(), shape.clone());
        prop_assert!(d.factors_orthonormal(1e-6));

        // Error never exceeds 1 (predicting zero) and beats the noise level
        // by a reasonable margin when the model rank matches the data.
        let err = d.relative_error_sq(&x).unwrap();
        prop_assert!(err.is_finite());
        prop_assert!(err <= 1.0 + 1e-9);
        let noise_floor = noise * noise / (1.0 + noise * noise);
        prop_assert!(err <= 3.0 * noise_floor + 0.05, "err {} vs floor {}", err, noise_floor);

        // The fit trace is monotone non-increasing (up to tiny jitter).
        for w in out.trace.sweep_fits.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn compression_error_bounded_by_slice_tail((shape, rank, noise, seed) in case()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0);
        let ranks = vec![rank.min(*shape.iter().min().unwrap()); 3];
        let x = low_rank_plus_noise(&shape, &ranks, noise, &mut rng).unwrap();
        let mut cfg = DTuckerConfig::new(&ranks);
        cfg.seed = seed;
        let st = SlicedTensor::compress(&x, &cfg).unwrap();

        // Norm bookkeeping is conserved.
        prop_assert!((st.norm_x_sq() - x.fro_norm_sq()).abs() <= 1e-6 * (1.0 + x.fro_norm_sq()));
        // Compressed energy never exceeds the original.
        prop_assert!(st.compressed_norm_sq() <= st.norm_x_sq() * (1.0 + 1e-9));
        // Reconstruction error matches the discarded energy:
        // ‖X − X̃‖² ≈ ‖X‖² − ‖X̃‖² (slices are orthogonal projections).
        let err = st.compression_error_sq(&x).unwrap();
        let tail = (st.norm_x_sq() - st.compressed_norm_sq()).max(0.0) / st.norm_x_sq();
        prop_assert!((err - tail).abs() <= 0.25 * tail + 1e-6, "err {} vs tail {}", err, tail);
    }

    #[test]
    fn decompose_sliced_matches_decompose((shape, rank, noise, seed) in case()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1);
        let ranks = vec![rank.min(*shape.iter().min().unwrap()); 3];
        let x = low_rank_plus_noise(&shape, &ranks, noise, &mut rng).unwrap();
        let mut cfg = DTuckerConfig::new(&ranks);
        cfg.seed = seed;
        let direct = DTucker::new(cfg.clone()).decompose(&x).unwrap();
        let sliced = SlicedTensor::compress(&x, &cfg).unwrap();
        let reused = DTucker::new(cfg).decompose_sliced(&sliced).unwrap();
        // Identical compression + identical deterministic iterations ⇒
        // identical cores.
        prop_assert!(
            direct.decomposition.core.sub(&reused.decomposition.core).unwrap().fro_norm()
                < 1e-9 * (1.0 + direct.decomposition.core.fro_norm())
        );
    }
}
