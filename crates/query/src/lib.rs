//! # dtucker-query
//!
//! A factored reconstruction query engine for stored Tucker artifacts.
//!
//! D-Tucker's output `G ×₁ A⁽¹⁾ ⋯ ×_N A⁽ᴺ⁾` is orders of magnitude
//! smaller than the tensor it approximates — but that only pays off
//! downstream if values can be read back *without* materializing the full
//! tensor. This crate serves **element, fiber, slice, and arbitrary
//! hyper-rectangle** reconstruction queries, plus sum/mean/Frobenius-norm
//! aggregates, straight from the factors:
//!
//! - [`plan`] simulates the FLOP cost of every mode-contraction order and
//!   picks the cheapest (shrinking modes first), deterministically;
//! - [`cache`] keeps recently-used partial contractions in a byte-budgeted
//!   LRU keyed by the ordered contraction chain;
//! - [`engine::QueryEngine`] executes plans on the shared worker pool,
//!   resumes from the longest cached prefix, reorders batches so queries
//!   sharing a prefix run back-to-back, and times its plan/cache/contract
//!   phases into the workspace-wide
//!   [`PhaseProfile`](dtucker_core::PhaseProfile).
//!
//! Results are exactly what slicing the naively-reconstructed tensor
//! would give (up to the summation-order tolerance pinned by the property
//! tests), and identical queries are **bit-identical** regardless of
//! cache state.
//!
//! ```no_run
//! use dtucker_query::{QueryEngine, Range};
//!
//! let mut engine = QueryEngine::open("artifacts/decomp.dts")?;
//! let v = engine.element(&[3, 17, 5])?;
//! let shape = engine.shape().to_vec();
//! let box_ = Range::parse("0:8,17,:", &shape)?;
//! let block = engine.query(&box_)?;
//! println!("x[3,17,5] = {v}, block sum = {}", engine.sum(&box_)?);
//! # Ok::<(), dtucker_query::QueryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// LRU cache of partial-contraction prefixes.
pub mod cache;
/// The query engine: plan, execute, cache, profile.
pub mod engine;
/// Typed query errors.
pub mod error;
/// Contraction-order planning (exhaustive + greedy).
pub mod plan;
/// Half-open per-mode index ranges.
pub mod range;
/// Thread-safe sharded sharing of the engine (one cache per worker).
pub mod shared;

pub use cache::{CacheStats, ContractionCache};
pub use engine::{QueryEngine, DEFAULT_CACHE_BYTES};
pub use error::{QueryError, Result};
pub use plan::{plan, PlanStep, QueryPlan};
pub use range::Range;
pub use shared::SharedQueryEngine;
