//! Hyper-rectangle query ranges.
//!
//! A [`Range`] selects a box `[lo₁,hi₁) × … × [lo_N,hi_N)` of the tensor a
//! decomposition approximates. Elements, fibers, and slices are all
//! special cases (every mode pinned; one mode free; one mode pinned), so
//! the engine has a single entry point.

use crate::error::{QueryError, Result};

/// A half-open hyper-rectangle `[lo, hi)` per mode.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Range {
    bounds: Vec<(usize, usize)>,
}

impl Range {
    /// A range from explicit per-mode half-open bounds.
    pub fn new(bounds: Vec<(usize, usize)>) -> Self {
        Range { bounds }
    }

    /// The full tensor.
    pub fn full(shape: &[usize]) -> Self {
        Range {
            bounds: shape.iter().map(|&d| (0, d)).collect(),
        }
    }

    /// A single element.
    pub fn element(index: &[usize]) -> Self {
        Range {
            bounds: index.iter().map(|&i| (i, i + 1)).collect(),
        }
    }

    /// A mode-`mode` fiber: free along `mode`, pinned to `at` elsewhere
    /// (`at[mode]` is ignored).
    pub fn fiber(shape: &[usize], mode: usize, at: &[usize]) -> Self {
        Range {
            bounds: at
                .iter()
                .enumerate()
                .map(|(n, &i)| if n == mode { (0, shape[n]) } else { (i, i + 1) })
                .collect(),
        }
    }

    /// A slice: mode `mode` pinned to `index`, all other modes free.
    pub fn slice(shape: &[usize], mode: usize, index: usize) -> Self {
        Range {
            bounds: shape
                .iter()
                .enumerate()
                .map(|(n, &d)| {
                    if n == mode {
                        (index, index + 1)
                    } else {
                        (0, d)
                    }
                })
                .collect(),
        }
    }

    /// Parses a textual range spec against `shape`.
    ///
    /// The spec is one comma-separated term per mode: `i` (single index),
    /// `lo:hi` (half-open), `lo:` / `:hi` (open end), or `:` (full mode).
    /// Example for a 3-mode tensor: `3,0:10,:`.
    pub fn parse(spec: &str, shape: &[usize]) -> Result<Self> {
        let terms: Vec<&str> = spec.split(',').collect();
        if terms.len() != shape.len() {
            return Err(QueryError::Parse(format!(
                "spec '{spec}' has {} terms but the tensor has {} modes",
                terms.len(),
                shape.len()
            )));
        }
        let mut bounds = Vec::with_capacity(terms.len());
        for (n, term) in terms.iter().enumerate() {
            let term = term.trim();
            let bad = |d: &str| QueryError::Parse(format!("mode {n} term '{term}': {d}"));
            if let Some((lo, hi)) = term.split_once(':') {
                let lo = if lo.is_empty() {
                    0
                } else {
                    lo.parse::<usize>().map_err(|e| bad(&e.to_string()))?
                };
                let hi = if hi.is_empty() {
                    shape[n]
                } else {
                    hi.parse::<usize>().map_err(|e| bad(&e.to_string()))?
                };
                bounds.push((lo, hi));
            } else {
                let i = term.parse::<usize>().map_err(|e| bad(&e.to_string()))?;
                bounds.push((i, i + 1));
            }
        }
        let r = Range { bounds };
        r.validate_for(shape)?;
        Ok(r)
    }

    /// The per-mode bounds.
    pub fn bounds(&self) -> &[(usize, usize)] {
        &self.bounds
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.bounds.len()
    }

    /// Extent `hi − lo` of each mode.
    pub fn extents(&self) -> Vec<usize> {
        self.bounds.iter().map(|&(lo, hi)| hi - lo).collect()
    }

    /// Number of selected elements.
    pub fn numel(&self) -> usize {
        self.bounds.iter().map(|&(lo, hi)| hi - lo).product()
    }

    /// Whether the range selects exactly one element.
    pub fn is_element(&self) -> bool {
        self.bounds.iter().all(|&(lo, hi)| hi == lo + 1)
    }

    /// Checks the range against a tensor shape: matching order, non-empty
    /// per-mode intervals, bounds within the mode.
    pub fn validate_for(&self, shape: &[usize]) -> Result<()> {
        if self.bounds.len() != shape.len() {
            return Err(QueryError::InvalidRange {
                details: format!(
                    "range has {} modes but the tensor has {}",
                    self.bounds.len(),
                    shape.len()
                ),
            });
        }
        for (n, (&(lo, hi), &d)) in self.bounds.iter().zip(shape.iter()).enumerate() {
            if lo >= hi {
                return Err(QueryError::InvalidRange {
                    details: format!("mode {n}: empty interval {lo}..{hi}"),
                });
            }
            if hi > d {
                return Err(QueryError::InvalidRange {
                    details: format!("mode {n}: interval {lo}..{hi} exceeds size {d}"),
                });
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Range {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (n, &(lo, hi)) in self.bounds.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            if hi == lo + 1 {
                write!(f, "{lo}")?;
            } else {
                write!(f, "{lo}:{hi}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let shape = [4, 5, 6];
        assert_eq!(Range::full(&shape).bounds(), &[(0, 4), (0, 5), (0, 6)]);
        assert_eq!(
            Range::element(&[1, 2, 3]).bounds(),
            &[(1, 2), (2, 3), (3, 4)]
        );
        assert!(Range::element(&[1, 2, 3]).is_element());
        assert_eq!(
            Range::fiber(&shape, 1, &[2, 0, 3]).bounds(),
            &[(2, 3), (0, 5), (3, 4)]
        );
        assert_eq!(
            Range::slice(&shape, 2, 4).bounds(),
            &[(0, 4), (0, 5), (4, 5)]
        );
        let r = Range::new(vec![(1, 3), (0, 5), (2, 3)]);
        assert_eq!(r.extents(), vec![2, 5, 1]);
        assert_eq!(r.numel(), 10);
        assert_eq!(r.order(), 3);
        assert!(!r.is_element());
        r.validate_for(&shape).unwrap();
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let shape = [4, 5];
        assert!(Range::new(vec![(0, 4)]).validate_for(&shape).is_err());
        assert!(Range::new(vec![(2, 2), (0, 5)])
            .validate_for(&shape)
            .is_err());
        assert!(Range::new(vec![(3, 1), (0, 5)])
            .validate_for(&shape)
            .is_err());
        assert!(Range::new(vec![(0, 5), (0, 5)])
            .validate_for(&shape)
            .is_err());
        assert!(matches!(
            Range::new(vec![(0, 4), (4, 6)]).validate_for(&shape),
            Err(QueryError::InvalidRange { .. })
        ));
    }

    #[test]
    fn parse_round_trips() {
        let shape = [10, 20, 30];
        let r = Range::parse("3,0:10,:", &shape).unwrap();
        assert_eq!(r.bounds(), &[(3, 4), (0, 10), (0, 30)]);
        assert_eq!(
            Range::parse("5:,:7,29", &shape).unwrap().bounds(),
            &[(5, 10), (0, 7), (29, 30)]
        );
        // Display → parse round trip.
        let r = Range::new(vec![(1, 2), (3, 9), (0, 30)]);
        assert_eq!(Range::parse(&r.to_string(), &shape).unwrap(), r);

        assert!(matches!(
            Range::parse("1,2", &shape),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            Range::parse("a,0:10,:", &shape),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            Range::parse("1,0:99,:", &shape),
            Err(QueryError::InvalidRange { .. })
        ));
    }
}
