//! The query engine: factored range reconstruction with planning,
//! caching, and per-phase profiling.

use crate::cache::{CacheStats, ContractionCache};
use crate::error::{QueryError, Result};
use crate::plan::{plan, QueryPlan};
use crate::range::Range;
use dtucker_core::{PhaseProfile, TuckerDecomp};
use dtucker_linalg::Matrix;
use dtucker_store::ArtifactStore;
use dtucker_tensor::ttm::{ttm, ttm_rows};
use dtucker_tensor::DenseTensor;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Default partial-contraction cache budget (64 MiB).
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Serves element/fiber/slice/range reconstruction queries — and
/// aggregates — against a Tucker decomposition, never materializing more
/// than the requested box.
///
/// Every query runs through three phases, timed into a shared
/// [`PhaseProfile`]:
///
/// 1. **plan** — pick the contraction order minimizing simulated FLOPs;
/// 2. **cache** — probe the LRU cache for the longest already-computed
///    prefix of that plan;
/// 3. **contract** — execute the remaining steps on the worker pool,
///    caching every new prefix.
///
/// Identical queries produce bit-identical results regardless of cache
/// state: the plan is deterministic, cache keys encode the contraction
/// *order*, and a cached intermediate is exactly the tensor the engine
/// would have recomputed.
#[derive(Debug)]
pub struct QueryEngine {
    decomp: Arc<TuckerDecomp>,
    shape: Vec<usize>,
    cache: ContractionCache,
    profile: PhaseProfile,
}

impl QueryEngine {
    /// An engine over an in-memory decomposition with the default cache
    /// budget.
    pub fn new(decomp: TuckerDecomp) -> Result<Self> {
        Self::with_cache_bytes(decomp, DEFAULT_CACHE_BYTES)
    }

    /// An engine with an explicit cache budget (0 disables caching).
    pub fn with_cache_bytes(decomp: TuckerDecomp, cache_bytes: usize) -> Result<Self> {
        Self::from_shared(Arc::new(decomp), cache_bytes)
    }

    /// An engine over a decomposition shared with other engines (the
    /// factors and core are reference-counted, never copied per engine —
    /// this is what lets [`SharedQueryEngine`](crate::SharedQueryEngine)
    /// keep one model in memory across many per-worker cache shards).
    pub fn from_shared(decomp: Arc<TuckerDecomp>, cache_bytes: usize) -> Result<Self> {
        decomp.validate()?;
        let shape = decomp.full_shape();
        Ok(QueryEngine {
            decomp,
            shape,
            cache: ContractionCache::new(cache_bytes),
            profile: PhaseProfile::new(),
        })
    }

    /// Loads a decomposition artifact (`.dts`) from an explicit path.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_cache_bytes(path, DEFAULT_CACHE_BYTES)
    }

    /// Loads a decomposition artifact with an explicit cache budget.
    pub fn open_with_cache_bytes(path: impl AsRef<Path>, cache_bytes: usize) -> Result<Self> {
        Self::with_cache_bytes(dtucker_store::read_decomposition(path)?, cache_bytes)
    }

    /// Loads a named decomposition from an [`ArtifactStore`].
    pub fn from_store(store: &ArtifactStore, name: &str) -> Result<Self> {
        Self::new(store.load_decomposition(name)?)
    }

    /// Shape of the tensor the decomposition approximates.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Multilinear ranks of the decomposition.
    pub fn ranks(&self) -> &[usize] {
        self.decomp.ranks()
    }

    /// The decomposition being served.
    pub fn decomp(&self) -> &TuckerDecomp {
        &self.decomp
    }

    /// A reference-counted handle to the decomposition, for building
    /// further engines over the same model without copying it.
    pub fn decomp_shared(&self) -> Arc<TuckerDecomp> {
        Arc::clone(&self.decomp)
    }

    /// Cache counter snapshot. Each query probes plan prefixes
    /// longest-first until one hits, so a cold order-`N` query records up
    /// to `N` misses and a fully warm one records a single hit.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Bytes of tensor payload currently held by the partial-contraction
    /// cache.
    pub fn cache_used_bytes(&self) -> usize {
        self.cache.used_bytes()
    }

    /// The cache's configured byte budget (0 means caching is disabled).
    pub fn cache_budget_bytes(&self) -> usize {
        self.cache.budget_bytes()
    }

    /// Number of partial contractions currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Accumulated per-phase timings (`plan` / `cache` / `contract`).
    pub fn profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Resets the per-phase timings (cache contents and counters stay).
    pub fn reset_profile(&mut self) {
        self.profile = PhaseProfile::new();
    }

    /// Reconstructs the hyper-rectangle `range` of the approximated
    /// tensor. The result's shape is the range's extents in original mode
    /// order.
    pub fn query(&mut self, range: &Range) -> Result<DenseTensor> {
        range.validate_for(&self.shape)?;
        let t0 = Instant::now();
        let plan = plan(self.decomp.ranks(), range);
        self.profile.record("plan", t0.elapsed());
        self.execute(&plan)
    }

    /// Reconstructs a single element.
    pub fn element(&mut self, index: &[usize]) -> Result<f64> {
        let t = self.query(&Range::element(index))?;
        Ok(t.as_slice()[0])
    }

    /// Reconstructs the mode-`mode` fiber through `at` (a vector of
    /// length `shape[mode]`).
    pub fn fiber(&mut self, mode: usize, at: &[usize]) -> Result<Vec<f64>> {
        if mode >= self.shape.len() {
            return Err(QueryError::InvalidRange {
                details: format!(
                    "mode {mode} out of range for an order-{} tensor",
                    self.shape.len()
                ),
            });
        }
        if at.len() != self.shape.len() {
            return Err(QueryError::InvalidRange {
                details: format!(
                    "fiber anchor has {} indices but the tensor has {} modes",
                    at.len(),
                    self.shape.len()
                ),
            });
        }
        let t = self.query(&Range::fiber(&self.shape, mode, at))?;
        Ok(t.as_slice().to_vec())
    }

    /// Reconstructs the slice `mode = index` (result keeps the pinned mode
    /// with extent 1).
    pub fn slice(&mut self, mode: usize, index: usize) -> Result<DenseTensor> {
        if mode >= self.shape.len() {
            return Err(QueryError::InvalidRange {
                details: format!(
                    "mode {mode} out of range for an order-{} tensor",
                    self.shape.len()
                ),
            });
        }
        self.query(&Range::slice(&self.shape, mode, index))
    }

    /// Sum of the elements in `range`, computed **without** materializing
    /// the range: each mode is contracted with the ones-vector image
    /// `1ᵀ·A⁽ⁿ⁾[lo..hi, :]` (a `1×Jₙ` row), so the cost depends only on
    /// the ranks and factor heights — not on how many elements the range
    /// covers.
    pub fn sum(&mut self, range: &Range) -> Result<f64> {
        range.validate_for(&self.shape)?;
        let t0 = Instant::now();
        let mut cur = self.decomp.core.clone();
        for (mode, &(lo, hi)) in range.bounds().iter().enumerate() {
            let f = self.decomp.factor(mode)?;
            let mut s = vec![0.0; f.cols()];
            for r in lo..hi {
                for (j, &v) in f.row(r).iter().enumerate() {
                    s[j] += v;
                }
            }
            let ones_image = Matrix::from_vec(1, f.cols(), s)?;
            cur = ttm(&cur, &ones_image, mode)?;
        }
        self.profile.record("contract", t0.elapsed());
        Ok(cur.as_slice()[0])
    }

    /// Mean of the elements in `range` (same factored path as [`sum`]).
    ///
    /// [`sum`]: QueryEngine::sum
    pub fn mean(&mut self, range: &Range) -> Result<f64> {
        Ok(self.sum(range)? / range.numel() as f64)
    }

    /// Frobenius norm of the elements in `range`. Unlike [`sum`], the
    /// squares do not factor through the modes, so this materializes the
    /// range (still never the full tensor).
    ///
    /// [`sum`]: QueryEngine::sum
    pub fn fro_norm(&mut self, range: &Range) -> Result<f64> {
        Ok(self.query(range)?.fro_norm())
    }

    /// Answers a batch of range queries, reordering execution so queries
    /// sharing a contraction prefix run back-to-back and hit the cache.
    /// Results come back in the caller's order, each bit-identical to the
    /// corresponding [`query`] call.
    ///
    /// [`query`]: QueryEngine::query
    pub fn query_batch(&mut self, ranges: &[Range]) -> Result<Vec<DenseTensor>> {
        for r in ranges {
            r.validate_for(&self.shape)?;
        }
        let t0 = Instant::now();
        let plans: Vec<QueryPlan> = ranges
            .iter()
            .map(|r| plan(self.decomp.ranks(), r))
            .collect();
        let mut order: Vec<usize> = (0..ranges.len()).collect();
        order.sort_by(|&a, &b| {
            let ka = plans[a].prefix_key(plans[a].steps.len());
            let kb = plans[b].prefix_key(plans[b].steps.len());
            ka.cmp(&kb).then(a.cmp(&b))
        });
        self.profile.record("plan", t0.elapsed());
        let mut out: Vec<Option<DenseTensor>> = vec![None; ranges.len()];
        for i in order {
            out[i] = Some(self.execute(&plans[i])?);
        }
        out.into_iter()
            .map(|t| {
                t.ok_or_else(|| QueryError::Internal("batch execution left a slot unfilled".into()))
            })
            .collect()
    }

    /// Runs a plan: longest-cached-prefix lookup, then the remaining
    /// contractions, caching each new prefix.
    fn execute(&mut self, plan: &QueryPlan) -> Result<DenseTensor> {
        let n = plan.steps.len();
        let t0 = Instant::now();
        let mut resumed = None;
        let mut start = 0;
        for k in (1..=n).rev() {
            if let Some(t) = self.cache.get(&plan.prefix_key(k)) {
                resumed = Some(t);
                start = k;
                break;
            }
        }
        self.profile.record("cache", t0.elapsed());

        let t0 = Instant::now();
        let mut cur = resumed.unwrap_or_else(|| self.decomp.core.clone());
        for (k, step) in plan.steps.iter().enumerate().skip(start) {
            let f = self.decomp.factor(step.mode)?;
            cur = ttm_rows(&cur, f, step.rows.0, step.rows.1, step.mode)?;
            self.cache.insert(plan.prefix_key(k + 1), &cur);
        }
        self.profile.record("contract", t0.elapsed());
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::random_tucker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(seed: u64) -> (QueryEngine, DenseTensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_tucker(&[9, 7, 6], &[3, 2, 4], &mut rng).unwrap();
        let d = TuckerDecomp {
            core: m.core,
            factors: m.factors,
        };
        let full = d.reconstruct().unwrap();
        (QueryEngine::new(d).unwrap(), full)
    }

    fn assert_close(a: &DenseTensor, b: &DenseTensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn range_query_matches_naive_slicing() {
        let (mut e, full) = engine(1);
        for bounds in [
            vec![(0, 9), (0, 7), (0, 6)],
            vec![(2, 5), (1, 2), (0, 6)],
            vec![(8, 9), (6, 7), (5, 6)],
            vec![(0, 1), (0, 7), (3, 4)],
        ] {
            let r = Range::new(bounds.clone());
            let got = e.query(&r).unwrap();
            let want = full.subtensor(&bounds).unwrap();
            assert_close(&got, &want);
        }
    }

    #[test]
    fn element_fiber_slice_helpers() {
        let (mut e, full) = engine(2);
        assert!((e.element(&[3, 4, 5]).unwrap() - full.get(&[3, 4, 5])).abs() < 1e-9);
        let fiber = e.fiber(1, &[2, 0, 3]).unwrap();
        assert_eq!(fiber.len(), 7);
        for (j, v) in fiber.iter().enumerate() {
            assert!((v - full.get(&[2, j, 3])).abs() < 1e-9);
        }
        let slice = e.slice(2, 4).unwrap();
        assert_eq!(slice.shape(), &[9, 7, 1]);
        for i in 0..9 {
            for j in 0..7 {
                assert!((slice.get(&[i, j, 0]) - full.get(&[i, j, 4])).abs() < 1e-9);
            }
        }
        assert!(e.element(&[9, 0, 0]).is_err());
        assert!(e.fiber(3, &[0, 0, 0]).is_err());
        assert!(e.fiber(0, &[0, 0]).is_err());
        assert!(e.slice(5, 0).is_err());
        assert!(e.slice(0, 9).is_err());
    }

    #[test]
    fn aggregates_match_naive() {
        let (mut e, full) = engine(3);
        let bounds = vec![(1, 6), (0, 7), (2, 5)];
        let r = Range::new(bounds.clone());
        let sub = full.subtensor(&bounds).unwrap();
        let naive_sum: f64 = sub.as_slice().iter().sum();
        assert!((e.sum(&r).unwrap() - naive_sum).abs() < 1e-8);
        assert!((e.mean(&r).unwrap() - naive_sum / sub.numel() as f64).abs() < 1e-8);
        assert!((e.fro_norm(&r).unwrap() - sub.fro_norm()).abs() < 1e-8);
    }

    #[test]
    fn cache_hits_are_bit_identical() {
        let (mut e, _) = engine(4);
        let r = Range::new(vec![(2, 3), (1, 3), (0, 2)]);
        let cold = e.query(&r).unwrap();
        let stats0 = e.cache_stats();
        assert!(stats0.insertions > 0);
        let warm = e.query(&r).unwrap();
        let stats1 = e.cache_stats();
        assert!(stats1.hits > stats0.hits, "second query must hit");
        assert_eq!(cold.shape(), warm.shape());
        for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A prefix-sharing query (same first contractions, wider tail):
        // both plans contract mode 0 then mode 2 first, so the second
        // query resumes from the cached two-step prefix.
        let r2 = Range::new(vec![(2, 3), (1, 6), (0, 2)]);
        let hits_before = e.cache_stats().hits;
        let _ = e.query(&r2).unwrap();
        assert!(e.cache_stats().hits > hits_before);
    }

    #[test]
    fn disabled_cache_still_correct() {
        let mut rng = StdRng::seed_from_u64(5);
        let m = random_tucker(&[8, 6, 5], &[2, 3, 2], &mut rng).unwrap();
        let d = TuckerDecomp {
            core: m.core,
            factors: m.factors,
        };
        let full = d.reconstruct().unwrap();
        let mut e = QueryEngine::with_cache_bytes(d, 0).unwrap();
        let r = Range::new(vec![(1, 4), (0, 6), (2, 3)]);
        let got = e.query(&r).unwrap();
        assert_close(&got, &full.subtensor(r.bounds()).unwrap());
        assert_eq!(e.cache_stats().hits, 0);
        assert_eq!(e.cache_stats().insertions, 0);
    }

    #[test]
    fn batch_matches_individual_queries() {
        let (mut e, full) = engine(6);
        let ranges = vec![
            Range::new(vec![(0, 2), (0, 7), (0, 6)]),
            Range::new(vec![(4, 5), (2, 3), (1, 2)]),
            Range::new(vec![(0, 2), (0, 7), (2, 4)]),
            Range::new(vec![(4, 5), (2, 3), (1, 2)]),
        ];
        let out = e.query_batch(&ranges).unwrap();
        assert_eq!(out.len(), ranges.len());
        for (r, got) in ranges.iter().zip(&out) {
            assert_close(got, &full.subtensor(r.bounds()).unwrap());
        }
        // Duplicate queries in one batch are served from cache.
        assert!(e.cache_stats().hits > 0);
    }

    #[test]
    fn invalid_ranges_are_typed_errors() {
        let (mut e, _) = engine(7);
        for bad in [
            Range::new(vec![(0, 9), (0, 7)]),
            Range::new(vec![(0, 10), (0, 7), (0, 6)]),
            Range::new(vec![(3, 3), (0, 7), (0, 6)]),
        ] {
            assert!(matches!(
                e.query(&bad),
                Err(QueryError::InvalidRange { .. })
            ));
            assert!(e.sum(&bad).is_err());
            assert!(e.query_batch(std::slice::from_ref(&bad)).is_err());
        }
    }

    #[test]
    fn profile_records_phases() {
        let (mut e, _) = engine(8);
        let _ = e.query(&Range::new(vec![(0, 9), (0, 7), (0, 6)])).unwrap();
        let p = e.profile();
        assert!(p.count("plan") >= 1);
        assert!(p.count("cache") >= 1);
        assert!(p.count("contract") >= 1);
        e.reset_profile();
        assert_eq!(e.profile().count("plan"), 0);
    }

    #[test]
    fn open_from_artifact() {
        let dir = std::env::temp_dir().join(format!("dtucker_query_open_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let m = random_tucker(&[6, 5, 4], &[2, 2, 2], &mut rng).unwrap();
        let d = TuckerDecomp {
            core: m.core,
            factors: m.factors,
        };
        let full = d.reconstruct().unwrap();
        let path = store.save_decomposition("d", &d).unwrap();

        let mut by_path = QueryEngine::open(&path).unwrap();
        let mut by_name = QueryEngine::from_store(&store, "d").unwrap();
        assert_eq!(by_path.shape(), &[6, 5, 4]);
        assert_eq!(by_name.ranks(), &[2, 2, 2]);
        let v = by_path.element(&[1, 2, 3]).unwrap();
        assert!((v - full.get(&[1, 2, 3])).abs() < 1e-9);
        assert_eq!(v.to_bits(), by_name.element(&[1, 2, 3]).unwrap().to_bits());
        assert!(QueryEngine::open(dir.join("missing.dts")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
