//! Byte-budgeted LRU cache of partial contractions.
//!
//! The engine's intermediates — `G ×_{n₁} A⁽ⁿ¹⁾[rows] ×_{n₂} …` — are
//! exactly what consecutive queries over hot index ranges share, so the
//! cache stores every prefix of every executed plan under its ordered
//! `(mode, lo, hi)` chain (see `QueryPlan::prefix_key`). Eviction is
//! least-recently-used under a configurable byte budget; hit/miss/
//! insertion/eviction counters feed the benchmarks and `--profile`.

use dtucker_tensor::DenseTensor;
use std::collections::HashMap;

/// Ordered chain of `(mode, lo, hi)` contraction steps identifying a
/// partial contraction. Order matters: TTM chains over distinct modes
/// commute mathematically but not bitwise.
pub type CacheKey = Vec<(usize, usize, usize)>;

/// Running counters of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Successful insertions.
    pub insertions: u64,
    /// Entries removed to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 with no traffic.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
            insertions: self.insertions + rhs.insertions,
            evictions: self.evictions + rhs.evictions,
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

#[derive(Debug)]
struct Entry {
    tensor: DenseTensor,
    bytes: usize,
    last_used: u64,
}

/// LRU cache of partial contractions under a byte budget.
#[derive(Debug)]
pub struct ContractionCache {
    map: HashMap<CacheKey, Entry>,
    budget: usize,
    used: usize,
    tick: u64,
    stats: CacheStats,
}

impl ContractionCache {
    /// A cache holding at most `budget_bytes` of tensor payload. A zero
    /// budget disables caching (every lookup misses, inserts are dropped).
    pub fn new(budget_bytes: usize) -> Self {
        ContractionCache {
            map: HashMap::new(),
            budget: budget_bytes,
            used: 0,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn entry_bytes(t: &DenseTensor) -> usize {
        t.numel() * std::mem::size_of::<f64>() + t.order() * std::mem::size_of::<usize>()
    }

    /// Looks up a partial contraction, refreshing its recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<DenseTensor> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                Some(e.tensor.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a partial contraction, evicting least-recently-used entries
    /// until it fits. Tensors larger than the whole budget are dropped.
    pub fn insert(&mut self, key: CacheKey, tensor: &DenseTensor) {
        let bytes = Self::entry_bytes(tensor);
        if bytes > self.budget {
            return;
        }
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.bytes;
        }
        while self.used + bytes > self.budget {
            // An over-budget `used` implies live entries, but degrade
            // gracefully (stop evicting) rather than panic if the
            // accounting ever drifts.
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(e) = self.map.remove(&lru) {
                self.used -= e.bytes;
                self.stats.evictions += 1;
            }
        }
        self.tick += 1;
        self.map.insert(
            key,
            Entry {
                tensor: tensor.clone(),
                bytes,
                last_used: self.tick,
            },
        );
        self.used += bytes;
        self.stats.insertions += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently held.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(numel: usize, fill: f64) -> DenseTensor {
        DenseTensor::from_vec(&[numel], vec![fill; numel]).unwrap()
    }

    fn key(id: usize) -> CacheKey {
        vec![(id, 0, 1)]
    }

    #[test]
    fn hit_miss_and_round_trip() {
        let mut c = ContractionCache::new(1 << 20);
        assert!(c.get(&key(1)).is_none());
        c.insert(key(1), &tensor(4, 2.5));
        let back = c.get(&key(1)).unwrap();
        assert_eq!(back.as_slice(), &[2.5; 4]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().insertions, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
        assert!(c.used_bytes() > 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Budget fits two 10-element entries but not three.
        let one = ContractionCache::entry_bytes(&tensor(10, 0.0));
        let mut c = ContractionCache::new(2 * one);
        c.insert(key(1), &tensor(10, 1.0));
        c.insert(key(2), &tensor(10, 2.0));
        assert!(c.get(&key(1)).is_some()); // refresh 1 → 2 is now LRU
        c.insert(key(3), &tensor(10, 3.0));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(&key(2)).is_none(), "LRU entry should be gone");
        assert!(c.get(&key(1)).is_some());
        assert!(c.get(&key(3)).is_some());
        assert!(c.used_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_and_zero_budget() {
        let mut c = ContractionCache::new(8);
        c.insert(key(1), &tensor(100, 1.0));
        assert_eq!(c.len(), 0, "oversized entry must be dropped");
        let mut z = ContractionCache::new(0);
        z.insert(key(1), &tensor(1, 1.0));
        assert!(z.get(&key(1)).is_none());
        assert_eq!(z.stats().insertions, 0);
    }

    #[test]
    fn reinsert_replaces_without_leak() {
        let one = ContractionCache::entry_bytes(&tensor(10, 0.0));
        let mut c = ContractionCache::new(2 * one);
        c.insert(key(1), &tensor(10, 1.0));
        c.insert(key(1), &tensor(10, 9.0));
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), one);
        assert_eq!(c.get(&key(1)).unwrap().as_slice()[0], 9.0);
    }
}
