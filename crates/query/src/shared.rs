//! Thread-safe sharing of the query engine.
//!
//! [`QueryEngine`] is deliberately single-threaded: its LRU cache and
//! phase profile mutate on every query, so sharing one engine behind a
//! global lock would serialize a server's whole request path.
//! [`SharedQueryEngine`] instead keeps **one shard per worker thread** —
//! each shard is a full `QueryEngine` with its own cache slice — over a
//! single reference-counted copy of the decomposition. A worker pins
//! itself to its shard and never contends with the others; cross-shard
//! operations (counter aggregation for `/metrics`, merged profiles) take
//! each shard lock briefly in turn.
//!
//! Sharding cannot change answers: engine results are bit-identical
//! regardless of cache state (pinned by the engine's own tests), so which
//! shard serves a query — or how the byte budget is split — is invisible
//! in the response bytes. The tests below re-pin that property through
//! this type across shard counts.

use crate::cache::CacheStats;
use crate::engine::QueryEngine;
use crate::error::Result;
use crate::range::Range;
use dtucker_core::{PhaseProfile, TuckerDecomp};
use dtucker_tensor::DenseTensor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a shard, recovering from poisoning: a panic in another thread
/// mid-query can at worst leave stale cache entries behind, and cached
/// intermediates are always valid values (they are inserted whole), so
/// the poison flag carries no information for us.
fn lock(m: &Mutex<QueryEngine>) -> MutexGuard<'_, QueryEngine> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A sharded, `Send + Sync` front over [`QueryEngine`]: one engine (and
/// cache slice) per worker, one shared decomposition.
#[derive(Debug)]
pub struct SharedQueryEngine {
    decomp: Arc<TuckerDecomp>,
    shape: Vec<usize>,
    ranks: Vec<usize>,
    shards: Vec<Mutex<QueryEngine>>,
    next: AtomicUsize,
}

impl SharedQueryEngine {
    /// Builds `shards` engines (at least one) over one shared copy of
    /// `decomp`, splitting `total_cache_bytes` evenly across the shards'
    /// LRU budgets (0 disables caching everywhere).
    pub fn new(decomp: TuckerDecomp, shards: usize, total_cache_bytes: usize) -> Result<Self> {
        let shards = shards.max(1);
        let decomp = Arc::new(decomp);
        let per_shard = total_cache_bytes / shards;
        let mut engines = Vec::with_capacity(shards);
        for _ in 0..shards {
            engines.push(Mutex::new(QueryEngine::from_shared(
                Arc::clone(&decomp),
                per_shard,
            )?));
        }
        Ok(SharedQueryEngine {
            shape: decomp.full_shape(),
            ranks: decomp.ranks().to_vec(),
            decomp,
            shards: engines,
            next: AtomicUsize::new(0),
        })
    }

    /// Number of shards (worker slots).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shape of the tensor the decomposition approximates.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Multilinear ranks of the decomposition.
    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// The decomposition being served.
    pub fn decomp(&self) -> &TuckerDecomp {
        &self.decomp
    }

    fn shard(&self, hint: usize) -> &Mutex<QueryEngine> {
        &self.shards[hint % self.shards.len()]
    }

    /// Round-robin shard pick for callers with no stable worker identity.
    fn rotate(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Reconstructs `range` on the shard `hint % shard_count` (workers
    /// pass their own index so repeated queries stay cache-warm on one
    /// shard).
    pub fn query_on(&self, hint: usize, range: &Range) -> Result<DenseTensor> {
        lock(self.shard(hint)).query(range)
    }

    /// Reconstructs `range` on a round-robin shard.
    pub fn query(&self, range: &Range) -> Result<DenseTensor> {
        self.query_on(self.rotate(), range)
    }

    /// Reconstructs a single element on the shard `hint % shard_count`.
    pub fn element_on(&self, hint: usize, index: &[usize]) -> Result<f64> {
        lock(self.shard(hint)).element(index)
    }

    /// Sum over `range` on the shard `hint % shard_count`.
    pub fn sum_on(&self, hint: usize, range: &Range) -> Result<f64> {
        lock(self.shard(hint)).sum(range)
    }

    /// Mean over `range` on the shard `hint % shard_count`.
    pub fn mean_on(&self, hint: usize, range: &Range) -> Result<f64> {
        lock(self.shard(hint)).mean(range)
    }

    /// Frobenius norm over `range` on the shard `hint % shard_count`.
    pub fn fro_norm_on(&self, hint: usize, range: &Range) -> Result<f64> {
        lock(self.shard(hint)).fro_norm(range)
    }

    /// Runs a whole batch through one shard so its shared-prefix
    /// reordering and cache reuse happen exactly as in
    /// [`QueryEngine::query_batch`].
    pub fn query_batch_on(&self, hint: usize, ranges: &[Range]) -> Result<Vec<DenseTensor>> {
        lock(self.shard(hint)).query_batch(ranges)
    }

    /// Cache counters summed across every shard.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total += lock(s).cache_stats();
        }
        total
    }

    /// Cache payload bytes currently held, summed across shards.
    pub fn cache_used_bytes(&self) -> usize {
        self.shards.iter().map(|s| lock(s).cache_used_bytes()).sum()
    }

    /// Total configured cache budget (sum of the per-shard budgets).
    pub fn cache_budget_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(s).cache_budget_bytes())
            .sum()
    }

    /// Per-phase timings merged across every shard's engine.
    pub fn profile(&self) -> PhaseProfile {
        let mut merged = PhaseProfile::new();
        for s in &self.shards {
            merged.merge(lock(s).profile());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::random_tucker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decomp(seed: u64) -> TuckerDecomp {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_tucker(&[9, 7, 6], &[3, 2, 4], &mut rng).unwrap();
        TuckerDecomp {
            core: m.core,
            factors: m.factors,
        }
    }

    #[test]
    fn shard_counts_do_not_change_bits() {
        // The pinned contract the serve subsystem builds on: any shard,
        // any shard count, warm or cold — same bytes as a direct engine.
        let mut direct = QueryEngine::new(decomp(1)).unwrap();
        let ranges = [
            Range::new(vec![(0, 9), (0, 7), (0, 6)]),
            Range::new(vec![(2, 5), (1, 2), (0, 6)]),
            Range::new(vec![(8, 9), (6, 7), (5, 6)]),
        ];
        for shards in [1, 2, 8] {
            let shared = SharedQueryEngine::new(decomp(1), shards, 1 << 20).unwrap();
            assert_eq!(shared.shard_count(), shards);
            for r in &ranges {
                let want = direct.query(r).unwrap();
                for hint in 0..shards {
                    let got = shared.query_on(hint, r).unwrap();
                    assert_eq!(got.shape(), want.shape());
                    for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                // Round-robin path and aggregates agree too.
                let rr = shared.query(r).unwrap();
                assert_eq!(rr.as_slice()[0].to_bits(), want.as_slice()[0].to_bits());
                assert_eq!(
                    shared.sum_on(0, r).unwrap().to_bits(),
                    direct.sum(r).unwrap().to_bits()
                );
            }
        }
    }

    #[test]
    fn batch_and_scalar_helpers_match_direct() {
        let mut direct = QueryEngine::new(decomp(2)).unwrap();
        let shared = SharedQueryEngine::new(decomp(2), 3, 1 << 20).unwrap();
        let ranges = vec![
            Range::new(vec![(0, 2), (0, 7), (0, 6)]),
            Range::new(vec![(4, 5), (2, 3), (1, 2)]),
            Range::new(vec![(0, 2), (0, 7), (2, 4)]),
        ];
        let want = direct.query_batch(&ranges).unwrap();
        let got = shared.query_batch_on(1, &ranges).unwrap();
        for (w, g) in want.iter().zip(&got) {
            for (a, b) in w.as_slice().iter().zip(g.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let r = &ranges[0];
        assert_eq!(
            shared.element_on(2, &[3, 4, 5]).unwrap().to_bits(),
            direct.element(&[3, 4, 5]).unwrap().to_bits()
        );
        assert_eq!(
            shared.mean_on(0, r).unwrap().to_bits(),
            direct.mean(r).unwrap().to_bits()
        );
        assert_eq!(
            shared.fro_norm_on(0, r).unwrap().to_bits(),
            direct.fro_norm(r).unwrap().to_bits()
        );
    }

    #[test]
    fn counters_aggregate_across_shards() {
        let shared = SharedQueryEngine::new(decomp(3), 2, 1 << 20).unwrap();
        let r = Range::new(vec![(2, 3), (1, 3), (0, 2)]);
        // Warm shard 0 twice, shard 1 once.
        shared.query_on(0, &r).unwrap();
        shared.query_on(0, &r).unwrap();
        shared.query_on(1, &r).unwrap();
        let stats = shared.cache_stats();
        assert!(stats.hits >= 1, "{stats:?}");
        assert!(stats.insertions >= 2, "{stats:?}");
        assert!(shared.cache_used_bytes() > 0);
        assert_eq!(shared.cache_budget_bytes(), (1 << 20) / 2 * 2);
        let p = shared.profile();
        assert_eq!(p.count("plan"), 3);
        assert!(shared.shape() == [9, 7, 6] && shared.ranks() == [3, 2, 4]);
        assert_eq!(shared.decomp().ranks(), &[3, 2, 4]);
    }

    #[test]
    fn shards_are_usable_from_many_threads() {
        let mut direct = QueryEngine::new(decomp(4)).unwrap();
        let r = Range::new(vec![(1, 4), (0, 6), (2, 5)]);
        let want: Vec<u64> = direct
            .query(&r)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let shared = Arc::new(SharedQueryEngine::new(decomp(4), 4, 1 << 20).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = Arc::clone(&shared);
            let r = r.clone();
            let want = want.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..8 {
                    let got = s.query_on(t, &r).unwrap();
                    let bits: Vec<u64> = got.as_slice().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(bits, want);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Zero-budget sharing still answers correctly.
        let uncached = SharedQueryEngine::new(decomp(4), 2, 0).unwrap();
        let got = uncached.query_on(0, &r).unwrap();
        assert_eq!(
            got.as_slice()[0].to_bits(),
            direct.query(&r).unwrap().as_slice()[0].to_bits()
        );
        assert_eq!(uncached.cache_stats().insertions, 0);
    }
}
