//! Contraction-order planning.
//!
//! Answering a range query means contracting the core `G` with the row
//! block `A⁽ⁿ⁾[loₙ..hiₙ, :]` of every factor. The contractions commute
//! mathematically, but their cost does not: contracting mode `n` changes
//! that mode's size from `Jₙ` to `rₙ = hiₙ − loₙ`, and every later step
//! pays for whatever sizes are current. Shrinking modes (`rₙ < Jₙ`)
//! should therefore go first and expanding modes last — the distributed
//! dense-Tucker literature's mode-ordering insight applied to serving.
//!
//! The planner *simulates* the exact FLOP count of every mode order
//! (exhaustive for ≤ 6 modes — at most 720 permutations of a length-6
//! cost loop) and returns the cheapest, breaking ties by lexicographic
//! order so plans — and hence cache keys and result bits — are
//! deterministic. Beyond 6 modes it falls back to the greedy
//! `(1/rₙ − 1/Jₙ)` descending sort, which the exchange argument proves
//! optimal whenever step costs factor (they do: each step's cost is
//! `2·rₙ·Jₙ·∏_{m≠n} current_m`).

use crate::range::Range;

/// Mode count up to which the planner searches all permutations.
const EXHAUSTIVE_LIMIT: usize = 6;

/// One contraction step: multiply the current intermediate by rows
/// `rows.0..rows.1` of factor `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanStep {
    /// Mode being contracted.
    pub mode: usize,
    /// Half-open row range of the factor.
    pub rows: (usize, usize),
}

/// An ordered contraction plan with its simulated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Contraction steps, cheapest-first per the cost model.
    pub steps: Vec<PlanStep>,
    /// Simulated floating-point operations for the whole chain.
    pub flops: f64,
}

impl QueryPlan {
    /// The cache-key chain for the first `k` steps: the ordered
    /// `(mode, lo, hi)` prefix. Ordering is part of the key because TTM
    /// chains over distinct modes commute mathematically but not bitwise —
    /// caching under an order-insensitive key would make results depend on
    /// cache history.
    pub fn prefix_key(&self, k: usize) -> Vec<(usize, usize, usize)> {
        self.steps[..k]
            .iter()
            .map(|s| (s.mode, s.rows.0, s.rows.1))
            .collect()
    }
}

/// Exact FLOPs of contracting in the order `perm` (indices into
/// `extents`/`ranks`), simulating the evolving intermediate sizes.
fn simulate(perm: &[usize], ranks: &[usize], extents: &[usize]) -> f64 {
    let mut sizes: Vec<f64> = ranks.iter().map(|&j| j as f64).collect();
    let mut flops = 0.0;
    for &n in perm {
        let others: f64 = sizes
            .iter()
            .enumerate()
            .filter(|&(m, _)| m != n)
            .map(|(_, &s)| s)
            .product();
        flops += 2.0 * extents[n] as f64 * ranks[n] as f64 * others;
        sizes[n] = extents[n] as f64;
    }
    flops
}

/// Enumerates permutations of `items` in lexicographic order, calling
/// `visit` on each.
fn for_each_permutation(
    items: &mut Vec<usize>,
    prefix: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
) {
    if items.is_empty() {
        visit(prefix);
        return;
    }
    for i in 0..items.len() {
        let x = items.remove(i);
        prefix.push(x);
        for_each_permutation(items, prefix, visit);
        prefix.pop();
        items.insert(i, x);
    }
}

/// Plans the contraction order for `range` against a core of shape
/// `ranks`. `range` must already be validated against the full shape;
/// the planner only needs the extents.
pub fn plan(ranks: &[usize], range: &Range) -> QueryPlan {
    let extents = range.extents();
    let n = ranks.len();
    let order: Vec<usize> = if n <= EXHAUSTIVE_LIMIT {
        let mut modes: Vec<usize> = (0..n).collect();
        // Seed with the identity order so `best` is always defined; the
        // scan visits it anyway, and only strict improvements replace it,
        // keeping the lexicographically-first optimum.
        let mut best = (simulate(&modes, ranks, &extents), modes.clone());
        for_each_permutation(&mut modes, &mut Vec::with_capacity(n), &mut |perm| {
            let cost = simulate(perm, ranks, &extents);
            if cost < best.0 {
                best = (cost, perm.to_vec());
            }
        });
        best.1
    } else {
        // Greedy: sort by (1/r − 1/J) descending — the per-step cost is
        // r·J·∏others, and swapping adjacent steps shows the order that
        // shrinks the running product fastest is optimal.
        let mut modes: Vec<usize> = (0..n).collect();
        modes.sort_by(|&a, &b| {
            let ka = 1.0 / extents[a] as f64 - 1.0 / ranks[a] as f64;
            let kb = 1.0 / extents[b] as f64 - 1.0 / ranks[b] as f64;
            kb.total_cmp(&ka).then(a.cmp(&b))
        });
        modes
    };
    let flops = simulate(&order, ranks, &extents);
    let steps = order
        .into_iter()
        .map(|mode| PlanStep {
            mode,
            rows: range.bounds()[mode],
        })
        .collect();
    QueryPlan { steps, flops }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_of(p: &QueryPlan) -> Vec<usize> {
        p.steps.iter().map(|s| s.mode).collect()
    }

    #[test]
    fn small_extents_contract_first() {
        // Mode 1 selects a single row (max shrink), mode 0 expands
        // 3 → 100: the plan must pin mode 1 first and mode 0 last.
        let ranks = [3, 4, 5];
        let r = Range::new(vec![(0, 100), (7, 8), (0, 5)]);
        let p = plan(&ranks, &r);
        assert_eq!(order_of(&p).first(), Some(&1));
        assert_eq!(order_of(&p).last(), Some(&0));
        assert!(p.flops > 0.0);
    }

    #[test]
    fn exhaustive_matches_brute_force_cost() {
        let ranks = [2, 6, 3, 4];
        let r = Range::new(vec![(0, 9), (1, 2), (0, 3), (2, 8)]);
        let p = plan(&ranks, &r);
        // No permutation beats the planner's cost.
        let mut modes: Vec<usize> = (0..4).collect();
        let extents = r.extents();
        let mut min = f64::INFINITY;
        for_each_permutation(&mut modes, &mut Vec::new(), &mut |perm| {
            min = min.min(simulate(perm, &ranks, &extents));
        });
        assert_eq!(p.flops, min);
    }

    #[test]
    fn plan_is_deterministic_and_keys_ordered() {
        let ranks = [3, 3, 3];
        let r = Range::new(vec![(0, 3), (0, 3), (0, 3)]);
        let a = plan(&ranks, &r);
        let b = plan(&ranks, &r);
        assert_eq!(a, b);
        // Symmetric cost → lexicographically-first order wins.
        assert_eq!(order_of(&a), vec![0, 1, 2]);
        assert_eq!(a.prefix_key(2), vec![(0, 0, 3), (1, 0, 3)]);
        assert_eq!(a.prefix_key(0), Vec::<(usize, usize, usize)>::new());
    }

    #[test]
    fn greedy_fallback_used_beyond_limit() {
        // 7 modes: falls back to the greedy sort, still cheapest-first.
        let ranks = [2; 7];
        let mut bounds = vec![(0, 2); 7];
        bounds[3] = (1, 2); // only shrinking mode
        bounds[5] = (0, 50); // strongly expanding mode
        let p = plan(&ranks, &Range::new(bounds));
        assert_eq!(order_of(&p).first(), Some(&3));
        assert_eq!(order_of(&p).last(), Some(&5));
    }
}
