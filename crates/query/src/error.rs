//! Error types for the query engine.

use dtucker_core::CoreError;
use dtucker_linalg::LinalgError;
use dtucker_store::StoreError;
use dtucker_tensor::TensorError;
use std::fmt;

/// Errors produced while planning or answering queries.
#[derive(Debug)]
pub enum QueryError {
    /// The requested range does not fit the tensor (wrong order, empty or
    /// reversed bounds, bounds past the end of a mode).
    InvalidRange {
        /// Human-readable description of the violation.
        details: String,
    },
    /// A textual query specification could not be parsed.
    Parse(String),
    /// Loading the artifact failed.
    Store(StoreError),
    /// The decomposition itself is inconsistent.
    Core(CoreError),
    /// A tensor-level operation failed.
    Tensor(TensorError),
    /// A matrix-level operation failed.
    Linalg(LinalgError),
    /// An internal invariant was violated; this indicates a bug in the
    /// query engine, not bad input.
    Internal(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidRange { details } => write!(f, "invalid range: {details}"),
            QueryError::Parse(d) => write!(f, "cannot parse query: {d}"),
            QueryError::Store(e) => write!(f, "store error: {e}"),
            QueryError::Core(e) => write!(f, "core error: {e}"),
            QueryError::Tensor(e) => write!(f, "tensor error: {e}"),
            QueryError::Linalg(e) => write!(f, "linalg error: {e}"),
            QueryError::Internal(d) => {
                write!(f, "internal invariant violated (please report): {d}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Store(e) => Some(e),
            QueryError::Core(e) => Some(e),
            QueryError::Tensor(e) => Some(e),
            QueryError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

impl From<CoreError> for QueryError {
    fn from(e: CoreError) -> Self {
        QueryError::Core(e)
    }
}

impl From<TensorError> for QueryError {
    fn from(e: TensorError) -> Self {
        QueryError::Tensor(e)
    }
}

impl From<LinalgError> for QueryError {
    fn from(e: LinalgError) -> Self {
        QueryError::Linalg(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = QueryError::InvalidRange {
            details: "mode 2".into(),
        };
        assert!(e.to_string().contains("mode 2"));
        assert!(e.source().is_none());
        let e = QueryError::Parse("bad spec".into());
        assert!(e.to_string().contains("bad spec"));
        let e: QueryError = StoreError::Format("short".into()).into();
        assert!(e.source().is_some());
        let e: QueryError = CoreError::InvalidConfig {
            details: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("core"));
        let e: QueryError = TensorError::Format("y".into()).into();
        assert!(e.to_string().contains("tensor"));
        let e: QueryError = LinalgError::DimensionMismatch {
            op: "matmul",
            details: "z".into(),
        }
        .into();
        assert!(e.to_string().contains("linalg"));
    }
}
