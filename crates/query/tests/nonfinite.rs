//! NaN/±∞ propagation through the factored aggregates: one non-finite
//! value anywhere in the model (core or any factor) must surface as a
//! non-finite `sum`/`mean`/`fro_norm` over the full range — the factored
//! contraction paths must never launder it into a finite number.

use dtucker_core::TuckerDecomp;
use dtucker_linalg::Matrix;
use dtucker_query::{QueryEngine, Range};
use dtucker_tensor::DenseTensor;
use proptest::prelude::*;

/// Strategy: an order-3 rank-(2,2,2) decomposition with dims in [2, 4]
/// and exactly one entry (in the core or a factor) replaced by NaN or ±∞.
fn poisoned_model() -> impl Strategy<Value = TuckerDecomp> {
    (2usize..=4, 2usize..=4, 2usize..=4).prop_flat_map(|(d0, d1, d2)| {
        let total = 8 + (d0 + d1 + d2) * 2;
        (
            proptest::collection::vec(-5.0f64..5.0, total),
            0..total,
            prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
        )
            .prop_map(move |(mut data, pos, bad)| {
                data[pos] = bad;
                let core = DenseTensor::from_vec(&[2, 2, 2], data[..8].to_vec()).unwrap();
                let mut off = 8;
                let factors: Vec<Matrix> = [d0, d1, d2]
                    .iter()
                    .map(|&d| {
                        let m = Matrix::from_vec(d, 2, data[off..off + d * 2].to_vec()).unwrap();
                        off += d * 2;
                        m
                    })
                    .collect();
                TuckerDecomp { core, factors }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn aggregates_propagate_nonfinite(d in poisoned_model()) {
        let shape = d.full_shape();
        let full = Range::new(shape.iter().map(|&s| (0, s)).collect());
        let mut eng = QueryEngine::new(d).unwrap();
        let sum = eng.sum(&full).unwrap();
        prop_assert!(!sum.is_finite(), "sum {sum}");
        let mean = eng.mean(&full).unwrap();
        prop_assert!(!mean.is_finite(), "mean {mean}");
        let norm = eng.fro_norm(&full).unwrap();
        prop_assert!(!norm.is_finite(), "fro_norm {norm}");
    }
}
