//! Property-based equivalence: for random decompositions and random
//! hyper-rectangles — including degenerate ones (single element, full
//! mode) — the factored query engine must return exactly what slicing
//! the naively-materialized reconstruction returns, for values and for
//! aggregates, with and without the cache, one-shot and batched.

use dtucker_core::TuckerDecomp;
use dtucker_linalg::Matrix;
use dtucker_query::{QueryEngine, Range};
use dtucker_tensor::DenseTensor;
use proptest::prelude::*;

/// Summation order differs between the planner's contraction order and
/// the naive TTM chain, so equality is up to rounding on O(10) entries
/// of magnitude ≤ 10.
const TOL: f64 = 1e-8;

/// Strategy: a structurally valid order-2..4 Tucker decomposition with
/// ranks in [1, 3] and dims up to 6 (degenerate dim-1 modes included).
fn tucker_strategy() -> impl Strategy<Value = TuckerDecomp> {
    proptest::collection::vec((1usize..=3, 0usize..=3), 2..=4).prop_flat_map(|modes| {
        let ranks: Vec<usize> = modes.iter().map(|&(r, _)| r).collect();
        let dims: Vec<usize> = modes.iter().map(|&(r, extra)| r + extra).collect();
        let core_n: usize = ranks.iter().product();
        let fact_n: usize = dims.iter().zip(&ranks).map(|(d, r)| d * r).sum();
        proptest::collection::vec(-10.0f64..10.0, core_n + fact_n).prop_map(move |data| {
            let core = DenseTensor::from_vec(&ranks, data[..core_n].to_vec()).unwrap();
            let mut off = core_n;
            let factors: Vec<Matrix> = dims
                .iter()
                .zip(&ranks)
                .map(|(&d, &r)| {
                    let m = Matrix::from_vec(d, r, data[off..off + d * r].to_vec()).unwrap();
                    off += d * r;
                    m
                })
                .collect();
            TuckerDecomp { core, factors }
        })
    })
}

/// Strategy: a valid range for `shape`, biased so full modes and
/// single-index modes appear often.
fn range_strategy(shape: Vec<usize>) -> impl Strategy<Value = Range> {
    let per_mode: Vec<_> = shape
        .into_iter()
        .map(|d| {
            prop_oneof![
                Just((0usize, d)),               // full mode
                (0..d).prop_map(|i| (i, i + 1)), // single index
                (0..d).prop_flat_map(move |lo| (lo + 1..=d).prop_map(move |hi| (lo, hi))),
            ]
        })
        .collect();
    per_mode.prop_map(Range::new)
}

/// Strategy: a decomposition together with a batch of ranges for it.
fn decomp_and_ranges(max_ranges: usize) -> impl Strategy<Value = (TuckerDecomp, Vec<Range>)> {
    tucker_strategy().prop_flat_map(move |d| {
        let shape = d.full_shape();
        let ranges = proptest::collection::vec(range_strategy(shape), 1..=max_ranges);
        (Just(d), ranges)
    })
}

fn assert_matches_naive(got: &DenseTensor, full: &DenseTensor, r: &Range) {
    let want = full.subtensor(r.bounds()).unwrap();
    assert_eq!(got.shape(), want.shape());
    for (a, b) in got.as_slice().iter().zip(want.as_slice()) {
        assert!((a - b).abs() < TOL, "range {r}: {a} vs {b}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factored_query_equals_naive_reconstruction((d, ranges) in decomp_and_ranges(4)) {
        let full = d.reconstruct().unwrap();
        let mut engine = QueryEngine::new(d).unwrap();
        for r in &ranges {
            let got = engine.query(r).unwrap();
            assert_matches_naive(&got, &full, r);
        }
    }

    #[test]
    fn cache_state_never_changes_results((d, ranges) in decomp_and_ranges(3)) {
        // Serve the same queries twice through one cached engine and once
        // through a cache-less engine: all three must agree bit-for-bit,
        // since plans are deterministic and cached intermediates are the
        // exact tensors the engine would recompute.
        let mut cached = QueryEngine::new(d.clone()).unwrap();
        let mut bare = QueryEngine::with_cache_bytes(d, 0).unwrap();
        for r in &ranges {
            let cold = cached.query(r).unwrap();
            let warm = cached.query(r).unwrap();
            let none = bare.query(r).unwrap();
            for ((a, b), c) in cold
                .as_slice()
                .iter()
                .zip(warm.as_slice())
                .zip(none.as_slice())
            {
                prop_assert_eq!(a.to_bits(), b.to_bits());
                prop_assert_eq!(a.to_bits(), c.to_bits());
            }
        }
    }

    #[test]
    fn batch_equals_one_shot((d, ranges) in decomp_and_ranges(5)) {
        let full = d.reconstruct().unwrap();
        let mut engine = QueryEngine::new(d).unwrap();
        let out = engine.query_batch(&ranges).unwrap();
        prop_assert_eq!(out.len(), ranges.len());
        for (r, got) in ranges.iter().zip(&out) {
            assert_matches_naive(got, &full, r);
        }
    }

    #[test]
    fn aggregates_equal_naive((d, ranges) in decomp_and_ranges(3)) {
        let full = d.reconstruct().unwrap();
        let mut engine = QueryEngine::new(d).unwrap();
        for r in &ranges {
            let sub = full.subtensor(r.bounds()).unwrap();
            let naive_sum: f64 = sub.as_slice().iter().sum();
            // The ones-contraction sum never sees the range's elements, so
            // its rounding profile differs; scale tolerance with the mass.
            let scale = 1.0 + sub.as_slice().iter().map(|v| v.abs()).sum::<f64>();
            prop_assert!((engine.sum(r).unwrap() - naive_sum).abs() < TOL * scale);
            prop_assert!(
                (engine.mean(r).unwrap() - naive_sum / sub.numel() as f64).abs() < TOL * scale
            );
            prop_assert!((engine.fro_norm(r).unwrap() - sub.fro_norm()).abs() < TOL * scale);
        }
    }

    #[test]
    fn out_of_bounds_ranges_rejected(d in tucker_strategy(), bump in 1usize..4) {
        let shape = d.full_shape();
        let mut engine = QueryEngine::new(d).unwrap();
        // Push one mode past the end: typed error, never a panic.
        let mut bounds: Vec<(usize, usize)> = shape.iter().map(|&s| (0, s)).collect();
        bounds[0].1 += bump;
        let r = Range::new(bounds);
        prop_assert!(engine.query(&r).is_err());
        prop_assert!(engine.sum(&r).is_err());
        // Wrong order is rejected too.
        let r = Range::new(vec![(0, 1)]);
        prop_assert!(engine.query(&r).is_err() || shape.len() == 1);
    }
}
