//! Property-based tests for the linear-algebra substrate.

use dtucker_linalg::gemm::{gram, matmul, matmul_t, t_matmul};
use dtucker_linalg::kron::kron;
use dtucker_linalg::qr::qr_thin;
use dtucker_linalg::svd::svd;
use dtucker_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix with dims in [1, 12] and entries in [-10, 10].
fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (1usize..=12, 1usize..=12).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: a pair (A, B) with compatible inner dimensions.
fn matmul_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=10, 1usize..=10, 1usize..=10).prop_flat_map(|(m, n, p)| {
        let a = proptest::collection::vec(-5.0f64..5.0, m * n)
            .prop_map(move |d| Matrix::from_vec(m, n, d).unwrap());
        let b = proptest::collection::vec(-5.0f64..5.0, n * p)
            .prop_map(move |d| Matrix::from_vec(n, p, d).unwrap());
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in matrix_strategy()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associates_with_transpose((a, b) in matmul_pair()) {
        // (AB)ᵀ = Bᵀ Aᵀ
        let ab_t = matmul(&a, &b).transpose();
        let bt_at = matmul(&b.transpose(), &a.transpose());
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
    }

    #[test]
    fn gemm_variants_agree((a, b) in matmul_pair()) {
        let reference = matmul(&a, &b);
        prop_assert!(t_matmul(&a.transpose(), &b).approx_eq(&reference, 1e-9));
        prop_assert!(matmul_t(&a, &b.transpose()).approx_eq(&reference, 1e-9));
    }

    #[test]
    fn gram_is_symmetric_psd_diag(a in matrix_strategy()) {
        let g = gram(&a);
        for i in 0..g.rows() {
            prop_assert!(g.get(i, i) >= -1e-12);
            for j in 0..g.cols() {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal(a in matrix_strategy()) {
        let f = qr_thin(&a);
        let rec = matmul(&f.q, &f.r);
        prop_assert!(rec.approx_eq(&a, 1e-8 * (1.0 + a.max_abs())));
        prop_assert!(f.q.has_orthonormal_cols(1e-8));
    }

    #[test]
    fn svd_reconstructs(a in matrix_strategy()) {
        let d = svd(&a).unwrap();
        let rec = d.reconstruct();
        prop_assert!(rec.approx_eq(&a, 1e-7 * (1.0 + a.max_abs())));
        // Descending non-negative spectrum.
        for w in d.s.windows(2) {
            prop_assert!(w[0] + 1e-12 >= w[1]);
        }
        prop_assert!(d.s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn svd_largest_value_bounds_spectral_action(a in matrix_strategy()) {
        // ‖A x‖ ≤ σ₁ ‖x‖ for the all-ones vector.
        let d = svd(&a).unwrap();
        let x = vec![1.0; a.cols()];
        let ax = a.matvec(&x).unwrap();
        let lhs = dtucker_linalg::norms::fro_norm(&ax);
        let rhs = d.s.first().copied().unwrap_or(0.0)
            * dtucker_linalg::norms::fro_norm(&x);
        prop_assert!(lhs <= rhs + 1e-7 * (1.0 + rhs));
    }

    #[test]
    fn kron_norm_is_product_of_norms(a in matrix_strategy(), b in matrix_strategy()) {
        let k = kron(&a, &b);
        let expected = a.fro_norm() * b.fro_norm();
        prop_assert!((k.fro_norm() - expected).abs() <= 1e-8 * (1.0 + expected));
    }

    #[test]
    fn packed_gemm_matches_naive_at_awkward_shapes(
        mi in 0usize..8, ni in 0usize..8, pi in 0usize..8, seed in any::<u64>()
    ) {
        use rand::{Rng, SeedableRng};
        // Dimensions chosen to stress the packed kernel's edges: unit dims
        // (1×n / n×1 products), sizes just off the 4×8 register tile and
        // the 256-wide packing block, and tall/wide aspect ratios.
        const DIMS: [usize; 8] = [1, 2, 3, 4, 5, 9, 31, 257];
        let (m, n, p) = (DIMS[mi], DIMS[ni], DIMS[pi]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-2.0..2.0));
        let b = Matrix::from_fn(n, p, |_, _| rng.gen_range(-2.0..2.0));

        // Naive triple loop in the same (k-inner) accumulation order.
        let mut want = Matrix::zeros(m, p);
        for i in 0..m {
            for j in 0..p {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a.get(i, k) * b.get(k, j);
                }
                want.set(i, j, acc);
            }
        }
        let got = matmul(&a, &b);
        prop_assert!(got.approx_eq(&want, 1e-12 * (n as f64 + 1.0)));
        prop_assert!(t_matmul(&a.transpose(), &b).approx_eq(&want, 1e-12 * (n as f64 + 1.0)));
        prop_assert!(matmul_t(&a, &b.transpose()).approx_eq(&want, 1e-12 * (n as f64 + 1.0)));
    }

    #[test]
    fn threaded_gemm_is_bitwise_serial_at_awkward_shapes(
        mi in 0usize..6, pi in 0usize..6, nthreads in 2usize..=6, seed in any::<u64>()
    ) {
        use dtucker_linalg::gemm::matmul_into_threaded;
        use rand::{Rng, SeedableRng};
        const DIMS: [usize; 6] = [1, 3, 4, 5, 9, 130];
        let (m, p) = (DIMS[mi], DIMS[pi]);
        let n = 33;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f64> = (0..n * p).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut serial = vec![0.0; m * p];
        let mut threaded = vec![0.0; m * p];
        matmul_into_threaded(&a, &b, &mut serial, m, n, p, 1);
        matmul_into_threaded(&a, &b, &mut threaded, m, n, p, nthreads);
        for (x, y) in serial.iter().zip(threaded.iter()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn lu_solve_round_trip(n in 1usize..=8, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Diagonally dominant ⇒ nonsingular.
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        for i in 0..n {
            let v = a.get(i, i);
            a.set(i, i, v + n as f64);
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = dtucker_linalg::lu::solve(&a, &b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }
}

/// Strategy: finite data with 1–3 non-finite values (NaN, ±∞) spliced in
/// at pseudo-random positions.
fn vec_with_nonfinite() -> impl Strategy<Value = Vec<f64>> {
    (
        proptest::collection::vec(-10.0f64..10.0, 1..48),
        proptest::collection::vec(
            prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)],
            1..=3,
        ),
        any::<u64>(),
    )
        .prop_map(|(mut v, bad, seed)| {
            for (k, b) in bad.into_iter().enumerate() {
                let pos = (seed as usize).wrapping_add(k.wrapping_mul(7919)) % (v.len() + 1);
                v.insert(pos, b);
            }
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A single NaN or ±∞ anywhere in the stream must surface as a
    /// non-finite norm — the scaled accumulator must never launder it
    /// into a finite number.
    #[test]
    fn fro_accumulator_propagates_nonfinite(v in vec_with_nonfinite(), chunk in 1usize..8) {
        use dtucker_linalg::norms::FroNormAccumulator;
        let mut acc = FroNormAccumulator::new();
        for c in v.chunks(chunk) {
            acc.push_slice(c);
        }
        prop_assert!(!acc.norm().is_finite(), "norm {} from {v:?}", acc.norm());
        prop_assert!(!acc.norm_sq().is_finite());
    }

    /// Conversely, finite input keeps the accumulator finite even when
    /// naive squaring would overflow.
    #[test]
    fn fro_accumulator_finite_on_finite(v in proptest::collection::vec(-1e200f64..1e200, 0..48)) {
        use dtucker_linalg::norms::FroNormAccumulator;
        let mut acc = FroNormAccumulator::new();
        acc.push_slice(&v);
        prop_assert!(acc.norm().is_finite(), "norm {} from {v:?}", acc.norm());
    }
}
