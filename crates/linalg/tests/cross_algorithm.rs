//! Cross-algorithm consistency: independent routines must agree on shared
//! mathematical facts (the strongest correctness check a from-scratch
//! linear-algebra stack can run on itself).

use dtucker_linalg::cholesky::Cholesky;
use dtucker_linalg::eig::sym_eig;
use dtucker_linalg::gemm::{gram, matmul};
use dtucker_linalg::lu::Lu;
use dtucker_linalg::qr::lstsq;
use dtucker_linalg::qrcp::numerical_rank;
use dtucker_linalg::random::gaussian_matrix;
use dtucker_linalg::svd::{pinv, svd_with, SvdAlgorithm};
use dtucker_linalg::svd_gr::svd_golub_reinsch;
use dtucker_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// σᵢ(A)² = λᵢ(AᵀA): the SVD and the symmetric eigensolver must agree.
#[test]
fn singular_values_match_gram_eigenvalues() {
    for &(m, n, seed) in &[(10usize, 7usize, 1u64), (25, 25, 2), (8, 20, 3)] {
        let a = random(m, n, seed);
        let s = svd_with(&a, SvdAlgorithm::Jacobi).unwrap().s;
        let lam = sym_eig(&gram(&a)).unwrap().values; // ascending
        let t = m.min(n);
        for i in 0..t {
            let sig_sq = s[i] * s[i];
            let lam_i = lam[n - 1 - i].max(0.0);
            assert!(
                (sig_sq - lam_i).abs() < 1e-8 * (1.0 + sig_sq),
                "{m}x{n} i={i}: σ²={sig_sq} λ={lam_i}"
            );
        }
    }
}

/// Jacobi and Golub–Reinsch must produce the same spectrum and equivalent
/// subspaces.
#[test]
fn jacobi_and_golub_reinsch_agree() {
    for &(m, n, seed) in &[
        (12usize, 12usize, 4u64),
        (40, 15, 5),
        (15, 40, 6),
        (60, 60, 7),
    ] {
        let a = random(m, n, seed);
        let ja = svd_with(&a, SvdAlgorithm::Jacobi).unwrap();
        let gr = svd_golub_reinsch(&a).unwrap();
        for (x, y) in ja.s.iter().zip(gr.s.iter()) {
            assert!((x - y).abs() < 1e-8 * (1.0 + x), "{x} vs {y}");
        }
        // Same reconstruction.
        assert!(ja.reconstruct().approx_eq(&gr.reconstruct(), 1e-7));
    }
}

/// det(A) from LU must equal the product of eigenvalues for symmetric A,
/// and exp(log_det) from Cholesky for SPD A.
#[test]
fn determinants_agree_across_factorizations() {
    let mut rng = StdRng::seed_from_u64(8);
    let b = gaussian_matrix(9, 6, &mut rng);
    let mut spd = gram(&b);
    for i in 0..6 {
        let v = spd.get(i, i);
        spd.set(i, i, v + 0.5);
    }
    let det_lu = Lu::new(&spd).unwrap().det();
    let eig_det: f64 = sym_eig(&spd).unwrap().values.iter().product();
    let chol_det = Cholesky::new(&spd).unwrap().log_det().exp();
    assert!(
        (det_lu - eig_det).abs() < 1e-8 * det_lu.abs().max(1.0),
        "{det_lu} vs {eig_det}"
    );
    assert!(
        (det_lu - chol_det).abs() < 1e-8 * det_lu.abs().max(1.0),
        "{det_lu} vs {chol_det}"
    );
}

/// For full-rank overdetermined systems, the pseudo-inverse and QR least
/// squares give the same solution; for SPD systems, Cholesky and LU agree.
#[test]
fn solvers_agree() {
    let a = random(20, 6, 9);
    let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.37).sin()).collect();
    let x_qr = lstsq(&a, &b).unwrap();
    let p = pinv(&a, 1e-12).unwrap();
    let x_pinv = p.matvec(&b).unwrap();
    for (u, v) in x_qr.iter().zip(x_pinv.iter()) {
        assert!((u - v).abs() < 1e-8, "{u} vs {v}");
    }

    let mut rng = StdRng::seed_from_u64(10);
    let c = gaussian_matrix(12, 8, &mut rng);
    let mut spd = gram(&c);
    for i in 0..8 {
        let v = spd.get(i, i);
        spd.set(i, i, v + 0.3);
    }
    let rhs: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
    let x_chol = Cholesky::new(&spd).unwrap().solve_vec(&rhs).unwrap();
    let x_lu = Lu::new(&spd).unwrap().solve_vec(&rhs).unwrap();
    for (u, v) in x_chol.iter().zip(x_lu.iter()) {
        assert!((u - v).abs() < 1e-8);
    }
}

/// Rank estimates agree across QRCP and SVD on matrices with controlled
/// spectra, including noisy near-low-rank cases.
#[test]
fn rank_estimates_consistent() {
    let mut rng = StdRng::seed_from_u64(11);
    for true_rank in [1usize, 3, 6] {
        let u = gaussian_matrix(18, true_rank, &mut rng);
        let v = gaussian_matrix(13, true_rank, &mut rng);
        let a = matmul(&u, &v.transpose());
        assert_eq!(numerical_rank(&a, 1e-8).unwrap(), true_rank);
        assert_eq!(
            svd_with(&a, SvdAlgorithm::Auto).unwrap().rank(1e-8),
            true_rank
        );
    }
}

/// Orthogonal invariance: multiplying by Q from a QR factorization must not
/// change singular values.
#[test]
fn svd_orthogonal_invariance() {
    let mut rng = StdRng::seed_from_u64(12);
    let a = random(14, 9, 13);
    let q = dtucker_linalg::qr::orthonormalize(&gaussian_matrix(14, 14, &mut rng));
    let qa = matmul(&q, &a);
    let s1 = svd_with(&a, SvdAlgorithm::Auto).unwrap().s;
    let s2 = svd_with(&qa, SvdAlgorithm::Auto).unwrap().s;
    for (x, y) in s1.iter().zip(s2.iter()) {
        assert!((x - y).abs() < 1e-9 * (1.0 + x));
    }
}
