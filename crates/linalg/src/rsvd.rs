//! Randomized SVD (Halko–Martinsson–Tropp).
//!
//! This is the compression kernel of D-Tucker's approximation phase: each
//! frontal slice is compressed with `rsvd(slice, J, oversample, power_iters)`.

use crate::error::{LinalgError, Result};
use crate::gemm::{matmul, matmul_t, t_matmul};
use crate::matrix::Matrix;
use crate::qr::orthonormalize;
use crate::random::gaussian_matrix;
use crate::svd::{svd, Svd};
use rand::Rng;

/// Configuration for the randomized range finder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsvdConfig {
    /// Target rank `k` of the truncated SVD.
    pub rank: usize,
    /// Extra columns sampled beyond `rank` (typically 5–10).
    pub oversample: usize,
    /// Power (subspace) iterations; 1–2 sharpen spectra with slow decay.
    pub power_iters: usize,
}

impl RsvdConfig {
    /// A sensible default: oversampling 5, one power iteration.
    pub fn new(rank: usize) -> Self {
        RsvdConfig {
            rank,
            oversample: 5,
            power_iters: 1,
        }
    }
}

/// Computes a rank-`cfg.rank` randomized SVD of `a`.
///
/// Returns `U ∈ R^{m×k}`, `s ∈ R^k`, `V ∈ R^{n×k}` with `k = min(rank,
/// min(m, n))`. With high probability the approximation error is within a
/// small factor of the optimal rank-`k` error (Halko et al. 2011, Thm 10.6).
pub fn rsvd<R: Rng + ?Sized>(a: &Matrix, cfg: RsvdConfig, rng: &mut R) -> Result<Svd> {
    let (m, n) = a.shape();
    if cfg.rank == 0 {
        return Err(LinalgError::InvalidArgument {
            op: "rsvd",
            details: "rank must be ≥ 1".into(),
        });
    }
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    let k = cfg.rank.min(m.min(n));
    let l = (cfg.rank + cfg.oversample).min(m.min(n));

    // Stage A: find an orthonormal basis Q for the approximate range of A.
    let omega = gaussian_matrix(n, l, rng);
    let mut q = orthonormalize(&matmul(a, &omega));
    for _ in 0..cfg.power_iters {
        // Subspace iteration with re-orthonormalization at each half-step
        // for numerical stability.
        let z = orthonormalize(&t_matmul(a, &q)); // Aᵀ Q
        q = orthonormalize(&matmul(a, &z));
    }

    // Stage B: B = Qᵀ A is small (l × n); take its exact SVD.
    let b = t_matmul(&q, a);
    let inner = svd(&b)?;
    let u = matmul(&q, &inner.u);
    Ok(Svd {
        u,
        s: inner.s,
        v: inner.v,
    }
    .truncate(k))
}

/// Randomized SVD of a **sparse** matrix: identical algorithm to [`rsvd`],
/// with the two big products evaluated through CSR in `O(nnz·l)` — the
/// kernel of the sparse-input D-Tucker extension.
pub fn rsvd_sparse<R: Rng + ?Sized>(
    a: &crate::sparse::CsrMatrix,
    cfg: RsvdConfig,
    rng: &mut R,
) -> Result<Svd> {
    let (m, n) = (a.rows(), a.cols());
    if cfg.rank == 0 {
        return Err(LinalgError::InvalidArgument {
            op: "rsvd_sparse",
            details: "rank must be ≥ 1".into(),
        });
    }
    let k = cfg.rank.min(m.min(n));
    let l = (cfg.rank + cfg.oversample).min(m.min(n));

    let omega = gaussian_matrix(n, l, rng);
    let mut q = orthonormalize(&a.matmul_dense(&omega)?);
    for _ in 0..cfg.power_iters {
        let z = orthonormalize(&a.t_matmul_dense(&q)?);
        q = orthonormalize(&a.matmul_dense(&z)?);
    }
    // B = Qᵀ A computed as (Aᵀ Q)ᵀ to stay in CSR-friendly products.
    let bt = a.t_matmul_dense(&q)?; // n × l
    let inner = svd(&bt)?; // Bᵀ = U_b S V_bᵀ ⇒ B = V_b S U_bᵀ
    let u = matmul(&q, &inner.v);
    Ok(Svd {
        u,
        s: inner.s,
        v: inner.u,
    }
    .truncate(k))
}

/// Randomized range finder only: an orthonormal `m × l` basis `Q` with
/// `‖A − QQᵀA‖` close to the optimal rank-`l` error.
pub fn randomized_range_finder<R: Rng + ?Sized>(
    a: &Matrix,
    l: usize,
    power_iters: usize,
    rng: &mut R,
) -> Matrix {
    let (_, n) = a.shape();
    let l = l.min(a.rows().min(n)).max(1);
    let omega = gaussian_matrix(n, l, rng);
    let mut q = orthonormalize(&matmul(a, &omega));
    for _ in 0..power_iters {
        let z = orthonormalize(&t_matmul(a, &q));
        q = orthonormalize(&matmul(a, &z));
    }
    q
}

/// Error of the rank-`k` approximation produced by an SVD against the
/// original matrix: `‖A − U diag(s) Vᵀ‖_F / ‖A‖_F`.
pub fn relative_error(a: &Matrix, d: &Svd) -> f64 {
    let us = crate::svd::scale_cols(&d.u, &d.s);
    let rec = matmul_t(&us, &d.v);
    // `rec` reconstructs `a`'s exact shape; a mismatch means the SVD does
    // not belong to `a`, and NaN is the honest answer for that.
    let Ok(diff) = rec.sub(a) else {
        return f64::NAN;
    };
    let denom = a.fro_norm();
    if denom == 0.0 {
        0.0
    } else {
        diff.fro_norm() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Matrix with exactly known singular spectrum.
    fn spectrum_matrix(m: usize, n: usize, spectrum: &[f64], seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = spectrum.len();
        let u = orthonormalize(&gaussian_matrix(m, k, &mut rng));
        let v = orthonormalize(&gaussian_matrix(n, k, &mut rng));
        let us = crate::svd::scale_cols(&u, spectrum);
        matmul_t(&us, &v)
    }

    #[test]
    fn rsvd_exact_on_low_rank() {
        let spectrum = [10.0, 5.0, 1.0];
        let a = spectrum_matrix(40, 30, &spectrum, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let d = rsvd(&a, RsvdConfig::new(3), &mut rng).unwrap();
        assert_eq!(d.s.len(), 3);
        for (got, want) in d.s.iter().zip(spectrum.iter()) {
            assert!((got - want).abs() < 1e-8, "σ {} vs {}", got, want);
        }
        assert!(relative_error(&a, &d) < 1e-8);
        assert!(d.u.has_orthonormal_cols(1e-8));
        assert!(d.v.has_orthonormal_cols(1e-8));
    }

    #[test]
    fn rsvd_near_optimal_on_decaying_spectrum() {
        // Geometric decay: rank-5 captures almost everything.
        let spectrum: Vec<f64> = (0..20).map(|i| 2.0f64.powi(-i)).collect();
        let a = spectrum_matrix(60, 50, &spectrum, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let d = rsvd(
            &a,
            RsvdConfig {
                rank: 5,
                oversample: 8,
                power_iters: 2,
            },
            &mut rng,
        )
        .unwrap();
        let opt: f64 = spectrum[5..].iter().map(|&x| x * x).sum::<f64>().sqrt();
        let total: f64 = spectrum.iter().map(|&x| x * x).sum::<f64>().sqrt();
        let rel = relative_error(&a, &d);
        // Within a factor 2 of the optimal rank-5 relative error.
        assert!(
            rel <= 2.0 * opt / total + 1e-12,
            "rel {} vs optimal {}",
            rel,
            opt / total
        );
    }

    #[test]
    fn rsvd_rank_larger_than_dims_is_clamped() {
        let a = spectrum_matrix(6, 4, &[3.0, 1.0], 5);
        let mut rng = StdRng::seed_from_u64(6);
        let d = rsvd(&a, RsvdConfig::new(10), &mut rng).unwrap();
        assert_eq!(d.s.len(), 4);
    }

    #[test]
    fn rsvd_rejects_zero_rank() {
        let a = Matrix::zeros(3, 3);
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rsvd(&a, RsvdConfig::new(0), &mut rng).is_err());
    }

    #[test]
    fn rsvd_deterministic_given_seed() {
        let a = spectrum_matrix(20, 20, &[4.0, 2.0, 1.0], 8);
        let d1 = rsvd(&a, RsvdConfig::new(3), &mut StdRng::seed_from_u64(9)).unwrap();
        let d2 = rsvd(&a, RsvdConfig::new(3), &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(d1.u, d2.u);
        assert_eq!(d1.s, d2.s);
    }

    #[test]
    fn rsvd_sparse_matches_dense_route() {
        // A sparse low-rank-ish matrix: outer product of sparse vectors.
        let mut rng = StdRng::seed_from_u64(20);
        let dense = {
            let mut m = spectrum_matrix(40, 30, &[8.0, 4.0, 2.0], 21);
            // Sparsify: zero out ~70% of entries.
            for v in m.as_mut_slice().iter_mut() {
                if rng.gen_range(0.0..1.0) < 0.7 {
                    *v = 0.0;
                }
            }
            m
        };
        let sparse = crate::sparse::CsrMatrix::from_dense(&dense, 0.0).unwrap();
        let cfg = RsvdConfig {
            rank: 5,
            oversample: 5,
            power_iters: 2,
        };
        let ds = rsvd(&dense, cfg, &mut StdRng::seed_from_u64(22)).unwrap();
        let ss = rsvd_sparse(&sparse, cfg, &mut StdRng::seed_from_u64(22)).unwrap();
        // Same spectrum (same algorithm, same randomness, different kernels).
        for (a, b) in ds.s.iter().zip(ss.s.iter()) {
            assert!((a - b).abs() < 1e-8 * (1.0 + a), "{a} vs {b}");
        }
        assert!(ss.u.has_orthonormal_cols(1e-8));
        assert!(relative_error(&dense, &ss) < relative_error(&dense, &ds) + 1e-8);
    }

    #[test]
    fn rsvd_sparse_rejects_zero_rank() {
        let m = crate::sparse::CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        assert!(rsvd_sparse(&m, RsvdConfig::new(0), &mut rng).is_err());
    }

    #[test]
    fn range_finder_captures_range() {
        let a = spectrum_matrix(50, 30, &[10.0, 9.0, 8.0], 10);
        let mut rng = StdRng::seed_from_u64(11);
        let q = randomized_range_finder(&a, 6, 1, &mut rng);
        assert!(q.has_orthonormal_cols(1e-8));
        // ‖A − QQᵀA‖ should be tiny for an (essentially) rank-3 matrix.
        let qta = t_matmul(&q, &a);
        let rec = matmul(&q, &qta);
        assert!(rec.sub(&a).unwrap().fro_norm() < 1e-7 * a.fro_norm());
    }

    #[test]
    fn rsvd_power_iterations_help_on_noisy_matrix() {
        let mut rng = StdRng::seed_from_u64(12);
        let low = spectrum_matrix(80, 60, &[20.0, 15.0, 10.0, 8.0, 6.0], 13);
        let noise = gaussian_matrix(80, 60, &mut rng);
        let mut a = low.clone();
        a.axpy(0.05, &noise).unwrap();
        let e0 = relative_error(
            &a,
            &rsvd(
                &a,
                RsvdConfig {
                    rank: 5,
                    oversample: 5,
                    power_iters: 0,
                },
                &mut StdRng::seed_from_u64(14),
            )
            .unwrap(),
        );
        let e2 = relative_error(
            &a,
            &rsvd(
                &a,
                RsvdConfig {
                    rank: 5,
                    oversample: 5,
                    power_iters: 3,
                },
                &mut StdRng::seed_from_u64(14),
            )
            .unwrap(),
        );
        assert!(
            e2 <= e0 + 1e-9,
            "power iterations should not hurt: {} vs {}",
            e2,
            e0
        );
    }

    #[test]
    fn relative_error_zero_matrix() {
        let a = Matrix::zeros(4, 4);
        let d = Svd {
            u: Matrix::zeros(4, 0),
            s: vec![],
            v: Matrix::zeros(4, 0),
        };
        assert_eq!(relative_error(&a, &d), 0.0);
    }
}
