//! Persistent worker pool and the workspace-wide thread-count policy.
//!
//! Every parallel region in the workspace — GEMM row blocks, per-slice
//! SVDs, batched n-mode products — runs on one lazily-initialized pool of
//! detached worker threads instead of spawning scoped threads per call.
//! Workers are created on first use, grow on demand up to the largest
//! thread count ever requested, and persist for the life of the process.
//!
//! # Thread-count policy
//!
//! There is exactly one resolution rule, [`resolve_threads`]:
//!
//! 1. an explicit per-call request (`cfg.threads > 0`) wins;
//! 2. otherwise a process-wide override set with [`set_default_threads`];
//! 3. otherwise the `DTUCKER_THREADS` environment variable (read once);
//! 4. otherwise [`std::thread::available_parallelism`].
//!
//! # Flop threshold
//!
//! Auto-parallel kernels (GEMM on [`crate::Matrix`] values) stay serial
//! below [`par_flop_threshold`] flops, because distributing a product that
//! runs in microseconds costs more in wake-ups than it saves. The default,
//! [`DEFAULT_PAR_FLOP_THRESHOLD`], is 2²³ flops ≈ a 160³ product; it is a
//! measured crossover, not a magic constant, and can be tuned per process
//! with [`set_par_flop_threshold`].
//!
//! # Determinism
//!
//! The pool only ever partitions *output* ranges: each job writes a
//! disjoint chunk and no reduction crosses a chunk boundary, so results
//! are bit-identical for every thread count, including 1.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Locks `m`, recovering from poisoning. The pool must stay usable after a
/// job panics (that is a documented feature, pinned by
/// `panic_propagates_and_pool_survives`), and every structure guarded here
/// (the task queue, the completion flag) is valid after any partial
/// update, so the poison flag carries no information for us.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Default for [`par_flop_threshold`]: products below ~8.4 Mflop run
/// serial.
pub const DEFAULT_PAR_FLOP_THRESHOLD: usize = 1 << 23;

/// Hard cap on pool workers, far above any sane thread request; guards
/// against a corrupt `DTUCKER_THREADS` value spawning unbounded threads.
pub const MAX_THREADS: usize = 256;

/// How many claimable chunks each thread gets (work-stealing slack so an
/// uneven chunk does not serialize the tail).
const CHUNKS_PER_THREAD: usize = 4;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static FLOP_THRESHOLD_SET: AtomicBool = AtomicBool::new(false);
static FLOP_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PAR_FLOP_THRESHOLD);

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("DTUCKER_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Sets the process-wide default thread count used when a caller passes
/// `0` ("auto"). Pass `0` to clear the override and fall back to
/// `DTUCKER_THREADS` / available parallelism.
pub fn set_default_threads(n: usize) {
    THREAD_OVERRIDE.store(n.min(MAX_THREADS), Ordering::Relaxed);
}

/// Resolves a requested thread count through the policy chain
/// (request → override → `DTUCKER_THREADS` → available parallelism).
/// Always returns at least 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested.min(MAX_THREADS);
    }
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n.min(MAX_THREADS);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_THREADS))
}

/// Flop count below which auto-parallel kernels run serial.
pub fn par_flop_threshold() -> usize {
    if FLOP_THRESHOLD_SET.load(Ordering::Relaxed) {
        FLOP_THRESHOLD.load(Ordering::Relaxed)
    } else {
        DEFAULT_PAR_FLOP_THRESHOLD
    }
}

/// Overrides the parallel flop threshold (`None` restores the default).
/// `Some(0)` parallelizes everything; `Some(usize::MAX)` forces serial.
pub fn set_par_flop_threshold(threshold: Option<usize>) {
    match threshold {
        Some(t) => {
            FLOP_THRESHOLD.store(t, Ordering::Relaxed);
            FLOP_THRESHOLD_SET.store(true, Ordering::Relaxed);
        }
        None => FLOP_THRESHOLD_SET.store(false, Ordering::Relaxed),
    }
}

/// Thread count an auto-parallel kernel should use for a product of
/// `flops` floating-point operations: 1 below the threshold, the policy
/// default above it.
pub fn threads_for_flops(flops: usize) -> usize {
    if flops < par_flop_threshold() {
        1
    } else {
        resolve_threads(0)
    }
}

/// Lifetime-erased pointer to the job closure of an in-flight task.
///
/// Safety: the pointee outlives every dereference because [`run`] does not
/// return until all chunks have completed (`done == nchunks`), and workers
/// never touch a task after claiming a chunk index `>= nchunks`.
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (the pointer type says so) and outlives
// every dereference — see the struct docs: `run` keeps the closure alive
// until all chunks are done, and workers never touch an exhausted task.
unsafe impl Send for Job {}
// SAFETY: same argument as `Send` above; shared references to the closure
// are handed to workers only while `run` holds it alive.
unsafe impl Sync for Job {}

/// One parallel region: a job closure plus chunk-claiming state.
struct Task {
    job: Job,
    nchunks: usize,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    /// Completed chunks.
    done: AtomicUsize,
    panicked: AtomicBool,
    complete: Mutex<bool>,
    cv: Condvar,
}

impl Task {
    fn new(job: Job, nchunks: usize) -> Self {
        Task {
            job,
            nchunks,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            complete: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.nchunks
    }

    /// Claims and runs chunks until none remain.
    fn participate(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.nchunks {
                return;
            }
            // SAFETY: `idx < nchunks` here, so the submitting `run` is
            // still blocked in `wait` and the closure behind the pointer
            // is alive (see `Job`).
            let f = unsafe { &*self.job.0 };
            if catch_unwind(AssertUnwindSafe(|| f(idx))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            // AcqRel chains each finisher's writes to the last finisher,
            // whose mutex store hands them to the waiting submitter.
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.nchunks {
                *lock_recover(&self.complete) = true;
                self.cv.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut g = lock_recover(&self.complete);
        while !*g {
            g = self
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

struct PoolState {
    queue: VecDeque<Arc<Task>>,
    workers: usize,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
        }),
        work_cv: Condvar::new(),
    })
}

fn worker_loop() {
    let p = pool();
    loop {
        let task = {
            let mut st = lock_recover(&p.state);
            loop {
                while st.queue.front().is_some_and(|t| t.exhausted()) {
                    st.queue.pop_front();
                }
                if let Some(t) = st.queue.front() {
                    break Arc::clone(t);
                }
                st = p
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        task.participate();
    }
}

/// Number of worker threads currently alive (grows on demand; the
/// submitting thread itself is not counted).
pub fn spawned_workers() -> usize {
    lock_recover(&pool().state).workers
}

/// Runs `job(0..nchunks)` across `nthreads` threads (the caller plus pool
/// workers) and returns when every chunk has finished. Chunks are claimed
/// dynamically; each index runs exactly once. Panics in `job` are
/// collected and re-raised here after all chunks complete, leaving the
/// pool reusable.
pub fn run(nthreads: usize, nchunks: usize, job: &(dyn Fn(usize) + Sync)) {
    if nchunks == 0 {
        return;
    }
    let nthreads = nthreads.min(nchunks).min(MAX_THREADS);
    if nthreads <= 1 || nchunks <= 1 {
        for i in 0..nchunks {
            job(i);
        }
        return;
    }
    // SAFETY: lifetime erasure only; this function does not return until
    // `wait()` observes every chunk complete, so the `'static` reference
    // never outlives the actual borrow (see `Job`).
    let job_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
    let task = Arc::new(Task::new(Job(job_static as *const _), nchunks));
    {
        let p = pool();
        let mut st = lock_recover(&p.state);
        let want = nthreads - 1;
        while st.workers < want {
            let id = st.workers + 1;
            // Spawn failure (thread exhaustion) degrades to fewer workers
            // instead of aborting: the submitting thread participates
            // below, so the task always completes.
            match std::thread::Builder::new()
                .name(format!("dtucker-pool-{id}"))
                .spawn(worker_loop)
            {
                Ok(_) => st.workers += 1,
                Err(_) => break,
            }
        }
        st.queue.push_back(Arc::clone(&task));
        p.work_cv.notify_all();
    }
    task.participate();
    task.wait();
    if task.panicked.load(Ordering::Acquire) {
        // Re-raising the collected panic is this function's documented
        // contract (panics must not be swallowed); it is a propagation,
        // not a new failure mode.
        // dtucker-lint: allow(no-unwrap-in-lib)
        panic!("dtucker pool task panicked");
    }
}

/// Raw pointer wrapper so disjoint sub-slices can be carved out from
/// worker threads. Safety: chunks in [`parallel_chunks`] never overlap.
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);

// SAFETY: sharing the wrapper only shares the pointer *value*; every
// dereference happens in `parallel_chunks`, whose chunks are disjoint by
// construction, so no two threads ever alias the same elements.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Method (not field) access, so closures capture the `Sync` wrapper
    /// rather than precise-capturing the raw-pointer field.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into contiguous chunks aligned to `granularity` elements
/// and calls `f(first_block_index, chunk)` for each, distributing chunks
/// over `nthreads` threads. Blocks of `granularity` elements are never
/// split (the final block may be short if `data.len()` is not a
/// multiple). `f` must only depend on the block index and chunk contents,
/// so results are identical for every thread count.
pub fn parallel_chunks<T, F>(data: &mut [T], granularity: usize, nthreads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(granularity > 0, "parallel_chunks: zero granularity");
    let len = data.len();
    if len == 0 {
        return;
    }
    let nthreads = nthreads.max(1);
    let nblocks = len.div_ceil(granularity);
    let nchunks = nblocks.min(nthreads * CHUNKS_PER_THREAD);
    if nthreads == 1 || nchunks <= 1 {
        f(0, data);
        return;
    }
    let blocks_per_chunk = nblocks.div_ceil(nchunks);
    let base = SendPtr(data.as_mut_ptr());
    let job = move |chunk: usize| {
        let ptr = base.get();
        let b0 = chunk * blocks_per_chunk;
        let b1 = (b0 + blocks_per_chunk).min(nblocks);
        if b0 >= b1 {
            return;
        }
        let start = b0 * granularity;
        let end = (b1 * granularity).min(len);
        // SAFETY: `start..end` lies within `data` (b1 ≤ nblocks and both
        // bounds are clamped to `len`), chunks for distinct `chunk`
        // indices are disjoint, and `run` keeps `data` mutably borrowed
        // until every chunk completes — so each sub-slice is a unique
        // &mut into live memory.
        let sub = unsafe { std::slice::from_raw_parts_mut(ptr.add(start), end - start) };
        f(b0, sub);
    };
    run(nthreads, nchunks, &job);
}

/// Evaluates `f(0..n)` across `nthreads` threads and collects the results
/// in index order. `f` runs exactly once per index.
pub fn parallel_map<T, F>(n: usize, nthreads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    parallel_chunks(&mut out, 1, nthreads, |i0, chunk| {
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = Some(f(i0 + off));
        }
    });
    // Every slot is written exactly once (`parallel_chunks` covers each
    // index once — pinned by `chunks_cover_every_element_once`); a missing
    // result is impossible, and silently dropping a slot would corrupt
    // caller indexing, so this stays a hard invariant check.
    out.into_iter()
        // dtucker-lint: allow(no-unwrap-in-lib)
        .map(|o| o.expect("parallel_map: missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_every_element_once() {
        for &(len, gran, threads) in &[
            (1usize, 1usize, 1usize),
            (7, 1, 3),
            (100, 1, 4),
            (100, 7, 4),
            (128, 8, 2),
            (3, 8, 4),
            (1000, 3, 8),
        ] {
            let mut data = vec![0u32; len];
            parallel_chunks(&mut data, gran, threads, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1;
                }
            });
            assert!(
                data.iter().all(|&v| v == 1),
                "len={len} gran={gran} threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_block_indices_are_consistent() {
        let mut data = vec![0usize; 64];
        parallel_chunks(&mut data, 4, 3, |block0, chunk| {
            for (off, v) in chunk.iter_mut().enumerate() {
                *v = block0 * 4 + off;
            }
        });
        let expect: Vec<usize> = (0..64).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn map_matches_serial_for_every_thread_count() {
        let expect: Vec<u64> = (0..33).map(|i| (i as u64) * 17 + 3).collect();
        for threads in [1, 2, 3, 8] {
            let got = parallel_map(33, threads, |i| (i as u64) * 17 + 3);
            assert_eq!(got, expect, "threads={threads}");
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn nested_regions_complete() {
        let outer = parallel_map(4, 4, |i| {
            let inner = parallel_map(8, 4, move |j| i * 8 + j);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..4).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(outer, expect);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = catch_unwind(|| {
            parallel_map(8, 4, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        std::panic::set_hook(hook);
        assert!(result.is_err());
        // The pool must still work after a panicking task.
        let v = parallel_map(16, 4, |i| i * 2);
        assert_eq!(v, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn workers_are_reused_not_respawned() {
        let _ = parallel_map(64, 3, |i| i);
        let after_first = spawned_workers();
        for _ in 0..10 {
            let _ = parallel_map(64, 3, |i| i);
        }
        // Re-running at the same width must not grow the pool.
        assert_eq!(spawned_workers(), after_first);
    }

    #[test]
    fn explicit_request_wins_resolution() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        // Requests are capped.
        assert_eq!(resolve_threads(usize::MAX), MAX_THREADS);
    }

    #[test]
    fn flop_threshold_is_a_knob() {
        // Note: other tests in this binary also consult the global
        // threshold; confine overrides to values we restore.
        assert_eq!(par_flop_threshold(), DEFAULT_PAR_FLOP_THRESHOLD);
        set_par_flop_threshold(Some(100));
        assert_eq!(par_flop_threshold(), 100);
        assert_eq!(threads_for_flops(99), 1);
        assert!(threads_for_flops(100) >= 1);
        set_par_flop_threshold(Some(usize::MAX));
        assert_eq!(threads_for_flops(usize::MAX - 1), 1);
        set_par_flop_threshold(None);
        assert_eq!(par_flop_threshold(), DEFAULT_PAR_FLOP_THRESHOLD);
        assert_eq!(threads_for_flops(0), 1);
    }
}
