//! Dense row-major `f64` matrix.
//!
//! This is the workhorse type of the whole workspace. It is deliberately
//! simple — a shape plus a contiguous `Vec<f64>` — so that the hot kernels in
//! [`crate::gemm`] can operate on raw slices without bounds checks in inner
//! loops.

use crate::error::{LinalgError, Result};

/// A dense matrix of `f64` values stored in row-major order.
///
/// Element `(r, c)` lives at `data[r * cols + c]`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "Matrix::from_vec",
                details: format!(
                    "{}x{} needs {} elements, got {}",
                    rows,
                    cols,
                    rows * cols,
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix by evaluating `f(r, c)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the main diagonal.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::DimensionMismatch {
                    op: "Matrix::from_rows",
                    details: format!("row {} has length {}, expected {}", i, row.len(), ncols),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        debug_assert!(c < self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Overwrites column `c` with `values`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        debug_assert_eq!(values.len(), self.rows);
        for (r, &v) in values.iter().enumerate() {
            self.data[r * self.cols + c] = v;
        }
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Tile the transpose to stay cache-friendly for large operands.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                let rmax = (rb + B).min(self.rows);
                let cmax = (cb + B).min(self.cols);
                for r in rb..rmax {
                    for c in cb..cmax {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Extracts the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        debug_assert!(r0 <= r1 && r1 <= self.rows);
        debug_assert!(c0 <= c1 && c1 <= self.cols);
        let mut out = Matrix::zeros(r1 - r0, c1 - c0);
        for r in r0..r1 {
            out.as_mut_slice()[(r - r0) * (c1 - c0)..(r - r0 + 1) * (c1 - c0)]
                .copy_from_slice(&self.data[r * self.cols + c0..r * self.cols + c1]);
        }
        out
    }

    /// Keeps only the first `k` columns.
    pub fn truncate_cols(&self, k: usize) -> Matrix {
        debug_assert!(k <= self.cols);
        self.submatrix(0, self.rows, 0, k)
    }

    /// Keeps only the first `k` rows.
    pub fn truncate_rows(&self, k: usize) -> Matrix {
        debug_assert!(k <= self.rows);
        self.submatrix(0, k, 0, self.cols)
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "hcat",
                details: format!("{} rows vs {} rows", self.rows, other.rows),
            });
        }
        let cols = self.cols + other.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Vertical concatenation `[self; other]`.
    pub fn vcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "vcat",
                details: format!("{} cols vs {} cols", self.cols, other.cols),
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self + other`, returning a new matrix.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// `self - other`, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// `self += alpha * other` in place.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                details: format!("{:?} vs {:?}", self.shape(), other.shape()),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                details: format!("{:?} vs {:?}", self.shape(), other.shape()),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    ///
    /// Uses scaled accumulation so that very large or very small entries do
    /// not overflow/underflow the running sum.
    pub fn fro_norm(&self) -> f64 {
        crate::norms::fro_norm(&self.data)
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Multiplies `self * v` for a vector `v` of length `cols`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                details: format!("matrix {}x{}, vector {}", self.rows, self.cols, v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        Ok(out)
    }

    /// Multiplies `selfᵀ * v` for a vector `v` of length `rows`.
    pub fn t_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "t_matvec",
                details: format!("matrix {}x{}, vector {}", self.rows, self.cols, v.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let s = v[r];
            for (o, &a) in out.iter_mut().zip(row.iter()) {
                *o += s * a;
            }
        }
        Ok(out)
    }

    /// True when `|self - other|` is entry-wise within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum entry-wise absolute difference, or `f64::INFINITY` on shape
    /// mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        if self.shape() != other.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// Checks column orthonormality: `‖selfᵀ self − I‖_max ≤ tol`.
    pub fn has_orthonormal_cols(&self, tol: f64) -> bool {
        let g = crate::gemm::t_matmul(self, self);
        let mut max_dev = 0.0f64;
        for r in 0..g.rows() {
            for c in 0..g.cols() {
                let target = if r == c { 1.0 } else { 0.0 };
                max_dev = max_dev.max((g.get(r, c) - target).abs());
            }
        }
        max_dev <= tol
    }
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8usize;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>12.5} ", self.get(r, c))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn from_rows_validates_lengths() {
        let ok = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(ok.get(1, 0), 3.0);
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_fn(5, 7, |r, c| (r * 7 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (7, 5));
        assert_eq!(t.get(3, 4), m.get(4, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_tiled() {
        let m = Matrix::from_fn(65, 130, |r, c| (r * 1000 + c) as f64);
        let t = m.transpose();
        for r in 0..65 {
            for c in 0..130 {
                assert_eq!(t.get(c, r), m.get(r, c));
            }
        }
    }

    #[test]
    fn col_get_set() {
        let mut m = Matrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn submatrix_and_truncate() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), m.get(1, 2));
        assert_eq!(s.get(1, 1), m.get(2, 3));
        assert_eq!(m.truncate_cols(2).shape(), (4, 2));
        assert_eq!(m.truncate_rows(3).shape(), (3, 4));
    }

    #[test]
    fn hcat_vcat() {
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        let b = Matrix::from_fn(2, 1, |r, _| 100.0 + r as f64);
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.get(1, 2), 101.0);
        let v = a.vcat(&a).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.get(3, 1), a.get(1, 1));
        assert!(a.hcat(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vcat(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::identity(2);
        assert_eq!(a.add(&b).unwrap().get(0, 0), 2.0);
        assert_eq!(a.sub(&b).unwrap().get(1, 1), 3.0);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.get(0, 0), 3.0);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
        let mut d = a.clone();
        d.scale(0.5);
        assert_eq!(d.get(0, 1), 1.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn matvec_and_transposed() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0]).unwrap(), vec![5.0, 7.0, 9.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.t_matvec(&[1.0]).is_err());
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Matrix::identity(2);
        let mut b = a.clone();
        b.set(0, 1, 1e-9);
        assert!(a.approx_eq(&b, 1e-8));
        assert!(!a.approx_eq(&b, 1e-10));
        assert!((a.max_abs_diff(&b) - 1e-9).abs() < 1e-18);
        assert_eq!(a.max_abs_diff(&Matrix::zeros(3, 3)), f64::INFINITY);
    }

    #[test]
    fn from_diag_places_values() {
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }
}
