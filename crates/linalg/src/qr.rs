//! Householder QR decomposition.
//!
//! Thin QR: for `A ∈ R^{m×n}` with `t = min(m, n)`, produces `Q ∈ R^{m×t}`
//! with orthonormal columns and upper-triangular (trapezoidal when `m < n`)
//! `R ∈ R^{t×n}` such that `A = Q R`.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::norms;

/// Result of a thin QR decomposition.
#[derive(Debug, Clone)]
pub struct Qr {
    /// `m × min(m, n)` factor with orthonormal columns.
    pub q: Matrix,
    /// `min(m, n) × n` upper-triangular/trapezoidal factor.
    pub r: Matrix,
}

/// Computes the thin QR decomposition of `a` with Householder reflectors.
pub fn qr_thin(a: &Matrix) -> Qr {
    let (m, n) = a.shape();
    let t = m.min(n);
    let mut work = a.clone();
    // Reflector k is stored as (beta_k, v_k) with v_k of length m - k and
    // v_k[0] = 1 implicitly NOT used; we store the full scaled vector.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(t);
    let mut betas: Vec<f64> = Vec::with_capacity(t);

    for k in 0..t {
        // x = work[k.., k]
        let mut v: Vec<f64> = (k..m).map(|r| work.get(r, k)).collect();
        let normx = norms::fro_norm(&v);
        if normx == 0.0 {
            vs.push(v);
            betas.push(0.0);
            continue;
        }
        let alpha = if v[0] >= 0.0 { -normx } else { normx };
        v[0] -= alpha;
        let vnorm_sq = norms::norm_sq(&v);
        let beta = if vnorm_sq == 0.0 { 0.0 } else { 2.0 / vnorm_sq };
        // Apply H = I - beta v vᵀ to work[k.., k..].
        if beta != 0.0 {
            for c in k..n {
                let mut dot = 0.0;
                for (i, &vi) in v.iter().enumerate() {
                    dot += vi * work.get(k + i, c);
                }
                let s = beta * dot;
                for (i, &vi) in v.iter().enumerate() {
                    let cur = work.get(k + i, c);
                    work.set(k + i, c, cur - s * vi);
                }
            }
        }
        // The column is now (alpha, 0, ..., 0)ᵀ below row k; enforce exactly.
        work.set(k, k, alpha);
        for r in (k + 1)..m {
            work.set(r, k, 0.0);
        }
        vs.push(v);
        betas.push(beta);
    }

    // R = top t rows of the transformed matrix (upper triangular by construction).
    let mut r = Matrix::zeros(t, n);
    for i in 0..t {
        for j in i..n {
            r.set(i, j, work.get(i, j));
        }
    }

    // Q = H_0 H_1 ... H_{t-1} applied to the first t columns of I_m.
    let mut q = Matrix::zeros(m, t);
    for i in 0..t {
        q.set(i, i, 1.0);
    }
    for k in (0..t).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        let v = &vs[k];
        for c in 0..t {
            let mut dot = 0.0;
            for (i, &vi) in v.iter().enumerate() {
                dot += vi * q.get(k + i, c);
            }
            let s = beta * dot;
            for (i, &vi) in v.iter().enumerate() {
                let cur = q.get(k + i, c);
                q.set(k + i, c, cur - s * vi);
            }
        }
    }

    Qr { q, r }
}

/// Returns an orthonormal basis for the column space of `a` (the thin-QR `Q`
/// factor).
pub fn orthonormalize(a: &Matrix) -> Matrix {
    qr_thin(a).q
}

/// Solves the upper-triangular system `R x = b` by back substitution.
///
/// `r` must be square `n×n` upper triangular and `b` of length `n`.
pub fn solve_upper_triangular(r: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = r.rows();
    if r.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_upper_triangular",
            details: format!("R is {:?}, b has length {}", r.shape(), b.len()),
        });
    }
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in (i + 1)..n {
            acc -= r.get(i, j) * x[j];
        }
        let d = r.get(i, i);
        if d.abs() < f64::EPSILON * n as f64 {
            return Err(LinalgError::Singular {
                op: "solve_upper_triangular",
            });
        }
        x[i] = acc / d;
    }
    Ok(x)
}

/// Least-squares solve `min_x ‖A x − b‖₂` for full-column-rank `A` via QR.
///
/// Returns `x` of length `a.cols()`. Requires `m ≥ n`.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "lstsq",
            details: format!("A is {:?}, b has length {}", a.shape(), b.len()),
        });
    }
    if m < n {
        return Err(LinalgError::InvalidArgument {
            op: "lstsq",
            details: format!("underdetermined system {m}x{n}"),
        });
    }
    let Qr { q, r } = qr_thin(a);
    let qtb = q.t_matvec(b)?;
    solve_upper_triangular(&r, &qtb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{matmul, t_matmul};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_qr(a: &Matrix) {
        let Qr { q, r } = qr_thin(a);
        let t = a.rows().min(a.cols());
        assert_eq!(q.shape(), (a.rows(), t));
        assert_eq!(r.shape(), (t, a.cols()));
        // A = QR
        let qr = matmul(&q, &r);
        assert!(
            qr.approx_eq(a, 1e-10),
            "QR reconstruction failed, diff {}",
            qr.max_abs_diff(a)
        );
        // QᵀQ = I
        let qtq = t_matmul(&q, &q);
        assert!(qtq.approx_eq(&Matrix::identity(t), 1e-10));
        // R upper triangular
        for i in 0..t {
            for j in 0..i.min(r.cols()) {
                assert!(r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_square() {
        check_qr(&random(6, 6, 1));
    }

    #[test]
    fn qr_tall() {
        check_qr(&random(30, 7, 2));
        check_qr(&random(100, 3, 3));
    }

    #[test]
    fn qr_wide() {
        check_qr(&random(5, 12, 4));
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns.
        let base = random(10, 1, 5);
        let a = base.hcat(&base).unwrap().hcat(&random(10, 2, 6)).unwrap();
        let Qr { q, r } = qr_thin(&a);
        assert!(matmul(&q, &r).approx_eq(&a, 1e-10));
        assert!(q.has_orthonormal_cols(1e-8));
    }

    #[test]
    fn qr_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let Qr { q, r } = qr_thin(&a);
        assert!(matmul(&q, &r).approx_eq(&a, 1e-12));
        assert!(r.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn qr_single_column() {
        let a = Matrix::from_vec(3, 1, vec![3.0, 0.0, 4.0]).unwrap();
        let Qr { q, r } = qr_thin(&a);
        assert!((r.get(0, 0).abs() - 5.0).abs() < 1e-12);
        assert!(matmul(&q, &r).approx_eq(&a, 1e-12));
    }

    #[test]
    fn orthonormalize_gives_basis() {
        let a = random(20, 5, 7);
        let q = orthonormalize(&a);
        assert!(q.has_orthonormal_cols(1e-10));
    }

    #[test]
    fn back_substitution() {
        let r = Matrix::from_vec(3, 3, vec![2.0, 1.0, 1.0, 0.0, 3.0, 2.0, 0.0, 0.0, 4.0]).unwrap();
        let x = vec![1.0, -2.0, 0.5];
        let b = r.matvec(&x).unwrap();
        let sol = solve_upper_triangular(&r, &b).unwrap();
        for (s, e) in sol.iter().zip(x.iter()) {
            assert!((s - e).abs() < 1e-12);
        }
    }

    #[test]
    fn back_substitution_detects_singular() {
        let r = Matrix::from_vec(2, 2, vec![1.0, 2.0, 0.0, 0.0]).unwrap();
        assert!(matches!(
            solve_upper_triangular(&r, &[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn lstsq_recovers_exact_solution() {
        let a = random(20, 4, 8);
        let x = vec![1.0, -1.0, 2.0, 0.5];
        let b = a.matvec(&x).unwrap();
        let sol = lstsq(&a, &b).unwrap();
        for (s, e) in sol.iter().zip(x.iter()) {
            assert!((s - e).abs() < 1e-9);
        }
    }

    #[test]
    fn lstsq_rejects_bad_shapes() {
        let a = random(3, 5, 9);
        assert!(lstsq(&a, &[0.0; 3]).is_err()); // underdetermined
        let a = random(5, 3, 10);
        assert!(lstsq(&a, &[0.0; 4]).is_err()); // wrong b length
    }

    #[test]
    fn qr_matches_known_2x2() {
        // A = [[3, 0], [4, 5]]; first column norm 5.
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 4.0, 5.0]).unwrap();
        let Qr { q, r } = qr_thin(&a);
        assert!((r.get(0, 0).abs() - 5.0).abs() < 1e-12);
        assert!(matmul(&q, &r).approx_eq(&a, 1e-12));
    }
}
