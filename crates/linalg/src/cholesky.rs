//! Cholesky decomposition of symmetric positive-definite matrices.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Cholesky factor `L` with `A = L Lᵀ`, `L` lower triangular.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    pub fn new(a: &Matrix) -> Result<Cholesky> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                details: format!("matrix is {:?}, must be square", a.shape()),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = 0.5 * (a.get(i, j) + a.get(j, i));
                for k in 0..j {
                    acc -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if acc <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l.set(i, j, acc.sqrt());
                } else {
                    l.set(i, j, acc / l.get(j, j));
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                details: format!("system size {n}, rhs length {}", b.len()),
            });
        }
        let mut y = b.to_vec();
        // L y = b.
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.l.get(i, j) * y[j];
            }
            y[i] = acc / self.l.get(i, i);
        }
        // Lᵀ x = y.
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l.get(j, i) * y[j];
            }
            y[i] = acc / self.l.get(i, i);
        }
        Ok(y)
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                details: format!("system size {n}, rhs has {} rows", b.rows()),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            x.set_col(c, &self.solve_vec(&b.col(c))?);
        }
        Ok(x)
    }

    /// Log-determinant of the factored matrix (`2 Σ log Lᵢᵢ`).
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gram, matmul, matmul_t};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n + 3, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut g = gram(&a);
        for i in 0..n {
            let v = g.get(i, i);
            g.set(i, i, v + 0.1);
        }
        g
    }

    #[test]
    fn factor_reconstructs() {
        let a = random_spd(8, 1);
        let ch = Cholesky::new(&a).unwrap();
        let rec = matmul_t(ch.l(), ch.l());
        assert!(rec.approx_eq(&a, 1e-10));
        // L is lower triangular.
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_eq!(ch.l().get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn solve_round_trip() {
        let a = random_spd(12, 2);
        let x_true: Vec<f64> = (0..12).map(|i| i as f64 * 0.3 - 1.0).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = Cholesky::new(&a).unwrap().solve_vec(&b).unwrap();
        for (got, want) in x.iter().zip(x_true.iter()) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = random_spd(6, 3);
        let x_true = Matrix::from_fn(6, 4, |r, c| (r + c) as f64 * 0.1);
        let b = matmul(&a, &x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        let ch = Cholesky::new(&Matrix::identity(3)).unwrap();
        assert!(ch.solve_vec(&[1.0]).is_err());
        assert!(ch.solve(&Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::new(&Matrix::identity(5)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }
}
