//! Matrix multiplication kernels.
//!
//! Row-major blocked kernels with an `i-k-j` inner loop (the inner loop runs
//! over contiguous rows of the right operand and the output, which the
//! compiler auto-vectorizes). Large products are split across threads with
//! `crossbeam` scoped threads.
//!
//! Shape mismatches are programming errors (the shapes in every caller are
//! derived from tensor metadata), so like slice indexing these functions
//! panic on mismatch; `try_matmul` is the checked front door for user-facing
//! code.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Products with at least this many flops are run multi-threaded.
const PAR_FLOP_THRESHOLD: usize = 1 << 23;

/// Cache block size for the k dimension.
const KB: usize = 64;

fn threads_for(flops: usize) -> usize {
    if flops < PAR_FLOP_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(16)
}

/// `A * B`. Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {:?} * {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, p);
    let nthreads = threads_for(2 * m * n * p);
    if nthreads <= 1 || m < 2 {
        matmul_rows(a.as_slice(), b.as_slice(), c.as_mut_slice(), 0, m, n, p);
        return c;
    }
    let chunk = m.div_ceil(nthreads);
    let bdat = b.as_slice();
    let adat = a.as_slice();
    let cdat = c.as_mut_slice();
    crossbeam::thread::scope(|s| {
        for (t, cchunk) in cdat.chunks_mut(chunk * p).enumerate() {
            let r0 = t * chunk;
            let rows = cchunk.len() / p;
            s.spawn(move |_| {
                matmul_rows_into(&adat[r0 * n..(r0 + rows) * n], bdat, cchunk, rows, n, p);
            });
        }
    })
    .expect("matmul worker thread panicked");
    c
}

/// Checked variant of [`matmul`].
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            details: format!("{:?} * {:?}", a.shape(), b.shape()),
        });
    }
    Ok(matmul(a, b))
}

/// Computes rows `r0..r1` of `C = A*B` into the full `c` buffer.
fn matmul_rows(a: &[f64], b: &[f64], c: &mut [f64], r0: usize, r1: usize, n: usize, p: usize) {
    matmul_rows_into(&a[r0 * n..r1 * n], b, &mut c[r0 * p..r1 * p], r1 - r0, n, p);
}

/// Dense kernel: `c (rows×p) = a (rows×n) * b (n×p)`, blocked over k.
fn matmul_rows_into(a: &[f64], b: &[f64], c: &mut [f64], rows: usize, n: usize, p: usize) {
    for kb in (0..n).step_by(KB) {
        let kmax = (kb + KB).min(n);
        for i in 0..rows {
            let arow = &a[i * n..(i + 1) * n];
            let crow = &mut c[i * p..(i + 1) * p];
            for k in kb..kmax {
                let aik = arow[k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[k * p..(k + 1) * p];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// Raw-slice GEMM: `c (m×p) += a (m×n) · b (n×p)`, all row-major.
///
/// This is the batched-product entry point used by tensor n-mode products,
/// where operands are contiguous windows of a tensor buffer rather than
/// owned [`Matrix`] values. `c` must be zero-initialized by the caller if a
/// plain product (not an accumulation) is wanted.
///
/// Panics if the slice lengths disagree with `(m, n, p)`.
pub fn matmul_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, p: usize) {
    assert_eq!(a.len(), m * n, "matmul_into: bad lhs length");
    assert_eq!(b.len(), n * p, "matmul_into: bad rhs length");
    assert_eq!(c.len(), m * p, "matmul_into: bad out length");
    matmul_rows_into(a, b, c, m, n, p);
}

/// Raw-slice transposed GEMM: `c (n×p) += aᵀ · b` for row-major
/// `a (m×n)`, `b (m×p)`. See [`matmul_into`] for the calling convention.
pub fn t_matmul_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, p: usize) {
    assert_eq!(a.len(), m * n, "t_matmul_into: bad lhs length");
    assert_eq!(b.len(), m * p, "t_matmul_into: bad rhs length");
    assert_eq!(c.len(), n * p, "t_matmul_into: bad out length");
    t_matmul_cols(a, b, c, 0, n, m, n, p);
}

/// `Aᵀ * B`. Panics if `a.rows() != b.rows()`.
pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "t_matmul shape mismatch: {:?}ᵀ * {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(n, p);
    let nthreads = threads_for(2 * m * n * p);
    let adat = a.as_slice();
    let bdat = b.as_slice();
    if nthreads <= 1 || n < 2 {
        t_matmul_cols(adat, bdat, c.as_mut_slice(), 0, n, m, n, p);
        return c;
    }
    let chunk = n.div_ceil(nthreads);
    let cdat = c.as_mut_slice();
    crossbeam::thread::scope(|s| {
        for (t, cchunk) in cdat.chunks_mut(chunk * p).enumerate() {
            let i0 = t * chunk;
            let i1 = i0 + cchunk.len() / p;
            s.spawn(move |_| {
                // Each worker recomputes its own output rows; `cchunk` starts at row i0.
                for r in 0..m {
                    let arow = &adat[r * n..(r + 1) * n];
                    let brow = &bdat[r * p..(r + 1) * p];
                    for i in i0..i1 {
                        let aik = arow[i];
                        if aik == 0.0 {
                            continue;
                        }
                        let crow = &mut cchunk[(i - i0) * p..(i - i0 + 1) * p];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += aik * bv;
                        }
                    }
                }
            });
        }
    })
    .expect("t_matmul worker thread panicked");
    c
}

#[allow(clippy::too_many_arguments)]
/// Computes output rows `i0..i1` of `C = AᵀB` into the full `c` buffer.
fn t_matmul_cols(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    i0: usize,
    i1: usize,
    m: usize,
    n: usize,
    p: usize,
) {
    for r in 0..m {
        let arow = &a[r * n..(r + 1) * n];
        let brow = &b[r * p..(r + 1) * p];
        for i in i0..i1 {
            let aik = arow[i];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c[i * p..(i + 1) * p];
            for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                *cv += aik * bv;
            }
        }
    }
}

/// `A * Bᵀ`. Panics if `a.cols() != b.cols()`.
pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_t shape mismatch: {:?} * {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, n, p) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, p);
    let adat = a.as_slice();
    let bdat = b.as_slice();
    let nthreads = threads_for(2 * m * n * p);
    let body = |cchunk: &mut [f64], r0: usize| {
        let rows = cchunk.len() / p;
        for i in 0..rows {
            let arow = &adat[(r0 + i) * n..(r0 + i + 1) * n];
            for j in 0..p {
                let brow = &bdat[j * n..(j + 1) * n];
                cchunk[i * p + j] = crate::norms::dot(arow, brow);
            }
        }
    };
    if nthreads <= 1 || m < 2 {
        body(c.as_mut_slice(), 0);
        return c;
    }
    let chunk = m.div_ceil(nthreads);
    crossbeam::thread::scope(|s| {
        for (t, cchunk) in c.as_mut_slice().chunks_mut(chunk * p).enumerate() {
            s.spawn(move |_| body(cchunk, t * chunk));
        }
    })
    .expect("matmul_t worker thread panicked");
    c
}

/// Symmetric Gram product `Aᵀ A` (only computes the upper triangle, then
/// mirrors it).
pub fn gram(a: &Matrix) -> Matrix {
    let n = a.cols();
    let m = a.rows();
    let mut g = Matrix::zeros(n, n);
    for r in 0..m {
        let row = a.row(r);
        for i in 0..n {
            let ai = row[i];
            if ai == 0.0 {
                continue;
            }
            let grow = &mut g.as_mut_slice()[i * n..(i + 1) * n];
            for j in i..n {
                grow[j] += ai * row[j];
            }
        }
    }
    for i in 0..n {
        for j in 0..i {
            let v = g.get(j, i);
            g.set(i, j, v);
        }
    }
    g
}

/// Symmetric outer Gram product `A Aᵀ`.
pub fn gram_t(a: &Matrix) -> Matrix {
    let m = a.rows();
    let mut g = Matrix::zeros(m, m);
    for i in 0..m {
        let ri = a.row(i);
        for j in i..m {
            let v = crate::norms::dot(ri, a.row(j));
            g.set(i, j, v);
            g.set(j, i, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn matmul_small_exact() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_random() {
        for &(m, n, p) in &[
            (1, 1, 1),
            (3, 5, 4),
            (17, 33, 9),
            (64, 64, 64),
            (70, 130, 40),
        ] {
            let a = random(m, n, 1);
            let b = random(n, p, 2);
            let c = matmul(&a, &b);
            assert!(c.approx_eq(&naive(&a, &b), 1e-10), "{}x{}x{}", m, n, p);
        }
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Big enough to cross the parallel threshold.
        let a = random(300, 200, 3);
        let b = random(200, 150, 4);
        let c = matmul(&a, &b);
        assert!(c.approx_eq(&naive(&a, &b), 1e-9));
    }

    #[test]
    fn t_matmul_matches_transpose() {
        for &(m, n, p) in &[(4, 3, 5), (40, 30, 20), (300, 60, 80)] {
            let a = random(m, n, 5);
            let b = random(m, p, 6);
            let c = t_matmul(&a, &b);
            let expected = matmul(&a.transpose(), &b);
            assert!(c.approx_eq(&expected, 1e-9), "{}x{}x{}", m, n, p);
        }
    }

    #[test]
    fn matmul_t_matches_transpose() {
        for &(m, n, p) in &[(4, 3, 5), (40, 30, 20), (150, 80, 120)] {
            let a = random(m, n, 7);
            let b = random(p, n, 8);
            let c = matmul_t(&a, &b);
            let expected = matmul(&a, &b.transpose());
            assert!(c.approx_eq(&expected, 1e-9), "{}x{}x{}", m, n, p);
        }
    }

    #[test]
    fn gram_is_ata() {
        let a = random(20, 7, 9);
        let g = gram(&a);
        let expected = matmul(&a.transpose(), &a);
        assert!(g.approx_eq(&expected, 1e-10));
        // Symmetry.
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn gram_t_is_aat() {
        let a = random(6, 11, 10);
        let g = gram_t(&a);
        let expected = matmul(&a, &a.transpose());
        assert!(g.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn try_matmul_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(try_matmul(&a, &b).is_err());
        assert!(try_matmul(&a, &Matrix::zeros(3, 2)).is_ok());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn identity_is_neutral() {
        let a = random(8, 8, 11);
        assert!(matmul(&a, &Matrix::identity(8)).approx_eq(&a, 1e-12));
        assert!(matmul(&Matrix::identity(8), &a).approx_eq(&a, 1e-12));
    }
}
