//! Matrix multiplication kernels.
//!
//! Every variant (`AB`, `AᵀB`, `ABᵀ`, both Gram products, and the
//! raw-slice batched entry points) routes through one packed,
//! register-blocked kernel: the right operand is packed once into
//! contiguous column panels of [`NR`] doubles, the left operand is packed
//! tile-by-tile into a stack buffer, and a branch-free [`MR`]`×`[`NR`]
//! register tile accumulates [`KC`]-long runs of the inner dimension.
//! Large products split their output rows across the persistent worker
//! pool in [`crate::pool`]; the split never changes per-element
//! accumulation order, so results are bit-identical for every thread
//! count.
//!
//! Shape mismatches are programming errors (the shapes in every caller are
//! derived from tensor metadata), so like slice indexing these functions
//! panic on mismatch; `try_matmul` is the checked front door for user-facing
//! code.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::pool;

/// Register-tile rows (distinct accumulator rows held live).
const MR: usize = 4;

/// Register-tile columns (one cache line of f64s, two AVX2 vectors).
const NR: usize = 8;

/// Inner-dimension block length; `MR × KC` doubles of packed A (8 KiB)
/// stay L1-resident while a panel streams through.
const KC: usize = 256;

/// The right operand packed into contiguous panels.
///
/// Layout: for each inner-dimension block `k0..k0+kl` (in [`KC`] steps)
/// and each panel `jp` of [`NR`] columns, the `kl × NR` panel is stored
/// k-major at offset `k0 * p_padded + jp * kl * NR`. Columns past `p` are
/// zero so the kernel never branches on the tile edge.
struct PackedB {
    data: Vec<f64>,
    /// Inner (contraction) dimension.
    k: usize,
    /// Output columns.
    p: usize,
    /// `p` rounded up to a multiple of [`NR`].
    p_padded: usize,
}

impl PackedB {
    fn panel(&self, k0: usize, kl: usize, jp: usize) -> &[f64] {
        let off = k0 * self.p_padded + jp * kl * NR;
        &self.data[off..off + kl * NR]
    }
}

/// Packs row-major `b (k×p)` (the `B` of `A·B`).
fn pack_b(b: &[f64], k: usize, p: usize) -> PackedB {
    let p_padded = p.div_ceil(NR) * NR;
    let mut data = Vec::with_capacity(k * p_padded);
    let mut k0 = 0;
    while k0 < k {
        let kl = KC.min(k - k0);
        for jp in 0..p_padded / NR {
            let j0 = jp * NR;
            for kk in 0..kl {
                let row = &b[(k0 + kk) * p..(k0 + kk + 1) * p];
                for j in j0..j0 + NR {
                    data.push(if j < p { row[j] } else { 0.0 });
                }
            }
        }
        k0 += kl;
    }
    PackedB {
        data,
        k,
        p,
        p_padded,
    }
}

/// Packs `bᵀ` for `A·Bᵀ`: `b` is row-major `p×k`, and the packed panels
/// hold `bᵀ (k×p)`.
fn pack_b_trans(b: &[f64], k: usize, p: usize) -> PackedB {
    let p_padded = p.div_ceil(NR) * NR;
    let mut data = Vec::with_capacity(k * p_padded);
    let mut k0 = 0;
    while k0 < k {
        let kl = KC.min(k - k0);
        for jp in 0..p_padded / NR {
            let j0 = jp * NR;
            for kk in 0..kl {
                for j in j0..j0 + NR {
                    data.push(if j < p { b[j * k + (k0 + kk)] } else { 0.0 });
                }
            }
        }
        k0 += kl;
    }
    PackedB {
        data,
        k,
        p,
        p_padded,
    }
}

/// How the left operand is laid out.
#[derive(Clone, Copy)]
enum ASource<'a> {
    /// `A[i, k] = data[i * stride + k]` — a row-major matrix.
    Rows { data: &'a [f64], stride: usize },
    /// `A[i, k] = data[k * stride + i]` — a transposed view of a
    /// row-major matrix (used by `AᵀB` without materializing `Aᵀ`).
    Cols { data: &'a [f64], stride: usize },
}

/// Packs an `mr × kl` tile of A k-major into `buf`, zero-filling rows
/// past `mr` so the kernel always runs a full [`MR`]-row tile.
fn pack_a(src: ASource, i0: usize, mr: usize, k0: usize, kl: usize, buf: &mut [f64; MR * KC]) {
    match src {
        ASource::Rows { data, stride } => {
            for r in 0..mr {
                let row = &data[(i0 + r) * stride + k0..][..kl];
                for (kk, &v) in row.iter().enumerate() {
                    buf[kk * MR + r] = v;
                }
            }
        }
        ASource::Cols { data, stride } => {
            for kk in 0..kl {
                let krow = &data[(k0 + kk) * stride..];
                for r in 0..mr {
                    buf[kk * MR + r] = krow[i0 + r];
                }
            }
        }
    }
    if mr < MR {
        for kk in 0..kl {
            for r in mr..MR {
                buf[kk * MR + r] = 0.0;
            }
        }
    }
}

/// The register micro-kernel: accumulates a full `MR × NR` tile over `kl`
/// inner steps, then adds the live `mr × nr` corner into `c`.
///
/// `c` is the chunk of output rows starting at local row `i_local`; the
/// tile's columns start at `j0`. No `== 0.0` branches: padded lanes
/// compute harmlessly and are simply not written back.
#[allow(clippy::too_many_arguments)]
#[inline]
fn kernel(
    abuf: &[f64; MR * KC],
    panel: &[f64],
    kl: usize,
    c: &mut [f64],
    i_local: usize,
    j0: usize,
    p: usize,
    mr: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // `as_chunks` reinterprets the packed buffers as fixed-size
    // `[f64; NR]`/`[f64; MR]` windows, keeping the inner loops branch-free
    // with no fallible conversion.
    let (bchunks, _) = panel.as_chunks::<NR>();
    let (achunks, _) = abuf.as_chunks::<MR>();
    for kk in 0..kl {
        let b = &bchunks[kk];
        let a = &achunks[kk];
        for r in 0..MR {
            let ar = a[r];
            for j in 0..NR {
                acc[r][j] += ar * b[j];
            }
        }
    }
    let nr = NR.min(p - j0);
    for r in 0..mr {
        let crow = &mut c[(i_local + r) * p + j0..(i_local + r) * p + j0 + nr];
        for (cv, av) in crow.iter_mut().zip(acc[r].iter()) {
            *cv += av;
        }
    }
}

/// Computes `rows` output rows starting at global row `row0` into the
/// chunk `c` (whose local row 0 is global row `row0`), accumulating.
fn gemm_rows(src: ASource, bp: &PackedB, c: &mut [f64], row0: usize, rows: usize) {
    let p = bp.p;
    let npanels = bp.p_padded / NR;
    let mut abuf = [0.0f64; MR * KC];
    let mut k0 = 0;
    while k0 < bp.k {
        let kl = KC.min(bp.k - k0);
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            pack_a(src, row0 + i, mr, k0, kl, &mut abuf);
            for jp in 0..npanels {
                kernel(&abuf, bp.panel(k0, kl, jp), kl, c, i, jp * NR, p, mr);
            }
            i += mr;
        }
        k0 += kl;
    }
}

/// Splits the `m` output rows over the pool (tile-aligned) and runs
/// [`gemm_rows`] on each range. Accumulates into `c`.
fn gemm_driver(src: ASource, bp: &PackedB, c: &mut [f64], m: usize, nthreads: usize) {
    debug_assert_eq!(c.len(), m * bp.p);
    if nthreads <= 1 || m <= MR {
        gemm_rows(src, bp, c, 0, m);
        return;
    }
    let p = bp.p;
    pool::parallel_chunks(c, MR * p, nthreads, |block0, chunk| {
        gemm_rows(src, bp, chunk, block0 * MR, chunk.len() / p);
    });
}

/// `A * B`. Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {:?} * {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, p);
    let bp = pack_b(b.as_slice(), n, p);
    let src = ASource::Rows {
        data: a.as_slice(),
        stride: n,
    };
    gemm_driver(
        src,
        &bp,
        c.as_mut_slice(),
        m,
        pool::threads_for_flops(2 * m * n * p),
    );
    c
}

/// Range-GEMM: `A[r0..r1, :] * B` without materializing the row slice —
/// the row range of a row-major matrix is a contiguous buffer window, so
/// the packed kernel reads it in place. This is the building block of
/// factored range queries, where a contraction touches only the requested
/// rows of a factor matrix.
///
/// Returns an error if `a.cols() != b.rows()` or the range is not
/// `r0 <= r1 <= a.rows()`.
pub fn matmul_row_range(a: &Matrix, r0: usize, r1: usize, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_row_range",
            details: format!("{:?} * {:?}", a.shape(), b.shape()),
        });
    }
    if r0 > r1 || r1 > a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_row_range",
            details: format!("rows {r0}..{r1} out of range for {:?}", a.shape()),
        });
    }
    let (m, n, p) = (r1 - r0, a.cols(), b.cols());
    let mut c = Matrix::zeros(m, p);
    if m == 0 {
        return Ok(c);
    }
    matmul_into_threaded(
        &a.as_slice()[r0 * n..r1 * n],
        b.as_slice(),
        c.as_mut_slice(),
        m,
        n,
        p,
        pool::threads_for_flops(2 * m * n * p),
    );
    Ok(c)
}

/// Checked variant of [`matmul`].
pub fn try_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            details: format!("{:?} * {:?}", a.shape(), b.shape()),
        });
    }
    Ok(matmul(a, b))
}

/// `Aᵀ * B`. Panics if `a.rows() != b.rows()`.
pub fn t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "t_matmul shape mismatch: {:?}ᵀ * {:?}",
        a.shape(),
        b.shape()
    );
    let (m, n, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(n, p);
    let bp = pack_b(b.as_slice(), m, p);
    let src = ASource::Cols {
        data: a.as_slice(),
        stride: n,
    };
    gemm_driver(
        src,
        &bp,
        c.as_mut_slice(),
        n,
        pool::threads_for_flops(2 * m * n * p),
    );
    c
}

/// `A * Bᵀ`. Panics if `a.cols() != b.cols()`.
pub fn matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_t shape mismatch: {:?} * {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, n, p) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, p);
    let bp = pack_b_trans(b.as_slice(), n, p);
    let src = ASource::Rows {
        data: a.as_slice(),
        stride: n,
    };
    gemm_driver(
        src,
        &bp,
        c.as_mut_slice(),
        m,
        pool::threads_for_flops(2 * m * n * p),
    );
    c
}

/// Raw-slice GEMM: `c (m×p) += a (m×n) · b (n×p)`, all row-major.
///
/// This is the batched-product entry point used by tensor n-mode products,
/// where operands are contiguous windows of a tensor buffer rather than
/// owned [`Matrix`] values. `c` must be zero-initialized by the caller if a
/// plain product (not an accumulation) is wanted. Runs serial — batched
/// callers own the parallelism ([`matmul_into_threaded`] is the threaded
/// form).
///
/// Panics if the slice lengths disagree with `(m, n, p)`.
pub fn matmul_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, p: usize) {
    matmul_into_threaded(a, b, c, m, n, p, 1);
}

/// [`matmul_into`] with the row split spread over `nthreads` pool threads.
pub fn matmul_into_threaded(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    p: usize,
    nthreads: usize,
) {
    assert_eq!(a.len(), m * n, "matmul_into: bad lhs length");
    assert_eq!(b.len(), n * p, "matmul_into: bad rhs length");
    assert_eq!(c.len(), m * p, "matmul_into: bad out length");
    let bp = pack_b(b, n, p);
    gemm_driver(ASource::Rows { data: a, stride: n }, &bp, c, m, nthreads);
}

/// Raw-slice transposed GEMM: `c (n×p) += aᵀ · b` for row-major
/// `a (m×n)`, `b (m×p)`. See [`matmul_into`] for the calling convention.
pub fn t_matmul_into(a: &[f64], b: &[f64], c: &mut [f64], m: usize, n: usize, p: usize) {
    t_matmul_into_threaded(a, b, c, m, n, p, 1);
}

/// [`t_matmul_into`] with the row split spread over `nthreads` pool
/// threads.
pub fn t_matmul_into_threaded(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    p: usize,
    nthreads: usize,
) {
    assert_eq!(a.len(), m * n, "t_matmul_into: bad lhs length");
    assert_eq!(b.len(), m * p, "t_matmul_into: bad rhs length");
    assert_eq!(c.len(), n * p, "t_matmul_into: bad out length");
    let bp = pack_b(b, m, p);
    gemm_driver(ASource::Cols { data: a, stride: n }, &bp, c, n, nthreads);
}

/// Symmetric Gram product `Aᵀ A`.
///
/// Routed through the packed kernel as `AᵀB` with `B = A`; entries `(i,j)`
/// and `(j,i)` accumulate the same products in the same order, so the
/// result is bitwise symmetric.
pub fn gram(a: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    let mut g = Matrix::zeros(n, n);
    let bp = pack_b(a.as_slice(), m, n);
    let src = ASource::Cols {
        data: a.as_slice(),
        stride: n,
    };
    gemm_driver(
        src,
        &bp,
        g.as_mut_slice(),
        n,
        pool::threads_for_flops(2 * m * n * n),
    );
    g
}

/// Symmetric outer Gram product `A Aᵀ` (bitwise symmetric, see [`gram`]).
pub fn gram_t(a: &Matrix) -> Matrix {
    let (m, n) = (a.rows(), a.cols());
    let mut g = Matrix::zeros(m, m);
    let bp = pack_b_trans(a.as_slice(), n, m);
    let src = ASource::Rows {
        data: a.as_slice(),
        stride: n,
    };
    gemm_driver(
        src,
        &bp,
        g.as_mut_slice(),
        m,
        pool::threads_for_flops(2 * m * n * m),
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn matmul_small_exact() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_matches_naive_random() {
        for &(m, n, p) in &[
            (1, 1, 1),
            (3, 5, 4),
            (17, 33, 9),
            (64, 64, 64),
            (70, 130, 40),
        ] {
            let a = random(m, n, 1);
            let b = random(n, p, 2);
            let c = matmul(&a, &b);
            assert!(c.approx_eq(&naive(&a, &b), 1e-10), "{}x{}x{}", m, n, p);
        }
    }

    #[test]
    fn matmul_row_range_matches_submatrix() {
        let a = random(23, 11, 3);
        let b = random(11, 6, 4);
        for &(r0, r1) in &[(0usize, 23usize), (5, 9), (0, 1), (22, 23), (7, 7)] {
            let fast = matmul_row_range(&a, r0, r1, &b).unwrap();
            let slow = matmul(&a.submatrix(r0, r1, 0, a.cols()), &b);
            assert_eq!(fast.shape(), (r1 - r0, 6));
            // Same kernel over the same contiguous bytes: bit-identical.
            assert_eq!(fast.as_slice(), slow.as_slice(), "{r0}..{r1}");
        }
        // Bad shapes and ranges are typed errors, not panics.
        assert!(matmul_row_range(&a, 0, 2, &random(7, 3, 5)).is_err());
        assert!(matmul_row_range(&a, 9, 5, &b).is_err());
        assert!(matmul_row_range(&a, 0, 24, &b).is_err());
    }

    #[test]
    fn matmul_handles_tile_edges() {
        // Shapes chosen to hit every remainder of the MR×NR tile and a
        // KC-boundary straddle.
        for &(m, n, p) in &[
            (1, 7, 1),
            (1, 300, 9),
            (5, 2, 8),
            (4, 256, 8),
            (5, 257, 9),
            (3, 513, 17),
            (9, 1, 3),
        ] {
            let a = random(m, n, 21);
            let b = random(n, p, 22);
            assert!(
                matmul(&a, &b).approx_eq(&naive(&a, &b), 1e-10),
                "{}x{}x{}",
                m,
                n,
                p
            );
        }
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Big enough to cross the parallel threshold.
        let a = random(300, 200, 3);
        let b = random(200, 150, 4);
        let c = matmul(&a, &b);
        assert!(c.approx_eq(&naive(&a, &b), 1e-9));
    }

    #[test]
    fn results_bit_identical_across_thread_counts() {
        let (m, n, p) = (70, 300, 33);
        let a = random(m, n, 31);
        let b = random(n, p, 32);
        let bp = pack_b(b.as_slice(), n, p);
        let src = ASource::Rows {
            data: a.as_slice(),
            stride: n,
        };
        let mut reference = vec![0.0; m * p];
        gemm_driver(src, &bp, &mut reference, m, 1);
        for threads in [2, 3, 4, 7] {
            let mut c = vec![0.0; m * p];
            gemm_driver(src, &bp, &mut c, m, threads);
            assert!(c == reference, "thread count {threads} changed bits");
        }
    }

    #[test]
    fn t_matmul_matches_transpose() {
        for &(m, n, p) in &[(4, 3, 5), (40, 30, 20), (300, 60, 80)] {
            let a = random(m, n, 5);
            let b = random(m, p, 6);
            let c = t_matmul(&a, &b);
            let expected = matmul(&a.transpose(), &b);
            assert!(c.approx_eq(&expected, 1e-9), "{}x{}x{}", m, n, p);
        }
    }

    #[test]
    fn matmul_t_matches_transpose() {
        for &(m, n, p) in &[(4, 3, 5), (40, 30, 20), (150, 80, 120)] {
            let a = random(m, n, 7);
            let b = random(p, n, 8);
            let c = matmul_t(&a, &b);
            let expected = matmul(&a, &b.transpose());
            assert!(c.approx_eq(&expected, 1e-9), "{}x{}x{}", m, n, p);
        }
    }

    #[test]
    fn into_variants_accumulate() {
        let (m, n, p) = (6, 9, 5);
        let a = random(m, n, 12);
        let b = random(n, p, 13);
        let mut c = vec![1.0; m * p];
        matmul_into(a.as_slice(), b.as_slice(), &mut c, m, n, p);
        let expected = matmul(&a, &b);
        for i in 0..m * p {
            assert!((c[i] - 1.0 - expected.as_slice()[i]).abs() < 1e-12);
        }

        let at = a.transpose(); // n×m, so atᵀ·b is m×... use t_matmul_into on a
        let bt = random(m, p, 14);
        let mut ct = vec![-2.0; n * p];
        t_matmul_into(a.as_slice(), bt.as_slice(), &mut ct, m, n, p);
        let expected_t = matmul(&at, &bt);
        for i in 0..n * p {
            assert!((ct[i] + 2.0 - expected_t.as_slice()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn threaded_into_matches_serial_bitwise() {
        let (m, n, p) = (64, 48, 24);
        let a = random(m, n, 15);
        let b = random(n, p, 16);
        let mut serial = vec![0.0; m * p];
        matmul_into(a.as_slice(), b.as_slice(), &mut serial, m, n, p);
        let mut threaded = vec![0.0; m * p];
        matmul_into_threaded(a.as_slice(), b.as_slice(), &mut threaded, m, n, p, 4);
        assert!(serial == threaded);

        let bt = random(m, p, 17);
        let mut serial_t = vec![0.0; n * p];
        t_matmul_into(a.as_slice(), bt.as_slice(), &mut serial_t, m, n, p);
        let mut threaded_t = vec![0.0; n * p];
        t_matmul_into_threaded(a.as_slice(), bt.as_slice(), &mut threaded_t, m, n, p, 3);
        assert!(serial_t == threaded_t);
    }

    #[test]
    fn gram_is_ata() {
        let a = random(20, 7, 9);
        let g = gram(&a);
        let expected = matmul(&a.transpose(), &a);
        assert!(g.approx_eq(&expected, 1e-10));
        // Symmetry.
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn gram_t_is_aat() {
        let a = random(6, 11, 10);
        let g = gram_t(&a);
        let expected = matmul(&a, &a.transpose());
        assert!(g.approx_eq(&expected, 1e-10));
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn try_matmul_checks_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(try_matmul(&a, &b).is_err());
        assert!(try_matmul(&a, &Matrix::zeros(3, 2)).is_ok());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let _ = matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }

    #[test]
    fn identity_is_neutral() {
        let a = random(8, 8, 11);
        assert!(matmul(&a, &Matrix::identity(8)).approx_eq(&a, 1e-12));
        assert!(matmul(&Matrix::identity(8), &a).approx_eq(&a, 1e-12));
    }
}
