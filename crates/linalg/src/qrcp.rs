//! Column-pivoted (rank-revealing) QR decomposition.
//!
//! `A P = Q R` with `|R₁₁| ≥ |R₂₂| ≥ …`, so the diagonal of `R` exposes the
//! numerical rank. Used for cheap rank estimation of slices and unfoldings.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::norms;

/// Result of a column-pivoted QR decomposition `A P = Q R`.
#[derive(Debug, Clone)]
pub struct QrcpResult {
    /// `m × t` factor with orthonormal columns, `t = min(m, n)`.
    pub q: Matrix,
    /// `t × n` upper-trapezoidal factor with non-increasing `|diag|`.
    pub r: Matrix,
    /// Column permutation: output column `j` of `R` corresponds to input
    /// column `perm[j]` of `A`.
    pub perm: Vec<usize>,
}

impl QrcpResult {
    /// Numerical rank: number of diagonal entries of `R` above
    /// `tol · |R₀₀|`.
    pub fn rank(&self, tol: f64) -> usize {
        let t = self.r.rows();
        if t == 0 {
            return 0;
        }
        let r00 = self.r.get(0, 0).abs();
        if r00 == 0.0 {
            return 0;
        }
        (0..t)
            .take_while(|&i| self.r.get(i, i).abs() > tol * r00)
            .count()
    }

    /// Reconstructs `A` (undoing the pivoting).
    pub fn reconstruct(&self) -> Matrix {
        let qr = crate::gemm::matmul(&self.q, &self.r);
        let (m, n) = qr.shape();
        let mut a = Matrix::zeros(m, n);
        for (j, &src) in self.perm.iter().enumerate() {
            for r in 0..m {
                a.set(r, src, qr.get(r, j));
            }
        }
        a
    }
}

/// Computes a column-pivoted Householder QR decomposition.
pub fn qr_column_pivoted(a: &Matrix) -> Result<QrcpResult> {
    let (m, n) = a.shape();
    if a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::InvalidArgument {
            op: "qr_column_pivoted",
            details: "matrix contains non-finite entries".into(),
        });
    }
    let t = m.min(n);
    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    // Squared column norms, downdated as the factorization proceeds.
    let mut col_norms: Vec<f64> = (0..n).map(|c| norms::norm_sq(&work.col(c))).collect();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(t);
    let mut betas: Vec<f64> = Vec::with_capacity(t);

    for k in 0..t {
        // Pivot: remaining column with the largest norm. Recompute exactly
        // (the classical downdate is numerically fragile); columns are
        // short after a few steps so this stays cheap.
        let mut p = k;
        let mut best = -1.0f64;
        for c in k..n {
            if col_norms[c] > best {
                best = col_norms[c];
                p = c;
            }
        }
        if p != k {
            for r in 0..m {
                let tmp = work.get(r, k);
                work.set(r, k, work.get(r, p));
                work.set(r, p, tmp);
            }
            perm.swap(k, p);
            col_norms.swap(k, p);
        }

        // Householder reflector for column k.
        let mut v: Vec<f64> = (k..m).map(|r| work.get(r, k)).collect();
        let normx = norms::fro_norm(&v);
        if normx == 0.0 {
            vs.push(v);
            betas.push(0.0);
            continue;
        }
        let alpha = if v[0] >= 0.0 { -normx } else { normx };
        v[0] -= alpha;
        let vnorm_sq = norms::norm_sq(&v);
        let beta = if vnorm_sq == 0.0 { 0.0 } else { 2.0 / vnorm_sq };
        if beta != 0.0 {
            for c in k..n {
                let mut dot = 0.0;
                for (i, &vi) in v.iter().enumerate() {
                    dot += vi * work.get(k + i, c);
                }
                let s = beta * dot;
                for (i, &vi) in v.iter().enumerate() {
                    let cur = work.get(k + i, c);
                    work.set(k + i, c, cur - s * vi);
                }
            }
        }
        work.set(k, k, alpha);
        for r in (k + 1)..m {
            work.set(r, k, 0.0);
        }
        vs.push(v);
        betas.push(beta);
        // Refresh remaining column norms (exact recompute below row k).
        for c in (k + 1)..n {
            let mut acc = 0.0;
            for r in (k + 1)..m {
                let x = work.get(r, c);
                acc += x * x;
            }
            col_norms[c] = acc;
        }
    }

    let mut r = Matrix::zeros(t, n);
    for i in 0..t {
        for j in i..n {
            r.set(i, j, work.get(i, j));
        }
    }
    // Form Q by applying reflectors to the leading t columns of I.
    let mut q = Matrix::zeros(m, t);
    for i in 0..t {
        q.set(i, i, 1.0);
    }
    for k in (0..t).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        let v = &vs[k];
        for c in 0..t {
            let mut dot = 0.0;
            for (i, &vi) in v.iter().enumerate() {
                dot += vi * q.get(k + i, c);
            }
            let s = beta * dot;
            for (i, &vi) in v.iter().enumerate() {
                let cur = q.get(k + i, c);
                q.set(k + i, c, cur - s * vi);
            }
        }
    }
    Ok(QrcpResult { q, r, perm })
}

/// Convenience: numerical rank of a matrix at relative tolerance `tol`.
pub fn numerical_rank(a: &Matrix, tol: f64) -> Result<usize> {
    Ok(qr_column_pivoted(a)?.rank(tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul_t;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn reconstructs_and_orthonormal() {
        for &(m, n, seed) in &[(8usize, 8usize, 1u64), (20, 6, 2), (6, 15, 3)] {
            let a = random(m, n, seed);
            let f = qr_column_pivoted(&a).unwrap();
            assert!(f.q.has_orthonormal_cols(1e-10));
            assert!(f.reconstruct().approx_eq(&a, 1e-9), "{m}x{n}");
            // Diagonal magnitudes non-increasing.
            let t = m.min(n);
            for i in 1..t {
                assert!(
                    f.r.get(i, i).abs() <= f.r.get(i - 1, i - 1).abs() + 1e-10,
                    "diag not sorted at {i}"
                );
            }
        }
    }

    #[test]
    fn reveals_rank() {
        let u = random(20, 3, 4);
        let v = random(12, 3, 5);
        let a = matmul_t(&u, &v); // rank 3
        let f = qr_column_pivoted(&a).unwrap();
        assert_eq!(f.rank(1e-8), 3);
        assert_eq!(numerical_rank(&a, 1e-8).unwrap(), 3);
        // Full-rank case.
        assert_eq!(numerical_rank(&random(10, 7, 6), 1e-10).unwrap(), 7);
        // Zero matrix.
        assert_eq!(numerical_rank(&Matrix::zeros(5, 4), 1e-10).unwrap(), 0);
    }

    #[test]
    fn perm_is_permutation() {
        let a = random(9, 9, 7);
        let f = qr_column_pivoted(&a).unwrap();
        let mut seen = [false; 9];
        for &p in &f.perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, f64::INFINITY);
        assert!(qr_column_pivoted(&a).is_err());
    }

    #[test]
    fn rank_matches_svd_rank() {
        let mut rng = StdRng::seed_from_u64(8);
        // Mixed-scale spectrum.
        let spectrum = [10.0, 1.0, 1e-3, 1e-12, 0.0];
        let u = crate::qr::orthonormalize(&crate::random::gaussian_matrix(12, 5, &mut rng));
        let v = crate::qr::orthonormalize(&crate::random::gaussian_matrix(9, 5, &mut rng));
        let us = crate::svd::scale_cols(&u, &spectrum);
        let a = matmul_t(&us, &v);
        let qr_rank = numerical_rank(&a, 1e-6).unwrap();
        let svd_rank = crate::svd::svd(&a).unwrap().rank(1e-6);
        assert_eq!(qr_rank, svd_rank);
        assert_eq!(qr_rank, 3);
    }
}
