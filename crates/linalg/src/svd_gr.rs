//! Golub–Reinsch SVD: Householder bidiagonalization followed by
//! implicit-shift QR iteration on the bidiagonal matrix.
//!
//! This is the classic `svdcmp` algorithm (Golub & van Loan §8.6; the
//! formulation below follows the EISPACK/Numerical-Recipes lineage). It is
//! `O(mn²)` like the one-sided Jacobi route in [`crate::svd`] but with a
//! much smaller constant on larger matrices; Jacobi remains the reference
//! for accuracy-critical small problems. [`svd_golub_reinsch`] is exposed
//! both directly and through [`crate::svd::svd_with`].

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::svd::Svd;

/// Maximum QR iterations per singular value.
const MAX_ITER: usize = 60;

/// `hypot`-style helper (pythag in the classic codes).
#[inline]
fn pythag(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

#[inline]
fn sign_of(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Computes the thin SVD of `a` via Golub–Reinsch.
///
/// Returns factors with the same conventions as [`crate::svd::svd`]:
/// descending non-negative singular values, `U: m×min(m,n)`,
/// `V: n×min(m,n)`.
pub fn svd_golub_reinsch(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    if m < n {
        let t = svd_golub_reinsch(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        });
    }
    if a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::InvalidArgument {
            op: "svd_golub_reinsch",
            details: "matrix contains non-finite entries".into(),
        });
    }

    // Work on u (m×n), accumulating v (n×n); w holds singular values.
    let mut u = a.clone();
    let mut w = vec![0.0f64; n];
    let mut v = Matrix::zeros(n, n);
    let mut rv1 = vec![0.0f64; n];

    // --- Householder bidiagonalization ---------------------------------
    let mut g = 0.0f64;
    let mut scale = 0.0f64;
    let mut anorm = 0.0f64;
    for i in 0..n {
        let l = i + 1;
        rv1[i] = scale * g;
        g = 0.0;
        let mut s;
        scale = 0.0;
        if i < m {
            for k in i..m {
                scale += u.get(k, i).abs();
            }
            if scale != 0.0 {
                s = 0.0;
                for k in i..m {
                    let t = u.get(k, i) / scale;
                    u.set(k, i, t);
                    s += t * t;
                }
                let mut f = u.get(i, i);
                g = -sign_of(s.sqrt(), f);
                let h = f * g - s;
                u.set(i, i, f - g);
                for j in l..n {
                    s = 0.0;
                    for k in i..m {
                        s += u.get(k, i) * u.get(k, j);
                    }
                    f = s / h;
                    for k in i..m {
                        let t = u.get(k, j) + f * u.get(k, i);
                        u.set(k, j, t);
                    }
                }
                for k in i..m {
                    let t = u.get(k, i) * scale;
                    u.set(k, i, t);
                }
            }
        }
        w[i] = scale * g;
        g = 0.0;
        s = 0.0;
        scale = 0.0;
        if i < m && i != n - 1 {
            for k in l..n {
                scale += u.get(i, k).abs();
            }
            if scale != 0.0 {
                for k in l..n {
                    let t = u.get(i, k) / scale;
                    u.set(i, k, t);
                    s += t * t;
                }
                let f = u.get(i, l);
                g = -sign_of(s.sqrt(), f);
                let h = f * g - s;
                u.set(i, l, f - g);
                for k in l..n {
                    rv1[k] = u.get(i, k) / h;
                }
                for j in l..m {
                    s = 0.0;
                    for k in l..n {
                        s += u.get(j, k) * u.get(i, k);
                    }
                    for k in l..n {
                        let t = u.get(j, k) + s * rv1[k];
                        u.set(j, k, t);
                    }
                }
                for k in l..n {
                    let t = u.get(i, k) * scale;
                    u.set(i, k, t);
                }
            }
        }
        anorm = anorm.max(w[i].abs() + rv1[i].abs());
    }

    // --- Accumulate right-hand transformations V ------------------------
    for i in (0..n).rev() {
        let l = i + 1;
        if i < n - 1 {
            if g != 0.0 {
                for j in l..n {
                    v.set(j, i, (u.get(i, j) / u.get(i, l)) / g);
                }
                for j in l..n {
                    let mut s = 0.0;
                    for k in l..n {
                        s += u.get(i, k) * v.get(k, j);
                    }
                    for k in l..n {
                        let t = v.get(k, j) + s * v.get(k, i);
                        v.set(k, j, t);
                    }
                }
            }
            for j in l..n {
                v.set(i, j, 0.0);
                v.set(j, i, 0.0);
            }
        }
        v.set(i, i, 1.0);
        g = rv1[i];
    }

    // --- Accumulate left-hand transformations U -------------------------
    for i in (0..n.min(m)).rev() {
        let l = i + 1;
        g = w[i];
        for j in l..n {
            u.set(i, j, 0.0);
        }
        if g != 0.0 {
            g = 1.0 / g;
            for j in l..n {
                let mut s = 0.0;
                for k in l..m {
                    s += u.get(k, i) * u.get(k, j);
                }
                let f = (s / u.get(i, i)) * g;
                for k in i..m {
                    let t = u.get(k, j) + f * u.get(k, i);
                    u.set(k, j, t);
                }
            }
            for j in i..m {
                let t = u.get(j, i) * g;
                u.set(j, i, t);
            }
        } else {
            for j in i..m {
                u.set(j, i, 0.0);
            }
        }
        let t = u.get(i, i) + 1.0;
        u.set(i, i, t);
    }

    // --- Diagonalization of the bidiagonal form -------------------------
    for k in (0..n).rev() {
        let mut its = 0usize;
        loop {
            its += 1;
            if its > MAX_ITER {
                return Err(LinalgError::NonConvergence {
                    op: "svd_golub_reinsch",
                    iterations: its,
                });
            }
            // Test for splitting.
            let mut l = k;
            let mut flag = true;
            let mut nm = 0usize;
            loop {
                if l == 0 {
                    flag = false;
                    break;
                }
                nm = l - 1;
                if rv1[l].abs() + anorm == anorm {
                    flag = false;
                    break;
                }
                if w[nm].abs() + anorm == anorm {
                    break;
                }
                l -= 1;
            }
            if flag {
                // Cancellation of rv1[l] if l > 0.
                let mut c = 0.0f64;
                let mut s = 1.0f64;
                for i in l..=k {
                    let f = s * rv1[i];
                    rv1[i] *= c;
                    if f.abs() + anorm == anorm {
                        break;
                    }
                    g = w[i];
                    let h = pythag(f, g);
                    w[i] = h;
                    let h_inv = 1.0 / h;
                    c = g * h_inv;
                    s = -f * h_inv;
                    for j in 0..m {
                        let y = u.get(j, nm);
                        let z = u.get(j, i);
                        u.set(j, nm, y * c + z * s);
                        u.set(j, i, z * c - y * s);
                    }
                }
            }
            let z = w[k];
            if l == k {
                // Convergence; make singular value non-negative.
                if z < 0.0 {
                    w[k] = -z;
                    for j in 0..n {
                        let t = -v.get(j, k);
                        v.set(j, k, t);
                    }
                }
                break;
            }
            // Shift from bottom 2×2 minor.
            let mut x = w[l];
            let nm = k - 1;
            let mut y = w[nm];
            g = rv1[nm];
            let mut h = rv1[k];
            let mut f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
            g = pythag(f, 1.0);
            f = ((x - z) * (x + z) + h * ((y / (f + sign_of(g, f))) - h)) / x;
            // Next QR transformation.
            let mut c = 1.0f64;
            let mut s = 1.0f64;
            for j in l..=nm {
                let i = j + 1;
                g = rv1[i];
                y = w[i];
                h = s * g;
                g *= c;
                let mut z = pythag(f, h);
                rv1[j] = z;
                c = f / z;
                s = h / z;
                f = x * c + g * s;
                g = g * c - x * s;
                h = y * s;
                y *= c;
                for jj in 0..n {
                    let xv = v.get(jj, j);
                    let zv = v.get(jj, i);
                    v.set(jj, j, xv * c + zv * s);
                    v.set(jj, i, zv * c - xv * s);
                }
                z = pythag(f, h);
                w[j] = z;
                if z != 0.0 {
                    let z_inv = 1.0 / z;
                    c = f * z_inv;
                    s = h * z_inv;
                }
                f = c * g + s * y;
                x = c * y - s * g;
                for jj in 0..m {
                    let yv = u.get(jj, j);
                    let zv = u.get(jj, i);
                    u.set(jj, j, yv * c + zv * s);
                    u.set(jj, i, zv * c - yv * s);
                }
            }
            rv1[l] = 0.0;
            rv1[k] = f;
            w[k] = x;
        }
    }

    // --- Sort descending (selection sort, swapping columns) -------------
    for i in 0..n {
        let mut p = i;
        for j in (i + 1)..n {
            if w[j] > w[p] {
                p = j;
            }
        }
        if p != i {
            w.swap(i, p);
            for r in 0..m {
                let t = u.get(r, i);
                u.set(r, i, u.get(r, p));
                u.set(r, p, t);
            }
            for r in 0..n {
                let t = v.get(r, i);
                v.set(r, i, v.get(r, p));
                v.set(r, p, t);
            }
        }
    }

    Ok(Svd { u, s: w, v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svd::svd as jacobi_route;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check(a: &Matrix, tol: f64) {
        let d = svd_golub_reinsch(a).unwrap();
        let t = a.rows().min(a.cols());
        assert_eq!(d.u.shape(), (a.rows(), t));
        assert_eq!(d.v.shape(), (a.cols(), t));
        for win in d.s.windows(2) {
            assert!(win[0] >= win[1] - 1e-12, "not sorted: {:?}", d.s);
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
        assert!(d.u.has_orthonormal_cols(1e-8), "U not orthonormal");
        assert!(d.v.has_orthonormal_cols(1e-8), "V not orthonormal");
        let rec = d.reconstruct();
        assert!(
            rec.approx_eq(a, tol),
            "reconstruction diff {}",
            rec.max_abs_diff(a)
        );
    }

    #[test]
    fn gr_svd_shapes() {
        check(&random(6, 6, 1), 1e-9);
        check(&random(20, 5, 2), 1e-9);
        check(&random(5, 20, 3), 1e-9);
        check(&random(50, 50, 4), 1e-8);
        check(&random(1, 1, 5), 1e-12);
        check(&random(1, 7, 6), 1e-10);
        check(&random(7, 1, 7), 1e-10);
        check(&random(100, 40, 8), 1e-8);
    }

    #[test]
    fn gr_matches_jacobi_spectrum() {
        for &(m, n, seed) in &[(12usize, 9usize, 10u64), (30, 30, 11), (25, 40, 12)] {
            let a = random(m, n, seed);
            let gr = svd_golub_reinsch(&a).unwrap();
            let ja = jacobi_route(&a).unwrap();
            for (x, y) in gr.s.iter().zip(ja.s.iter()) {
                assert!((x - y).abs() < 1e-8 * (1.0 + y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn gr_rank_deficient() {
        let u = random(15, 2, 13);
        let v = random(10, 2, 14);
        let a = crate::gemm::matmul_t(&u, &v);
        let d = svd_golub_reinsch(&a).unwrap();
        assert!(d.s[2] < 1e-10 * d.s[0]);
        assert!(d.reconstruct().approx_eq(&a, 1e-9));
    }

    #[test]
    fn gr_zero_and_diag() {
        let d = svd_golub_reinsch(&Matrix::zeros(4, 3)).unwrap();
        assert!(d.s.iter().all(|&x| x == 0.0));
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let d = svd_golub_reinsch(&a).unwrap();
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gr_rejects_non_finite() {
        let mut a = Matrix::zeros(3, 3);
        a.set(1, 1, f64::NAN);
        assert!(svd_golub_reinsch(&a).is_err());
    }

    #[test]
    fn gr_empty() {
        assert!(svd_golub_reinsch(&Matrix::zeros(0, 3))
            .unwrap()
            .s
            .is_empty());
    }

    #[test]
    fn gr_fro_norm_identity() {
        let a = random(18, 14, 15);
        let d = svd_golub_reinsch(&a).unwrap();
        let sum_sq: f64 = d.s.iter().map(|&x| x * x).sum();
        let fro2 = a.fro_norm().powi(2);
        assert!((sum_sq - fro2).abs() < 1e-9 * fro2);
    }
}
