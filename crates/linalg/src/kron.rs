//! Kronecker and Khatri–Rao products.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Kronecker product `A ⊗ B` of an `m×n` and a `p×q` matrix (`mp × nq`).
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, n) = a.shape();
    let (p, q) = b.shape();
    let mut out = Matrix::zeros(m * p, n * q);
    for i in 0..m {
        for j in 0..n {
            let aij = a.get(i, j);
            if aij == 0.0 {
                continue;
            }
            for r in 0..p {
                let orow = &mut out.row_mut(i * p + r)[j * q..(j + 1) * q];
                for (o, &bv) in orow.iter_mut().zip(b.row(r).iter()) {
                    *o = aij * bv;
                }
            }
        }
    }
    out
}

/// Kronecker product of a sequence of matrices, left to right:
/// `kron_all([A, B, C]) = A ⊗ B ⊗ C`.
pub fn kron_all(mats: &[&Matrix]) -> Matrix {
    match mats {
        [] => Matrix::identity(1),
        [only] => (*only).clone(),
        [first, rest @ ..] => {
            let mut acc = (*first).clone();
            for m in rest {
                acc = kron(&acc, m);
            }
            acc
        }
    }
}

/// Khatri–Rao (column-wise Kronecker) product of two matrices with equal
/// column counts: `(A ⊙ B)[:, j] = A[:, j] ⊗ B[:, j]`.
pub fn khatri_rao(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "khatri_rao",
            details: format!("{:?} vs {:?}", a.shape(), b.shape()),
        });
    }
    let (m, k) = a.shape();
    let p = b.rows();
    let mut out = Matrix::zeros(m * p, k);
    for i in 0..m {
        for r in 0..p {
            let orow = out.row_mut(i * p + r);
            let arow = a.row(i);
            let brow = b.row(r);
            for j in 0..k {
                orow[j] = arow[j] * brow[j];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn kron_known_small() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (2, 4));
        assert_eq!(k.as_slice(), &[0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0]);
    }

    #[test]
    fn kron_identity() {
        let a = random(3, 2, 1);
        let k = kron(&Matrix::identity(2), &a);
        // Block diagonal with two copies of a.
        assert_eq!(k.shape(), (6, 4));
        assert_eq!(k.get(0, 0), a.get(0, 0));
        assert_eq!(k.get(3, 2), a.get(0, 0));
        assert_eq!(k.get(0, 2), 0.0);
    }

    #[test]
    fn mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD) — the identity D-Tucker leans on.
        let a = random(3, 4, 2);
        let b = random(2, 5, 3);
        let c = random(4, 3, 4);
        let d = random(5, 2, 5);
        let lhs = matmul(&kron(&a, &b), &kron(&c, &d));
        let rhs = kron(&matmul(&a, &c), &matmul(&b, &d));
        assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn kron_all_order() {
        let a = random(2, 2, 6);
        let b = random(3, 2, 7);
        let c = random(2, 3, 8);
        let all = kron_all(&[&a, &b, &c]);
        let manual = kron(&kron(&a, &b), &c);
        assert!(all.approx_eq(&manual, 1e-12));
        assert_eq!(kron_all(&[]).shape(), (1, 1));
        assert!(kron_all(&[&a]).approx_eq(&a, 0.0));
    }

    #[test]
    fn khatri_rao_columns_are_krons() {
        let a = random(3, 4, 9);
        let b = random(2, 4, 10);
        let kr = khatri_rao(&a, &b).unwrap();
        assert_eq!(kr.shape(), (6, 4));
        for j in 0..4 {
            for i in 0..3 {
                for r in 0..2 {
                    assert!((kr.get(i * 2 + r, j) - a.get(i, j) * b.get(r, j)).abs() < 1e-14);
                }
            }
        }
        assert!(khatri_rao(&a, &random(2, 3, 11)).is_err());
    }
}
