//! Compressed sparse row (CSR) matrices — the substrate for the
//! sparse-input extension of D-Tucker (the lineage's stated future work):
//! the approximation phase only needs `A·Ω` and `Aᵀ·Q` products per slice,
//! which CSR provides in `O(nnz·k)`.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// A sparse matrix in CSR format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices per stored value.
    indices: Vec<usize>,
    /// Stored values.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets (duplicates
    /// are summed).
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidArgument {
                op: "CsrMatrix::from_triplets",
                details: "zero dimension".into(),
            });
        }
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidArgument {
                    op: "CsrMatrix::from_triplets",
                    details: format!("entry ({r},{c}) out of bounds for {rows}x{cols}"),
                });
            }
        }
        // Counting sort by row, then per-row sort + duplicate merge.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; triplets.len()];
        let mut cursor = counts.clone();
        for (i, &(r, _, _)) in triplets.iter().enumerate() {
            order[cursor[r]] = i;
            cursor[r] += 1;
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for r in 0..rows {
            let span = &mut order[counts[r]..counts[r + 1]];
            span.sort_by_key(|&i| triplets[i].1);
            let mut last_col = usize::MAX;
            for &i in span.iter() {
                let (_, c, v) = triplets[i];
                if c == last_col {
                    // `last_col` starts at usize::MAX, so a match implies a
                    // value was already pushed this row.
                    if let Some(last) = values.last_mut() {
                        *last += v;
                    }
                } else {
                    indices.push(c);
                    values.push(v);
                    last_col = c;
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Converts a dense matrix, dropping entries with `|v| <= threshold`.
    pub fn from_dense(a: &Matrix, threshold: f64) -> Result<Self> {
        let mut trips = Vec::new();
        for r in 0..a.rows() {
            for (c, &v) in a.row(r).iter().enumerate() {
                if v.abs() > threshold {
                    trips.push((r, c, v));
                }
            }
        }
        Self::from_triplets(a.rows(), a.cols(), &trips)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Squared Frobenius norm of the stored values.
    pub fn fro_norm_sq(&self) -> f64 {
        self.values.iter().map(|&v| v * v).sum()
    }

    /// Materializes the dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.indptr[r]..self.indptr[r + 1] {
                out.set(r, self.indices[i], self.values[i]);
            }
        }
        out
    }

    /// Dense product `A · B` (`rows × b.cols()`), `O(nnz · b.cols())`.
    pub fn matmul_dense(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "CsrMatrix::matmul_dense",
                details: format!("{}x{} * {:?}", self.rows, self.cols, b.shape()),
            });
        }
        let p = b.cols();
        let mut out = Matrix::zeros(self.rows, p);
        for r in 0..self.rows {
            let orow = out.row_mut(r);
            for i in self.indptr[r]..self.indptr[r + 1] {
                let v = self.values[i];
                let brow = b.row(self.indices[i]);
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += v * bv;
                }
            }
        }
        Ok(out)
    }

    /// Dense transposed product `Aᵀ · B` (`cols × b.cols()`),
    /// `O(nnz · b.cols())`.
    pub fn t_matmul_dense(&self, b: &Matrix) -> Result<Matrix> {
        if b.rows() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "CsrMatrix::t_matmul_dense",
                details: format!("{}x{}ᵀ * {:?}", self.rows, self.cols, b.shape()),
            });
        }
        let p = b.cols();
        let mut out = Matrix::zeros(self.cols, p);
        let odat = out.as_mut_slice();
        for r in 0..self.rows {
            let brow = b.row(r);
            for i in self.indptr[r]..self.indptr[r + 1] {
                let v = self.values[i];
                let c = self.indices[i];
                let orow = &mut odat[c * p..(c + 1) * p];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += v * bv;
                }
            }
        }
        Ok(out)
    }

    /// Bytes stored (indptr + indices + values).
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> (CsrMatrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen_range(0.0..1.0) < density {
                rng.gen_range(-1.0f64..1.0)
            } else {
                0.0
            }
        });
        (CsrMatrix::from_dense(&dense, 0.0).unwrap(), dense)
    }

    #[test]
    fn triplets_round_trip_with_duplicates() {
        let trips = vec![
            (0usize, 1usize, 2.0f64),
            (1, 0, -1.0),
            (0, 1, 3.0),
            (2, 2, 4.0),
        ];
        let m = CsrMatrix::from_triplets(3, 3, &trips).unwrap();
        assert_eq!(m.nnz(), 3); // duplicate (0,1) merged
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 5.0);
        assert_eq!(d.get(1, 0), -1.0);
        assert_eq!(d.get(2, 2), 4.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn from_triplets_validates() {
        assert!(CsrMatrix::from_triplets(0, 3, &[]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let (s, d) = random_sparse(8, 11, 0.3, 1);
        assert!(s.to_dense().approx_eq(&d, 0.0));
        assert!((s.fro_norm_sq() - d.fro_norm() * d.fro_norm()).abs() < 1e-10);
    }

    #[test]
    fn matmul_matches_dense() {
        let (s, d) = random_sparse(10, 14, 0.25, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let b = Matrix::from_fn(14, 5, |_, _| rng.gen_range(-1.0..1.0));
        let fast = s.matmul_dense(&b).unwrap();
        let slow = matmul(&d, &b);
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(s.matmul_dense(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn t_matmul_matches_dense() {
        let (s, d) = random_sparse(12, 9, 0.3, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let b = Matrix::from_fn(12, 4, |_, _| rng.gen_range(-1.0..1.0));
        let fast = s.t_matmul_dense(&b).unwrap();
        let slow = matmul(&d.transpose(), &b);
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(s.t_matmul_dense(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn memory_grows_with_nnz() {
        let (s1, _) = random_sparse(20, 20, 0.1, 6);
        let (s2, _) = random_sparse(20, 20, 0.5, 6);
        assert!(s1.memory_bytes() < s2.memory_bytes());
        assert!(
            s1.memory_bytes() < 20 * 20 * 8,
            "sparse beats dense at 10% fill"
        );
    }

    #[test]
    fn empty_matrix_ok() {
        let m = CsrMatrix::from_triplets(4, 5, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        let b = Matrix::identity(5);
        assert!(m.matmul_dense(&b).unwrap().fro_norm() == 0.0);
    }
}
