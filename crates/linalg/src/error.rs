//! Error types for the linear algebra substrate.

use std::fmt;

/// Errors produced by linear-algebra routines.
///
/// All public entry points that can fail on user input return
/// `Result<_, LinalgError>`; panics are reserved for internal invariant
/// violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation, e.g. `"matmul"`.
        op: &'static str,
        /// Description of the conflicting shapes.
        details: String,
    },
    /// A matrix required to be invertible is (numerically) singular.
    Singular {
        /// Operation that detected the singularity.
        op: &'static str,
    },
    /// A matrix required to be symmetric positive definite is not.
    NotPositiveDefinite,
    /// An iterative method failed to converge within its iteration budget.
    NonConvergence {
        /// Algorithm name, e.g. `"tql2"`.
        op: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// An argument value is out of range (e.g. a zero dimension or a rank
    /// larger than `min(rows, cols)`).
    InvalidArgument {
        /// Operation that rejected the argument.
        op: &'static str,
        /// Description of the offending value.
        details: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, details } => {
                write!(f, "dimension mismatch in {op}: {details}")
            }
            LinalgError::Singular { op } => write!(f, "singular matrix in {op}"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NonConvergence { op, iterations } => {
                write!(f, "{op} failed to converge after {iterations} iterations")
            }
            LinalgError::InvalidArgument { op, details } => {
                write!(f, "invalid argument to {op}: {details}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_all_variants() {
        let cases: Vec<(LinalgError, &str)> = vec![
            (
                LinalgError::DimensionMismatch {
                    op: "matmul",
                    details: "2x3 * 4x5".into(),
                },
                "dimension mismatch in matmul: 2x3 * 4x5",
            ),
            (
                LinalgError::Singular { op: "lu_solve" },
                "singular matrix in lu_solve",
            ),
            (
                LinalgError::NotPositiveDefinite,
                "matrix is not symmetric positive definite",
            ),
            (
                LinalgError::NonConvergence {
                    op: "tql2",
                    iterations: 30,
                },
                "tql2 failed to converge after 30 iterations",
            ),
            (
                LinalgError::InvalidArgument {
                    op: "rsvd",
                    details: "rank 0".into(),
                },
                "invalid argument to rsvd: rank 0",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LinalgError::NotPositiveDefinite);
    }
}
