//! Symmetric eigendecomposition.
//!
//! Classic two-stage dense solver: Householder tridiagonalization (`tred2`)
//! followed by the implicitly shifted QL iteration (`tql2`), both in the
//! EISPACK/JAMA formulation. This is the backbone of the Gram-matrix routes
//! used for truncated SVDs of large unfoldings.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in **ascending** order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors; column `j` pairs with `values[j]`.
    pub vectors: Matrix,
}

/// Maximum QL iterations per eigenvalue before reporting non-convergence.
const MAX_QL_ITER: usize = 64;

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// The input is symmetrized as `(A + Aᵀ)/2` before factorization, so slight
/// asymmetry from accumulated round-off in Gram products is harmless.
pub fn sym_eig(a: &Matrix) -> Result<SymEig> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "sym_eig",
            details: format!("matrix is {:?}, must be square", a.shape()),
        });
    }
    if n == 0 {
        return Ok(SymEig {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    // Symmetrize into the eigenvector workspace.
    let mut v = Matrix::from_fn(n, n, |r, c| 0.5 * (a.get(r, c) + a.get(c, r)));
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];
    tred2(&mut v, &mut d, &mut e);
    tql2(&mut v, &mut d, &mut e)?;
    sort_ascending(&mut v, &mut d);
    Ok(SymEig {
        values: d,
        vectors: v,
    })
}

/// Returns the `k` eigenvectors with the largest eigenvalues, as the columns
/// of an `n × k` matrix (ordered by descending eigenvalue).
pub fn leading_eigvecs(a: &Matrix, k: usize) -> Result<Matrix> {
    let n = a.rows();
    if k > n {
        return Err(LinalgError::InvalidArgument {
            op: "leading_eigvecs",
            details: format!("k = {k} exceeds matrix size {n}"),
        });
    }
    let eig = sym_eig(a)?;
    let mut out = Matrix::zeros(n, k);
    for j in 0..k {
        let src = n - 1 - j; // descending order
        for r in 0..n {
            out.set(r, j, eig.vectors.get(r, src));
        }
    }
    Ok(out)
}

/// Householder reduction of `v` (symmetric, overwritten with the accumulated
/// orthogonal transform) to tridiagonal form with diagonal `d` and
/// sub-diagonal `e[1..]`.
fn tred2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for (j, dj) in d.iter_mut().enumerate() {
        *dj = v.get(n - 1, j);
    }

    for i in (1..n).rev() {
        // Scale to avoid under/overflow.
        let mut scale = 0.0;
        let mut h = 0.0;
        for dk in d.iter().take(i) {
            scale += dk.abs();
        }
        if scale == 0.0 {
            e[i] = d[i - 1];
            for j in 0..i {
                d[j] = v.get(i - 1, j);
                v.set(i, j, 0.0);
                v.set(j, i, 0.0);
            }
        } else {
            for dk in d.iter_mut().take(i) {
                *dk /= scale;
                h += *dk * *dk;
            }
            let f = d[i - 1];
            let mut g = h.sqrt();
            if f > 0.0 {
                g = -g;
            }
            e[i] = scale * g;
            h -= f * g;
            d[i - 1] = f - g;
            for ej in e.iter_mut().take(i) {
                *ej = 0.0;
            }
            // Apply similarity transformation to remaining columns.
            for j in 0..i {
                let f = d[j];
                v.set(j, i, f);
                let mut g = e[j] + v.get(j, j) * f;
                for k in (j + 1)..i {
                    g += v.get(k, j) * d[k];
                    e[k] += v.get(k, j) * f;
                }
                e[j] = g;
            }
            let mut f = 0.0;
            for j in 0..i {
                e[j] /= h;
                f += e[j] * d[j];
            }
            let hh = f / (h + h);
            for j in 0..i {
                e[j] -= hh * d[j];
            }
            for j in 0..i {
                let f = d[j];
                let g = e[j];
                for k in j..i {
                    let cur = v.get(k, j);
                    v.set(k, j, cur - (f * e[k] + g * d[k]));
                }
                d[j] = v.get(i - 1, j);
                v.set(i, j, 0.0);
            }
        }
        d[i] = h;
    }

    // Accumulate transformations.
    for i in 0..(n - 1) {
        let tmp = v.get(i, i);
        v.set(n - 1, i, tmp);
        v.set(i, i, 1.0);
        let h = d[i + 1];
        if h != 0.0 {
            for (k, dk) in d.iter_mut().enumerate().take(i + 1) {
                *dk = v.get(k, i + 1) / h;
            }
            for j in 0..=i {
                let mut g = 0.0;
                for k in 0..=i {
                    g += v.get(k, i + 1) * v.get(k, j);
                }
                for (k, &dk) in d.iter().enumerate().take(i + 1) {
                    let cur = v.get(k, j);
                    v.set(k, j, cur - g * dk);
                }
            }
        }
        for k in 0..=i {
            v.set(k, i + 1, 0.0);
        }
    }
    for (j, dj) in d.iter_mut().enumerate() {
        *dj = v.get(n - 1, j);
        v.set(n - 1, j, 0.0);
    }
    v.set(n - 1, n - 1, 1.0);
    e[0] = 0.0;
}

/// Implicit QL iteration with shifts on the tridiagonal (`d`, `e`), updating
/// the accumulated transform `v` to the eigenvectors.
fn tql2(v: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    let mut f = 0.0f64;
    let mut tst1 = 0.0f64;
    let eps = f64::EPSILON;
    for l in 0..n {
        tst1 = tst1.max(d[l].abs() + e[l].abs());
        let mut m = l;
        while m < n {
            if e[m].abs() <= eps * tst1 {
                break;
            }
            m += 1;
        }
        if m > l {
            let mut iter = 0usize;
            loop {
                iter += 1;
                if iter > MAX_QL_ITER {
                    return Err(LinalgError::NonConvergence {
                        op: "tql2",
                        iterations: iter,
                    });
                }
                // Compute implicit shift.
                let g = d[l];
                let mut p = (d[l + 1] - g) / (2.0 * e[l]);
                let mut r = p.hypot(1.0);
                if p < 0.0 {
                    r = -r;
                }
                d[l] = e[l] / (p + r);
                d[l + 1] = e[l] * (p + r);
                let dl1 = d[l + 1];
                let mut h = g - d[l];
                for di in d.iter_mut().take(n).skip(l + 2) {
                    *di -= h;
                }
                f += h;

                // Implicit QL transformation.
                p = d[m];
                let mut c = 1.0f64;
                let mut c2 = c;
                let mut c3 = c;
                let el1 = e[l + 1];
                let mut s = 0.0f64;
                let mut s2 = 0.0f64;
                for i in (l..m).rev() {
                    c3 = c2;
                    c2 = c;
                    s2 = s;
                    let g = c * e[i];
                    h = c * p;
                    r = p.hypot(e[i]);
                    e[i + 1] = s * r;
                    s = e[i] / r;
                    c = p / r;
                    p = c * d[i] - s * g;
                    d[i + 1] = h + s * (c * g + s * d[i]);
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let h = v.get(k, i + 1);
                        v.set(k, i + 1, s * v.get(k, i) + c * h);
                        v.set(k, i, c * v.get(k, i) - s * h);
                    }
                }
                p = -s * s2 * c3 * el1 * e[l] / dl1;
                e[l] = s * p;
                d[l] = c * p;
                if e[l].abs() <= eps * tst1 {
                    break;
                }
            }
        }
        d[l] += f;
        e[l] = 0.0;
    }
    Ok(())
}

/// Selection sort of eigenpairs into ascending eigenvalue order.
fn sort_ascending(v: &mut Matrix, d: &mut [f64]) {
    let n = d.len();
    for i in 0..n.saturating_sub(1) {
        let mut k = i;
        let mut p = d[i];
        for (j, &dj) in d.iter().enumerate().take(n).skip(i + 1) {
            if dj < p {
                k = j;
                p = dj;
            }
        }
        if k != i {
            d.swap(i, k);
            for r in 0..n {
                let tmp = v.get(r, i);
                v.set(r, i, v.get(r, k));
                v.set(r, k, tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gram, matmul, t_matmul};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sym(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        Matrix::from_fn(n, n, |r, c| 0.5 * (a.get(r, c) + a.get(c, r)))
    }

    fn check_eig(a: &Matrix, tol: f64) {
        let SymEig { values, vectors } = sym_eig(a).unwrap();
        let n = a.rows();
        // Ascending.
        for w in values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Orthonormal eigenvectors.
        assert!(t_matmul(&vectors, &vectors).approx_eq(&Matrix::identity(n), 1e-9));
        // A V = V Λ.
        let av = matmul(a, &vectors);
        let vl = matmul(&vectors, &Matrix::from_diag(&values));
        assert!(
            av.approx_eq(&vl, tol),
            "AV != VΛ, diff {}",
            av.max_abs_diff(&vl)
        );
    }

    #[test]
    fn eig_diag() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let SymEig { values, .. } = sym_eig(&a).unwrap();
        assert!((values[0] - 1.0).abs() < 1e-12);
        assert!((values[1] - 2.0).abs() < 1e-12);
        assert!((values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn eig_2x2_known() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let SymEig { values, .. } = sym_eig(&a).unwrap();
        assert!((values[0] - 1.0).abs() < 1e-12);
        assert!((values[1] - 3.0).abs() < 1e-12);
        check_eig(&a, 1e-10);
    }

    #[test]
    fn eig_random_sizes() {
        for &(n, seed) in &[(1, 1u64), (2, 2), (5, 3), (10, 4), (40, 5), (100, 6)] {
            check_eig(&random_sym(n, seed), 1e-8);
        }
    }

    #[test]
    fn eig_gram_is_psd() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::from_fn(30, 8, |_, _| rng.gen_range(-1.0..1.0));
        let g = gram(&a);
        let SymEig { values, .. } = sym_eig(&g).unwrap();
        for &v in &values {
            assert!(v > -1e-9, "Gram eigenvalue {v} should be non-negative");
        }
        check_eig(&g, 1e-8);
    }

    #[test]
    fn eig_repeated_eigenvalues() {
        // Identity has all eigenvalues 1.
        let a = Matrix::identity(6);
        let SymEig { values, vectors } = sym_eig(&a).unwrap();
        for &v in &values {
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert!(t_matmul(&vectors, &vectors).approx_eq(&Matrix::identity(6), 1e-10));
    }

    #[test]
    fn eig_zero_matrix() {
        let a = Matrix::zeros(4, 4);
        let SymEig { values, .. } = sym_eig(&a).unwrap();
        assert!(values.iter().all(|&v| v.abs() < 1e-14));
    }

    #[test]
    fn eig_rejects_non_square() {
        assert!(sym_eig(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn leading_eigvecs_order_and_shape() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0, 4.0]);
        let top = leading_eigvecs(&a, 2).unwrap();
        assert_eq!(top.shape(), (4, 2));
        // Largest eigenvalue 5 lives at index 1 → first column is ±e₁.
        assert!((top.get(1, 0).abs() - 1.0).abs() < 1e-10);
        // Second largest eigenvalue 4 lives at index 3.
        assert!((top.get(3, 1).abs() - 1.0).abs() < 1e-10);
        assert!(leading_eigvecs(&a, 5).is_err());
    }

    #[test]
    fn eig_empty() {
        let e = sym_eig(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }
}
