//! Singular value decomposition.
//!
//! Three routes, chosen by the caller's accuracy/size trade-off:
//!
//! * [`svd`] — accurate thin SVD: QR reduction (when tall) followed by
//!   one-sided Jacobi on the small factor. This is the reference route used
//!   by tests and by accuracy-critical small problems.
//! * [`leading_left_singular_vectors`] — Gram-matrix route for the leading
//!   `k` left singular vectors of a (possibly very wide) matrix; this is the
//!   HOOI workhorse.
//! * [`crate::rsvd::rsvd`] — randomized SVD (separate module).

use crate::eig::sym_eig;
use crate::error::{LinalgError, Result};
use crate::gemm::{gram_t, matmul, matmul_t, t_matmul};
use crate::matrix::Matrix;
use crate::norms;
use crate::qr::{orthonormalize, qr_thin};

/// Thin SVD `A = U diag(s) Vᵀ` with singular values in descending order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × t` with `t = min(m, n)`.
    pub u: Matrix,
    /// Singular values, descending, length `t`.
    pub s: Vec<f64>,
    /// Right singular vectors, `n × t` (columns, *not* transposed).
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U diag(s) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let us = scale_cols(&self.u, &self.s);
        matmul(&us, &self.v.transpose())
    }

    /// Truncates to the leading `k` singular triplets.
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        Svd {
            u: self.u.truncate_cols(k),
            s: self.s[..k].to_vec(),
            v: self.v.truncate_cols(k),
        }
    }

    /// Numerical rank: number of singular values above `tol * s[0]`.
    pub fn rank(&self, tol: f64) -> usize {
        if self.s.is_empty() || self.s[0] == 0.0 {
            return 0;
        }
        let cutoff = tol * self.s[0];
        self.s.iter().take_while(|&&x| x > cutoff).count()
    }
}

/// Multiplies column `j` of `a` by `s[j]`.
pub fn scale_cols(a: &Matrix, s: &[f64]) -> Matrix {
    debug_assert!(s.len() >= a.cols());
    let mut out = a.clone();
    let cols = out.cols();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for (c, sv) in s.iter().take(cols).enumerate() {
            row[c] *= sv;
        }
    }
    out
}

/// Maximum one-sided Jacobi sweeps.
const MAX_JACOBI_SWEEPS: usize = 60;

/// Which dense SVD algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvdAlgorithm {
    /// One-sided Jacobi (after QR reduction): slowest, most accurate.
    Jacobi,
    /// Golub–Reinsch bidiagonalization + implicit QR: the classic fast
    /// dense route.
    GolubReinsch,
    /// Jacobi below [`AUTO_GR_THRESHOLD`] columns, Golub–Reinsch above.
    Auto,
}

/// `Auto` switches from Jacobi to Golub–Reinsch once the reduced problem
/// has this many columns (Jacobi's extra sweeps stop paying for themselves).
pub const AUTO_GR_THRESHOLD: usize = 48;

/// Accurate thin SVD with the default (`Auto`) algorithm choice.
///
/// Wide matrices are transposed; tall matrices are reduced with a thin QR
/// so the iteration always runs on an (almost) square factor.
pub fn svd(a: &Matrix) -> Result<Svd> {
    svd_with(a, SvdAlgorithm::Auto)
}

/// Thin SVD with an explicit algorithm choice.
pub fn svd_with(a: &Matrix, alg: SvdAlgorithm) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    if m < n {
        let t = svd_with(&a.transpose(), alg)?;
        return Ok(Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        });
    }
    let use_gr = match alg {
        SvdAlgorithm::Jacobi => false,
        SvdAlgorithm::GolubReinsch => true,
        SvdAlgorithm::Auto => n >= AUTO_GR_THRESHOLD,
    };
    if use_gr {
        return crate::svd_gr::svd_golub_reinsch(a);
    }
    if m > n {
        // A = Q R, svd(R) = Ur S Vᵀ  ⇒  A = (Q Ur) S Vᵀ.
        let f = qr_thin(a);
        let inner = jacobi_svd(&f.r)?;
        return Ok(Svd {
            u: matmul(&f.q, &inner.u),
            s: inner.s,
            v: inner.v,
        });
    }
    jacobi_svd(a)
}

/// One-sided Jacobi SVD for `m ≥ n` (callers guarantee near-square input).
fn jacobi_svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    debug_assert!(m >= n);
    if a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::InvalidArgument {
            op: "jacobi_svd",
            details: "matrix contains non-finite entries".into(),
        });
    }
    // Work on columns of B; rotate V alongside.
    let mut b = a.clone();
    let mut v = Matrix::identity(n);
    let eps = f64::EPSILON;
    // Absolute chatter floor: off-diagonal mass below this is invisible in
    // the singular values, so rotating on it would loop forever on noise.
    let fro = a.fro_norm();
    let floor = eps * fro * fro / (n.max(1) as f64);

    let mut converged = false;
    for _sweep in 0..MAX_JACOBI_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for r in 0..m {
                    let bp = b.get(r, p);
                    let bq = b.get(r, q);
                    app += bp * bp;
                    aqq += bq * bq;
                    apq += bp * bq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() || apq.abs() <= floor {
                    continue;
                }
                rotated = true;
                // Jacobi rotation that zeroes the (p,q) entry of BᵀB.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for r in 0..m {
                    let bp = b.get(r, p);
                    let bq = b.get(r, q);
                    b.set(r, p, c * bp - s * bq);
                    b.set(r, q, s * bp + c * bq);
                }
                for r in 0..n {
                    let vp = v.get(r, p);
                    let vq = v.get(r, q);
                    v.set(r, p, c * vp - s * vq);
                    v.set(r, q, s * vp + c * vq);
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NonConvergence {
            op: "jacobi_svd",
            iterations: MAX_JACOBI_SWEEPS,
        });
    }

    // Extract singular values and left vectors.
    let mut s: Vec<f64> = (0..n).map(|j| norms::fro_norm(&b.col(j))).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| s[j].partial_cmp(&s[i]).unwrap_or(std::cmp::Ordering::Equal));

    let mut u = Matrix::zeros(m, n);
    let mut vperm = Matrix::zeros(n, n);
    let smax = order.first().map_or(0.0, |&i| s[i]);
    let tiny = smax * f64::EPSILON * (m.max(n) as f64);
    let mut new_s = vec![0.0; n];
    for (dst, &src) in order.iter().enumerate() {
        new_s[dst] = s[src];
        let col = b.col(src);
        if s[src] > tiny && s[src] > 0.0 {
            let inv = 1.0 / s[src];
            for r in 0..m {
                u.set(r, dst, col[r] * inv);
            }
        }
        for r in 0..n {
            vperm.set(r, dst, v.get(r, src));
        }
    }
    s = new_s;
    // Fill any null-space columns of U with an orthonormal completion so U
    // always has orthonormal columns.
    complete_orthonormal_cols(&mut u, &s, tiny);
    Ok(Svd { u, s, v: vperm })
}

/// Replaces (near-)zero columns of `u` (those with `s[j] <= tiny`) with unit
/// vectors orthogonal to all other columns (Gram–Schmidt against the basis).
fn complete_orthonormal_cols(u: &mut Matrix, s: &[f64], tiny: f64) {
    let (m, n) = u.shape();
    for j in 0..n {
        if s[j] > tiny && s[j] > 0.0 {
            continue;
        }
        // Try coordinate vectors until one survives orthogonalization.
        'candidates: for cand in 0..m {
            let mut col = vec![0.0; m];
            col[cand] = 1.0;
            for other in 0..n {
                if other == j {
                    continue;
                }
                let oc = u.col(other);
                let proj = norms::dot(&col, &oc);
                norms::axpy(-proj, &oc, &mut col);
            }
            let nrm = norms::fro_norm(&col);
            if nrm > 1e-6 {
                norms::scale(&mut col, 1.0 / nrm);
                u.set_col(j, &col);
                break 'candidates;
            }
        }
    }
}

/// Leading `k` left singular vectors of `a`, via the smaller Gram matrix.
///
/// * `rows ≤ cols`: eigenvectors of `A Aᵀ` (size `rows × rows`).
/// * `rows > cols`: eigenvectors of `Aᵀ A` give `V`; then `U = A V Σ⁻¹`,
///   re-orthonormalized to absorb round-off on small singular values.
///
/// This sacrifices half the floating-point precision relative to [`svd`]
/// (singular values are formed as square roots of eigenvalues), which is the
/// standard trade inside ALS loops where factor matrices only need to span
/// the right subspace.
pub fn leading_left_singular_vectors(a: &Matrix, k: usize) -> Result<Matrix> {
    let (m, n) = a.shape();
    let k = k.min(m.min(n));
    if k == 0 {
        return Ok(Matrix::zeros(m, 0));
    }
    if m <= n {
        // A Aᵀ (m × m): the threaded GEMM kernel wins once the product is
        // large; the symmetric scalar kernel wins on small inputs.
        let g = if 2 * m * m * n > (1 << 26) {
            matmul_t(a, a)
        } else {
            gram_t(a)
        };
        crate::eig::leading_eigvecs(&g, k)
    } else {
        let g = t_matmul(a, a); // Aᵀ A, n × n
        let eig = sym_eig(&g)?;
        // Build V_k (descending) and the corresponding σ.
        let mut vk = Matrix::zeros(n, k);
        let mut sigma = vec![0.0; k];
        for j in 0..k {
            let src = n - 1 - j;
            sigma[j] = eig.values[src].max(0.0).sqrt();
            for r in 0..n {
                vk.set(r, j, eig.vectors.get(r, src));
            }
        }
        let mut u = matmul(a, &vk);
        let smax = sigma.first().copied().unwrap_or(0.0);
        for j in 0..k {
            let inv = if sigma[j] > smax * 1e-12 && sigma[j] > 0.0 {
                1.0 / sigma[j]
            } else {
                0.0
            };
            for r in 0..m {
                let cur = u.get(r, j);
                u.set(r, j, cur * inv);
            }
        }
        // Repair any collapsed columns and enforce orthonormality.
        Ok(orthonormalize(&u))
    }
}

/// Leading `k` left singular vectors by **deterministic subspace
/// iteration** — the large-matrix alternative to the Gram-eigen route of
/// [`leading_left_singular_vectors`], costing `O(iters · m·n·(k+p))`
/// instead of `O(min(m,n)³)`.
///
/// The start basis is the `k+p` columns of `A` with the largest norms
/// (deterministic, no RNG); each iteration applies `A Aᵀ` with
/// re-orthonormalization. `iters` ≈ 6–10 suffices for ALS-style callers
/// that only need the right subspace.
pub fn leading_left_singular_vectors_subspace(
    a: &Matrix,
    k: usize,
    iters: usize,
) -> Result<Matrix> {
    let (m, n) = a.shape();
    let k = k.min(m.min(n));
    if k == 0 {
        return Ok(Matrix::zeros(m, 0));
    }
    let l = (k + 5).min(n).min(m);
    // Deterministic start: the l largest-norm columns of A.
    let mut by_norm: Vec<(usize, f64)> = (0..n)
        .map(|c| {
            let col = a.col(c);
            (c, crate::norms::norm_sq(&col))
        })
        .collect();
    by_norm.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut start = Matrix::zeros(m, l);
    for (j, &(c, _)) in by_norm.iter().take(l).enumerate() {
        let col = a.col(c);
        start.set_col(j, &col);
    }
    let mut q = orthonormalize(&start);
    for _ in 0..iters.max(1) {
        let z = orthonormalize(&t_matmul(a, &q)); // Aᵀ Q
        q = orthonormalize(&matmul(a, &z)); // A (AᵀQ)
    }
    // Rayleigh–Ritz: rotate Q to align with the singular directions and
    // order them by singular value.
    let b = t_matmul(&q, a); // l × n
    let inner = truncated_svd_gram(&b, k)?;
    Ok(matmul(&q, &inner.u))
}

/// Truncated SVD (leading `k` triplets) via the Gram route, with singular
/// values. Suitable for `k ≪ min(m, n)`; use [`svd`] + [`Svd::truncate`]
/// when full accuracy matters.
pub fn truncated_svd_gram(a: &Matrix, k: usize) -> Result<Svd> {
    let (m, n) = a.shape();
    let k = k.min(m.min(n));
    if k == 0 {
        return Ok(Svd {
            u: Matrix::zeros(m, 0),
            s: vec![],
            v: Matrix::zeros(n, 0),
        });
    }
    if m <= n {
        let g = gram_t(a);
        let eig = sym_eig(&g)?;
        let mut u = Matrix::zeros(m, k);
        let mut s = vec![0.0; k];
        for j in 0..k {
            let src = m - 1 - j;
            s[j] = eig.values[src].max(0.0).sqrt();
            for r in 0..m {
                u.set(r, j, eig.vectors.get(r, src));
            }
        }
        // V = Aᵀ U Σ⁻¹.
        let mut v = t_matmul(a, &u);
        let smax = s.first().copied().unwrap_or(0.0);
        for j in 0..k {
            let inv = if s[j] > smax * 1e-12 && s[j] > 0.0 {
                1.0 / s[j]
            } else {
                0.0
            };
            for r in 0..n {
                let cur = v.get(r, j);
                v.set(r, j, cur * inv);
            }
        }
        Ok(Svd { u, s, v })
    } else {
        let t = truncated_svd_gram(&a.transpose(), k)?;
        Ok(Svd {
            u: t.v,
            s: t.s,
            v: t.u,
        })
    }
}

/// Moore–Penrose pseudo-inverse via the thin SVD, with relative tolerance
/// `tol` on singular values (e.g. `1e-12`).
pub fn pinv(a: &Matrix, tol: f64) -> Result<Matrix> {
    let d = svd(a)?;
    let smax = d.s.first().copied().unwrap_or(0.0);
    let cutoff = smax * tol;
    let inv_s: Vec<f64> =
        d.s.iter()
            .map(|&x| if x > cutoff && x > 0.0 { 1.0 / x } else { 0.0 })
            .collect();
    // A⁺ = V Σ⁺ Uᵀ.
    let vs = scale_cols(&d.v, &inv_s);
    Ok(matmul(&vs, &d.u.transpose()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn check_svd(a: &Matrix, tol: f64) {
        let d = svd(a).unwrap();
        let t = a.rows().min(a.cols());
        assert_eq!(d.u.shape(), (a.rows(), t));
        assert_eq!(d.v.shape(), (a.cols(), t));
        assert_eq!(d.s.len(), t);
        for w in d.s.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-12,
                "singular values not sorted: {:?}",
                d.s
            );
        }
        assert!(d.s.iter().all(|&x| x >= 0.0));
        assert!(d.u.has_orthonormal_cols(1e-8), "U not orthonormal");
        assert!(d.v.has_orthonormal_cols(1e-8), "V not orthonormal");
        let rec = d.reconstruct();
        assert!(
            rec.approx_eq(a, tol),
            "SVD reconstruction failed, diff {}",
            rec.max_abs_diff(a)
        );
    }

    #[test]
    fn svd_known_diag() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let d = svd(&a).unwrap();
        assert!((d.s[0] - 3.0).abs() < 1e-12);
        assert!((d.s[1] - 2.0).abs() < 1e-12);
        assert!((d.s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn svd_shapes() {
        check_svd(&random(6, 6, 1), 1e-9);
        check_svd(&random(20, 5, 2), 1e-9);
        check_svd(&random(5, 20, 3), 1e-9);
        check_svd(&random(50, 50, 4), 1e-8);
        check_svd(&random(1, 1, 5), 1e-12);
        check_svd(&random(1, 7, 6), 1e-10);
        check_svd(&random(7, 1, 7), 1e-10);
    }

    #[test]
    fn svd_rank_deficient() {
        // Rank-2 matrix: outer products.
        let u = random(12, 2, 8);
        let v = random(9, 2, 9);
        let a = matmul(&u, &v.transpose());
        let d = svd(&a).unwrap();
        assert!(d.s[2] < 1e-10 * d.s[0]);
        assert_eq!(d.rank(1e-8), 2);
        assert!(d.reconstruct().approx_eq(&a, 1e-9));
        assert!(d.u.has_orthonormal_cols(1e-8));
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let d = svd(&a).unwrap();
        assert!(d.s.iter().all(|&x| x == 0.0));
        assert!(d.u.has_orthonormal_cols(1e-10));
        assert_eq!(d.rank(1e-12), 0);
    }

    #[test]
    fn svd_fro_norm_identity() {
        // Σ sᵢ² = ‖A‖_F².
        let a = random(15, 10, 10);
        let d = svd(&a).unwrap();
        let sum_sq: f64 = d.s.iter().map(|&x| x * x).sum();
        let fro2 = a.fro_norm().powi(2);
        assert!((sum_sq - fro2).abs() < 1e-9 * fro2);
    }

    #[test]
    fn truncate_keeps_best_approx() {
        let a = random(20, 15, 11);
        let d = svd(&a).unwrap();
        let d2 = d.truncate(5);
        assert_eq!(d2.u.shape(), (20, 5));
        assert_eq!(d2.s.len(), 5);
        // Error of rank-5 truncation = sqrt(Σ_{i>5} sᵢ²).
        let rec = d2.reconstruct();
        let err = rec.sub(&a).unwrap().fro_norm();
        let expected: f64 = d.s[5..].iter().map(|&x| x * x).sum::<f64>().sqrt();
        assert!((err - expected).abs() < 1e-8 * a.fro_norm());
    }

    #[test]
    fn leading_left_singular_vectors_span() {
        // Build a matrix with a known dominant left subspace.
        let u = crate::qr::orthonormalize(&random(30, 3, 12));
        let v = crate::qr::orthonormalize(&random(40, 3, 13));
        let s = Matrix::from_diag(&[100.0, 50.0, 25.0]);
        let a = matmul(&matmul(&u, &s), &v.transpose());
        for &wide in &[false, true] {
            let m = if wide { a.transpose() } else { a.clone() };
            let basis = leading_left_singular_vectors(&m, 3).unwrap();
            assert!(basis.has_orthonormal_cols(1e-8));
            let target = if wide { v.clone() } else { u.clone() };
            // Projection of target onto basis should have fro norm sqrt(3).
            let proj = t_matmul(&basis, &target);
            let pn = proj.fro_norm();
            assert!(
                (pn * pn - 3.0).abs() < 1e-6,
                "subspace not captured: {}",
                pn
            );
        }
    }

    #[test]
    fn subspace_route_captures_leading_subspace() {
        // Known dominant left subspace with a clear spectral gap.
        let u = crate::qr::orthonormalize(&random(80, 4, 40));
        let v = crate::qr::orthonormalize(&random(70, 4, 41));
        let s = Matrix::from_diag(&[50.0, 40.0, 30.0, 20.0]);
        let mut a = matmul(&matmul(&u, &s), &v.transpose());
        a.axpy(0.01, &random(80, 70, 42)).unwrap();
        let basis = leading_left_singular_vectors_subspace(&a, 4, 8).unwrap();
        assert!(basis.has_orthonormal_cols(1e-8));
        let proj = t_matmul(&basis, &u);
        let pn = proj.fro_norm();
        assert!((pn * pn - 4.0).abs() < 1e-3, "captured {}", pn * pn);
        // Degenerate cases.
        assert_eq!(
            leading_left_singular_vectors_subspace(&a, 0, 4)
                .unwrap()
                .cols(),
            0
        );
        let one = leading_left_singular_vectors_subspace(&a, 200, 4).unwrap();
        assert_eq!(one.cols(), 70);
    }

    #[test]
    fn subspace_route_matches_exact_on_small() {
        let a = random(30, 25, 43);
        let fast = leading_left_singular_vectors_subspace(&a, 5, 12).unwrap();
        let exact = svd(&a).unwrap();
        // Compare captured energy: ‖Uₖᵀ A‖ should match Σ σ².
        let cap_fast: f64 = {
            let p = t_matmul(&fast, &a);
            let n = p.fro_norm();
            n * n
        };
        let cap_exact: f64 = exact.s[..5].iter().map(|x| x * x).sum();
        assert!(
            (cap_fast - cap_exact).abs() < 1e-6 * cap_exact,
            "{cap_fast} vs {cap_exact}"
        );
    }

    #[test]
    fn truncated_svd_gram_matches_exact_leading_values() {
        let a = random(25, 18, 14);
        let exact = svd(&a).unwrap();
        let approx = truncated_svd_gram(&a, 6).unwrap();
        for j in 0..6 {
            assert!(
                (approx.s[j] - exact.s[j]).abs() < 1e-7 * exact.s[0],
                "σ_{j}: {} vs {}",
                approx.s[j],
                exact.s[j]
            );
        }
        assert!(approx.u.has_orthonormal_cols(1e-7));
        // Reconstruction error matches optimal rank-6 error.
        let rec = approx.reconstruct();
        let err = rec.sub(&a).unwrap().fro_norm();
        let expected: f64 = exact.s[6..].iter().map(|&x| x * x).sum::<f64>().sqrt();
        assert!((err - expected).abs() < 1e-6 * a.fro_norm());
    }

    #[test]
    fn truncated_svd_gram_wide() {
        let a = random(10, 40, 15);
        let exact = svd(&a).unwrap();
        let approx = truncated_svd_gram(&a, 4).unwrap();
        for j in 0..4 {
            assert!((approx.s[j] - exact.s[j]).abs() < 1e-7 * exact.s[0]);
        }
        assert_eq!(approx.u.shape(), (10, 4));
        assert_eq!(approx.v.shape(), (40, 4));
    }

    #[test]
    fn pinv_properties() {
        let a = random(10, 6, 16);
        let p = pinv(&a, 1e-12).unwrap();
        assert_eq!(p.shape(), (6, 10));
        // A A⁺ A = A.
        let apa = matmul(&matmul(&a, &p), &a);
        assert!(apa.approx_eq(&a, 1e-8));
        // A⁺ A A⁺ = A⁺.
        let pap = matmul(&matmul(&p, &a), &p);
        assert!(pap.approx_eq(&p, 1e-8));
    }

    #[test]
    fn pinv_of_singular_matrix() {
        let u = random(8, 2, 17);
        let v = random(8, 2, 18);
        let a = matmul(&u, &v.transpose());
        let p = pinv(&a, 1e-10).unwrap();
        let apa = matmul(&matmul(&a, &p), &a);
        assert!(apa.approx_eq(&a, 1e-8));
    }

    #[test]
    fn scale_cols_scales() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = scale_cols(&a, &[2.0, 0.5]);
        assert_eq!(b.as_slice(), &[2.0, 1.0, 6.0, 2.0]);
    }

    #[test]
    fn svd_empty_dims() {
        let d = svd(&Matrix::zeros(0, 5)).unwrap();
        assert!(d.s.is_empty());
        let d = svd(&Matrix::zeros(5, 0)).unwrap();
        assert!(d.s.is_empty());
    }
}
