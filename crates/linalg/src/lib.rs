//! # dtucker-linalg
//!
//! From-scratch dense linear algebra for the `dtucker` workspace.
//!
//! The offline crate set available to this project contains neither BLAS
//! bindings nor `ndarray`, so everything a Tucker decomposition needs is
//! implemented here, in safe Rust, with an eye on the operations D-Tucker is
//! actually bound by:
//!
//! * [`matrix::Matrix`] — dense row-major `f64` matrices;
//! * [`gemm`] — blocked, multi-threaded matrix products (`AB`, `AᵀB`, `ABᵀ`,
//!   Gram products);
//! * [`qr`] — Householder thin QR, orthonormalization, least squares;
//! * [`svd`] — accurate one-sided-Jacobi SVD plus Gram-matrix routes for
//!   truncated factors;
//! * [`eig`] — symmetric eigendecomposition (`tred2` + `tql2`);
//! * [`rsvd`] — randomized SVD (the D-Tucker approximation-phase kernel);
//! * [`lu`], [`cholesky`] — linear solves;
//! * [`kron`] — Kronecker / Khatri–Rao products;
//! * [`random`] — Gaussian test matrices (Marsaglia polar method);
//! * [`norms`] — overflow-safe norms and slice helpers.
//!
//! ## Example
//!
//! ```
//! use dtucker_linalg::{Matrix, gemm, svd};
//!
//! let a = Matrix::from_fn(8, 3, |r, c| (r * 3 + c) as f64);
//! let d = svd::svd(&a).unwrap();
//! let rec = d.reconstruct();
//! assert!(rec.approx_eq(&a, 1e-9));
//! let gram = gemm::t_matmul(&a, &a);
//! assert_eq!(gram.shape(), (3, 3));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
// Numerical kernels index several arrays with one loop counter; iterator
// rewrites would obscure the textbook algorithms without changing codegen.
#![allow(clippy::needless_range_loop)]

/// Cholesky factorization and SPD solves.
pub mod cholesky;
/// Symmetric eigendecomposition (tridiagonal QL).
pub mod eig;
/// Typed linear-algebra errors.
pub mod error;
/// Cache-blocked, packed, multi-threaded GEMM.
pub mod gemm;
/// Kronecker products and structured multiplies.
pub mod kron;
/// Partially pivoted LU factorization and solves.
pub mod lu;
/// The dense row-major `Matrix` type.
pub mod matrix;
/// Frobenius/spectral norms and stable accumulators.
pub mod norms;
/// Elementwise matrix arithmetic and operator overloads.
pub mod ops;
/// The shared worker pool driving all parallel kernels.
pub mod pool;
/// Householder QR factorization.
pub mod qr;
/// Column-pivoted QR (rank-revealing).
pub mod qrcp;
/// Seeded Gaussian test/sketch matrices.
pub mod random;
/// Randomized SVD (range finder + small SVD).
pub mod rsvd;
/// CSR sparse matrices and sparse-dense products.
pub mod sparse;
/// One-sided Jacobi SVD and truncated variants.
pub mod svd;
/// Golub–Reinsch bidiagonal SVD.
pub mod svd_gr;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use svd::Svd;
