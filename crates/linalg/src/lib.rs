//! # dtucker-linalg
//!
//! From-scratch dense linear algebra for the `dtucker` workspace.
//!
//! The offline crate set available to this project contains neither BLAS
//! bindings nor `ndarray`, so everything a Tucker decomposition needs is
//! implemented here, in safe Rust, with an eye on the operations D-Tucker is
//! actually bound by:
//!
//! * [`matrix::Matrix`] — dense row-major `f64` matrices;
//! * [`gemm`] — blocked, multi-threaded matrix products (`AB`, `AᵀB`, `ABᵀ`,
//!   Gram products);
//! * [`qr`] — Householder thin QR, orthonormalization, least squares;
//! * [`svd`] — accurate one-sided-Jacobi SVD plus Gram-matrix routes for
//!   truncated factors;
//! * [`eig`] — symmetric eigendecomposition (`tred2` + `tql2`);
//! * [`rsvd`] — randomized SVD (the D-Tucker approximation-phase kernel);
//! * [`lu`], [`cholesky`] — linear solves;
//! * [`kron`] — Kronecker / Khatri–Rao products;
//! * [`random`] — Gaussian test matrices (Marsaglia polar method);
//! * [`norms`] — overflow-safe norms and slice helpers.
//!
//! ## Example
//!
//! ```
//! use dtucker_linalg::{Matrix, gemm, svd};
//!
//! let a = Matrix::from_fn(8, 3, |r, c| (r * 3 + c) as f64);
//! let d = svd::svd(&a).unwrap();
//! let rec = d.reconstruct();
//! assert!(rec.approx_eq(&a, 1e-9));
//! let gram = gemm::t_matmul(&a, &a);
//! assert_eq!(gram.shape(), (3, 3));
//! ```

#![warn(missing_docs)]
// Numerical kernels index several arrays with one loop counter; iterator
// rewrites would obscure the textbook algorithms without changing codegen.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod eig;
pub mod error;
pub mod gemm;
pub mod kron;
pub mod lu;
pub mod matrix;
pub mod norms;
pub mod ops;
pub mod pool;
pub mod qr;
pub mod qrcp;
pub mod random;
pub mod rsvd;
pub mod sparse;
pub mod svd;
pub mod svd_gr;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use svd::Svd;
