//! Operator overloads for [`Matrix`](crate::matrix::Matrix).
//!
//! References compose (`&a + &b`, `&a * &b`, `-&a`, `&a * 2.0`) so chained
//! expressions never move operands. Shape mismatches panic with the same
//! contract as the underlying [`crate::gemm`] kernels (programming error,
//! like slice indexing).

use crate::gemm::matmul;
use crate::matrix::Matrix;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        // `std::ops` signatures cannot return Result; panicking on shape
        // mismatch is this module's documented contract (see the module
        // docs), identical to slice indexing.
        // dtucker-lint: allow(no-unwrap-in-lib)
        Matrix::add(self, rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        // Same documented panic-on-mismatch contract as `Add` above.
        // dtucker-lint: allow(no-unwrap-in-lib)
        Matrix::sub(self, rhs).expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        matmul(self, rhs)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        let mut out = self.clone();
        out.scale(rhs);
        out
    }
}

impl Mul<&Matrix> for f64 {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        rhs * self
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self * -1.0
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.as_slice()[r * self.cols() + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        let cols = self.cols();
        &mut self.as_mut_slice()[r * cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Matrix {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap()
    }

    #[test]
    fn add_sub_neg() {
        let m = a();
        let sum = &m + &m;
        assert_eq!(sum.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let zero = &m - &m;
        assert_eq!(zero.fro_norm(), 0.0);
        let neg = -&m;
        assert_eq!(neg.get(1, 1), -4.0);
    }

    #[test]
    fn mul_matrix_and_scalar() {
        let m = a();
        let id = Matrix::identity(2);
        assert_eq!((&m * &id), m);
        let scaled = &m * 2.0;
        assert_eq!(scaled.get(0, 1), 4.0);
        let scaled2 = 0.5 * &m;
        assert_eq!(scaled2.get(1, 0), 1.5);
    }

    #[test]
    fn indexing() {
        let mut m = a();
        assert_eq!(m[(0, 1)], 2.0);
        m[(0, 1)] = 9.0;
        assert_eq!(m.get(0, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_mismatch() {
        let _ = &a() + &Matrix::zeros(3, 3);
    }
}
