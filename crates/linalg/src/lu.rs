//! LU decomposition with partial pivoting, linear solves, inverse,
//! determinant.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// LU decomposition `P A = L U` of a square matrix, stored packed.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed `L` (unit lower, below diagonal) and `U` (upper incl. diagonal).
    lu: Matrix,
    /// Row permutation: `piv[i]` is the original row now in position `i`.
    piv: Vec<usize>,
    /// Sign of the permutation (±1), for determinants.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix. Returns an error when a pivot collapses to
    /// (numerical) zero, i.e. the matrix is singular.
    pub fn new(a: &Matrix) -> Result<Lu> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu",
                details: format!("matrix is {:?}, must be square", a.shape()),
            });
        }
        let mut lu = a.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut p = k;
            let mut best = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best <= scale * f64::EPSILON * n as f64 {
                return Err(LinalgError::Singular { op: "lu" });
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(p, c));
                    lu.set(p, c, tmp);
                }
                piv.swap(k, p);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let m = lu.get(r, k) / pivot;
                lu.set(r, k, m);
                if m != 0.0 {
                    for c in (k + 1)..n {
                        let cur = lu.get(r, c);
                        lu.set(r, c, cur - m * lu.get(k, c));
                    }
                }
            }
        }
        Ok(Lu { lu, piv, sign })
    }

    /// Solves `A x = b`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                details: format!("system size {n}, rhs length {}", b.len()),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        // Forward substitution (unit lower).
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.lu.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                details: format!("system size {n}, rhs has {} rows", b.rows()),
            });
        }
        let mut x = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = self.solve_vec(&b.col(c))?;
            x.set_col(c, &col);
        }
        Ok(x)
    }

    /// Matrix inverse.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.lu.rows()))
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu.get(i, i);
        }
        d
    }
}

/// One-shot solve `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve_vec(b)
}

/// One-shot inverse.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Lu::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0))
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_random_round_trip() {
        for n in [1, 2, 5, 20, 60] {
            let a = random(n, n as u64);
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let b = a.matvec(&x_true).unwrap();
            let x = solve(&a, &b).unwrap();
            for (got, want) in x.iter().zip(x_true.iter()) {
                assert!((got - want).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn inverse_round_trip() {
        let a = random(10, 3);
        let inv = inverse(&a).unwrap();
        assert!(matmul(&a, &inv).approx_eq(&Matrix::identity(10), 1e-9));
        assert!(matmul(&inv, &a).approx_eq(&Matrix::identity(10), 1e-9));
    }

    #[test]
    fn singular_detected() {
        let mut a = random(4, 4);
        // Make row 3 a copy of row 0.
        for c in 0..4 {
            let v = a.get(0, c);
            a.set(3, c, v);
        }
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn det_matches_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
        // Determinant of identity is 1.
        assert!((Lu::new(&Matrix::identity(5)).unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = random(6, 7);
        let x_true = random(6, 8);
        let b = matmul(&a, &x_true);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve_vec(&[1.0, 2.0]).is_err());
        assert!(lu.solve(&Matrix::zeros(2, 2)).is_err());
    }
}
