//! Random matrix helpers.
//!
//! The `rand` crate in the offline set does not ship a normal distribution
//! (that lives in `rand_distr`), so Gaussian variates are produced with the
//! Marsaglia polar method here.

use crate::matrix::Matrix;
use rand::Rng;

/// Draws a standard normal variate using the Marsaglia polar method.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u = rng.gen_range(-1.0f64..1.0);
        let v = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A `rows × cols` matrix of i.i.d. standard normal entries.
pub fn gaussian_matrix<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| gaussian(rng))
}

/// A `rows × cols` matrix of i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(lo..hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_matrix_shape_and_determinism() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = gaussian_matrix(4, 5, &mut rng1);
        let b = gaussian_matrix(4, 5, &mut rng2);
        assert_eq!(a.shape(), (4, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_matrix_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = uniform_matrix(10, 10, -2.0, 3.0, &mut rng);
        assert!(a.as_slice().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }
}
