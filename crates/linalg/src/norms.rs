//! Norms and low-level vector helpers shared across the crate.

/// Frobenius / Euclidean norm of a slice with overflow-safe scaling
/// (LAPACK `dnrm2`-style).
pub fn fro_norm(v: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &x in v {
        if x != 0.0 {
            let ax = x.abs();
            if scale < ax {
                ssq = 1.0 + ssq * (scale / ax).powi(2);
                scale = ax;
            } else {
                ssq += (ax / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Incremental state of the [`fro_norm`] computation.
///
/// Feeding elements one slice at a time produces **bit-identical** results
/// to a single [`fro_norm`] call over the concatenated data, because the
/// scaled accumulation is strictly sequential. Out-of-core readers use this
/// to compute the norm of a tensor file without loading it whole.
#[derive(Debug, Clone, Copy)]
pub struct FroNormAccumulator {
    scale: f64,
    ssq: f64,
}

impl Default for FroNormAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl FroNormAccumulator {
    /// Fresh accumulator (norm of zero elements is 0).
    pub fn new() -> Self {
        FroNormAccumulator {
            scale: 0.0,
            ssq: 1.0,
        }
    }

    /// Feeds one element.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if x != 0.0 {
            let ax = x.abs();
            if self.scale < ax {
                self.ssq = 1.0 + self.ssq * (self.scale / ax).powi(2);
                self.scale = ax;
            } else {
                self.ssq += (ax / self.scale).powi(2);
            }
        }
    }

    /// Feeds a slice of elements in order.
    pub fn push_slice(&mut self, v: &[f64]) {
        for &x in v {
            self.push(x);
        }
    }

    /// The norm accumulated so far.
    pub fn norm(&self) -> f64 {
        self.scale * self.ssq.sqrt()
    }

    /// The squared norm, computed exactly as `DenseTensor::fro_norm_sq`
    /// does (norm first, then squared — the round trip matters for bit
    /// identity).
    pub fn norm_sq(&self) -> f64 {
        let n = self.norm();
        n * n
    }
}

/// Squared Euclidean norm (plain accumulation; fine for well-scaled data).
#[inline]
pub fn norm_sq(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum()
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

/// `y += alpha * x` over slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Scales a slice in place.
#[inline]
pub fn scale(v: &mut [f64], s: f64) {
    for x in v {
        *x *= s;
    }
}

/// Estimates the spectral norm `σ₁(A)` with power iteration on `AᵀA`.
///
/// Deterministic start (all-ones, re-seeded with an index basis vector if
/// that lies in the null space); `iters` ≈ 20 gives a few digits, which is
/// all condition-number telemetry needs.
pub fn spectral_norm_est(a: &crate::matrix::Matrix, iters: usize) -> f64 {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return 0.0;
    }
    let mut v = vec![1.0f64; n];
    let mut sigma = 0.0f64;
    for it in 0..iters.max(1) {
        // `v` is constructed with length `n` and `av` with length `m`, so
        // these cannot mismatch; if the invariant ever broke, the best
        // available estimate is returned rather than panicking.
        let Ok(av) = a.matvec(&v) else {
            return sigma;
        };
        let Ok(atav) = a.t_matvec(&av) else {
            return sigma;
        };
        let norm = fro_norm(&atav);
        if norm == 0.0 {
            // Restart from a basis vector in case the start was unlucky.
            v.iter_mut().for_each(|x| *x = 0.0);
            v[it % n] = 1.0;
            continue;
        }
        sigma = fro_norm(&av);
        v = atav;
        let inv = 1.0 / norm;
        scale(&mut v, inv);
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fro_norm_matches_naive() {
        let v = [3.0, 4.0];
        assert!((fro_norm(&v) - 5.0).abs() < 1e-15);
        assert_eq!(fro_norm(&[]), 0.0);
        assert_eq!(fro_norm(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn fro_norm_resists_overflow() {
        let big = 1e200;
        let v = [big, big];
        let n = fro_norm(&v);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn fro_norm_resists_underflow() {
        let tiny = 1e-200;
        let v = [tiny, tiny];
        let n = fro_norm(&v);
        assert!(n > 0.0);
        assert!((n - tiny * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn spectral_norm_matches_svd() {
        use crate::matrix::Matrix;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let a = Matrix::from_fn(15, 11, |_, _| rng.gen_range(-1.0..1.0));
        let est = spectral_norm_est(&a, 60);
        let exact = crate::svd::svd(&a).unwrap().s[0];
        assert!((est - exact).abs() < 1e-6 * exact, "{est} vs {exact}");
        // Degenerate inputs.
        assert_eq!(spectral_norm_est(&Matrix::zeros(0, 3), 5), 0.0);
        assert_eq!(spectral_norm_est(&Matrix::zeros(4, 4), 5), 0.0);
        // Diagonal case.
        let d = Matrix::from_diag(&[2.0, 7.0, 1.0]);
        assert!((spectral_norm_est(&d, 60) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn accumulator_matches_fro_norm_bitwise() {
        let v: Vec<f64> = (0..257)
            .map(|i| ((i as f64) * 0.7311 - 90.0) * 1e3)
            .collect();
        // Any chunking must reproduce the one-shot norm exactly.
        for chunk in [1usize, 3, 64, 257] {
            let mut acc = FroNormAccumulator::new();
            for c in v.chunks(chunk) {
                acc.push_slice(c);
            }
            assert_eq!(acc.norm().to_bits(), fro_norm(&v).to_bits());
        }
        let empty = FroNormAccumulator::new();
        assert_eq!(empty.norm(), 0.0);
        assert_eq!(empty.norm_sq(), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        let mut y = [1.0, 1.0, 1.0];
        axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        let mut s = [2.0, 4.0];
        scale(&mut s, 0.5);
        assert_eq!(s, [1.0, 2.0]);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
    }
}
