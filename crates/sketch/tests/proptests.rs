//! Property-based tests for the sketching substrate.

use dtucker_sketch::fft::{circular_convolve, fft, ifft};
use dtucker_sketch::{CountSketch, TensorSketch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_ifft_round_trip_any_length(
        re in proptest::collection::vec(-100.0f64..100.0, 1..64),
        im in proptest::collection::vec(-100.0f64..100.0, 1..64),
    ) {
        let n = re.len().min(im.len());
        let (re, im) = (&re[..n], &im[..n]);
        let mut fr = re.to_vec();
        let mut fi = im.to_vec();
        fft(&mut fr, &mut fi);
        ifft(&mut fr, &mut fi);
        for k in 0..n {
            prop_assert!((fr[k] - re[k]).abs() < 1e-8 * (1.0 + re[k].abs()));
            prop_assert!((fi[k] - im[k]).abs() < 1e-8 * (1.0 + im[k].abs()));
        }
    }

    #[test]
    fn fft_is_linear(
        a in proptest::collection::vec(-10.0f64..10.0, 8),
        b in proptest::collection::vec(-10.0f64..10.0, 8),
        alpha in -3.0f64..3.0,
    ) {
        // FFT(αa + b) = α FFT(a) + FFT(b).
        let mix: Vec<f64> = a.iter().zip(b.iter()).map(|(&x, &y)| alpha * x + y).collect();
        let run = |v: &[f64]| {
            let mut re = v.to_vec();
            let mut im = vec![0.0; v.len()];
            fft(&mut re, &mut im);
            (re, im)
        };
        let (mr, mi) = run(&mix);
        let (ar, ai) = run(&a);
        let (br, bi) = run(&b);
        for k in 0..8 {
            prop_assert!((mr[k] - (alpha * ar[k] + br[k])).abs() < 1e-9 * (1.0 + mr[k].abs()));
            prop_assert!((mi[k] - (alpha * ai[k] + bi[k])).abs() < 1e-9 * (1.0 + mi[k].abs()));
        }
    }

    #[test]
    fn convolution_commutes(
        a in proptest::collection::vec(-5.0f64..5.0, 1..24),
        seed in any::<u64>(),
    ) {
        let n = a.len();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) + (seed % 7) as f64).sin()).collect();
        let ab = circular_convolve(&a, &b);
        let ba = circular_convolve(&b, &a);
        for k in 0..n {
            prop_assert!((ab[k] - ba[k]).abs() < 1e-8 * (1.0 + ab[k].abs()));
        }
    }

    #[test]
    fn countsketch_is_linear(
        x in proptest::collection::vec(-10.0f64..10.0, 16),
        y in proptest::collection::vec(-10.0f64..10.0, 16),
        seed in any::<u64>(),
    ) {
        let cs = CountSketch::new(16, 8, seed);
        let sum: Vec<f64> = x.iter().zip(y.iter()).map(|(&a, &b)| a + b).collect();
        let s_sum = cs.apply_vec(&sum);
        let sx = cs.apply_vec(&x);
        let sy = cs.apply_vec(&y);
        for k in 0..8 {
            prop_assert!((s_sum[k] - sx[k] - sy[k]).abs() < 1e-10);
        }
    }

    #[test]
    fn tensorsketch_fft_identity(
        x in proptest::collection::vec(-5.0f64..5.0, 4),
        y in proptest::collection::vec(-5.0f64..5.0, 3),
        seed in any::<u64>(),
        m in 4usize..16,
    ) {
        let ts = TensorSketch::new(&[4, 3], m, seed);
        let fast = ts.sketch_kron_vec(&[&x, &y]);
        // Direct definition over the Kronecker product.
        let mut slow = vec![0.0; m];
        for j in 0..3 {
            for i in 0..4 {
                slow[ts.bucket(&[i, j])] += ts.sign(&[i, j]) * x[i] * y[j];
            }
        }
        for t in 0..m {
            prop_assert!((fast[t] - slow[t]).abs() < 1e-8 * (1.0 + slow[t].abs()));
        }
    }
}
