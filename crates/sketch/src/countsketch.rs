//! CountSketch: a random sparse projection `S ∈ R^{m×n}` with one ±1 entry
//! per column, applied in `O(nnz)` time.

use dtucker_linalg::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A CountSketch operator for vectors of length `n`, sketching to length
/// `m`: `(Sx)[h(i)] += s(i)·x[i]`.
#[derive(Debug, Clone)]
pub struct CountSketch {
    /// Bucket for every input coordinate.
    hash: Vec<usize>,
    /// Sign (±1) for every input coordinate.
    sign: Vec<f64>,
    m: usize,
}

impl CountSketch {
    /// Draws a CountSketch for input dimension `n` and sketch dimension `m`,
    /// seeded deterministically.
    pub fn new(n: usize, m: usize, seed: u64) -> Self {
        assert!(m > 0, "sketch dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let hash = (0..n).map(|_| rng.gen_range(0..m)).collect();
        let sign = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        CountSketch { hash, sign, m }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.hash.len()
    }

    /// Sketch dimension.
    pub fn sketch_dim(&self) -> usize {
        self.m
    }

    /// Bucket of coordinate `i`.
    #[inline]
    pub fn bucket(&self, i: usize) -> usize {
        self.hash[i]
    }

    /// Sign of coordinate `i`.
    #[inline]
    pub fn sign(&self, i: usize) -> f64 {
        self.sign[i]
    }

    /// Applies the sketch to a vector: returns `Sx` of length `m`.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.input_dim());
        let mut out = vec![0.0; self.m];
        for ((&h, &s), &v) in self.hash.iter().zip(self.sign.iter()).zip(x.iter()) {
            out[h] += s * v;
        }
        out
    }

    /// Applies the sketch to every **column** of `a` (`n × c`), returning
    /// the `m × c` sketched matrix `SA`.
    pub fn apply_cols(&self, a: &Matrix) -> Matrix {
        debug_assert_eq!(a.rows(), self.input_dim());
        let c = a.cols();
        let mut out = Matrix::zeros(self.m, c);
        for i in 0..a.rows() {
            let h = self.hash[i];
            let s = self.sign[i];
            let arow = a.row(i);
            let orow = out.row_mut(h);
            for (o, &v) in orow.iter_mut().zip(arow.iter()) {
                *o += s * v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_preserves_norm_in_expectation() {
        // E[‖Sx‖²] = ‖x‖²; average over many sketches. The estimator's
        // variance is ≈ 2‖x‖⁴/m, so 1000 trials pin the mean within a few
        // percent with overwhelming probability.
        let n = 50;
        let m = 64;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let exact: f64 = x.iter().map(|a| a * a).sum();
        let trials = 1000;
        let mut acc = 0.0;
        for t in 0..trials {
            let cs = CountSketch::new(n, m, t);
            let sx = cs.apply_vec(&x);
            acc += sx.iter().map(|a| a * a).sum::<f64>();
        }
        let mean = acc / trials as f64;
        assert!((mean - exact).abs() < 0.05 * exact, "{mean} vs {exact}");
    }

    #[test]
    fn apply_cols_matches_apply_vec() {
        let n = 20;
        let cs = CountSketch::new(n, 8, 3);
        let a = Matrix::from_fn(n, 4, |r, c| (r * 4 + c) as f64 * 0.1);
        let sa = cs.apply_cols(&a);
        assert_eq!(sa.shape(), (8, 4));
        for c in 0..4 {
            let col = a.col(c);
            let sv = cs.apply_vec(&col);
            for r in 0..8 {
                assert!((sa.get(r, c) - sv[r]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CountSketch::new(10, 4, 7);
        let b = CountSketch::new(10, 4, 7);
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.sign, b.sign);
        let c = CountSketch::new(10, 4, 8);
        assert!(a.hash != c.hash || a.sign != c.sign);
    }

    #[test]
    fn sketch_is_linear() {
        let cs = CountSketch::new(6, 4, 1);
        let x = [1.0, -2.0, 3.0, 0.0, 0.5, -1.0];
        let y = [0.5, 1.0, -1.0, 2.0, 0.0, 3.0];
        let sum: Vec<f64> = x.iter().zip(y.iter()).map(|(a, b)| a + b).collect();
        let s_sum = cs.apply_vec(&sum);
        let sx = cs.apply_vec(&x);
        let sy = cs.apply_vec(&y);
        for k in 0..4 {
            assert!((s_sum[k] - sx[k] - sy[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn dims_accessors() {
        let cs = CountSketch::new(9, 5, 0);
        assert_eq!(cs.input_dim(), 9);
        assert_eq!(cs.sketch_dim(), 5);
        for i in 0..9 {
            assert!(cs.bucket(i) < 5);
            assert!(cs.sign(i) == 1.0 || cs.sign(i) == -1.0);
        }
    }
}
