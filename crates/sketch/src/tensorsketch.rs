//! TensorSketch (Pagh 2013; Pham & Pagh 2013): a CountSketch of a Kronecker
//! product, computable **without forming the product**.
//!
//! For `x = x₁ ⊗ x₂ ⊗ … ⊗ x_d`, the TensorSketch built from per-factor
//! CountSketches `(h_k, s_k)` hashes the multi-index `(i₁,…,i_d)` to
//! `Σ h_k(i_k) mod m` with sign `Π s_k(i_k)`, and satisfies
//!
//! `TS(x) = ifft( Π_k fft(CS_k x_k) )` (pointwise product).
//!
//! This is the backbone of the Tucker-ts / Tucker-ttmts baselines.

use crate::countsketch::CountSketch;
use crate::fft::{fft, ifft};
use dtucker_linalg::matrix::Matrix;

/// TensorSketch operator over `d` factor dimensions.
#[derive(Debug, Clone)]
pub struct TensorSketch {
    sketches: Vec<CountSketch>,
    m: usize,
}

impl TensorSketch {
    /// Draws a TensorSketch for factor input dimensions `dims`, sketching to
    /// dimension `m`. Component seeds are derived from `seed`.
    pub fn new(dims: &[usize], m: usize, seed: u64) -> Self {
        assert!(m > 0, "sketch dimension must be positive");
        let sketches = dims
            .iter()
            .enumerate()
            .map(|(k, &n)| CountSketch::new(n, m, seed ^ ((k as u64 + 1) * 0x9E37_79B9)))
            .collect();
        TensorSketch { sketches, m }
    }

    /// Sketch dimension `m`.
    pub fn sketch_dim(&self) -> usize {
        self.m
    }

    /// Number of factor dimensions.
    pub fn num_factors(&self) -> usize {
        self.sketches.len()
    }

    /// The per-factor CountSketches.
    pub fn components(&self) -> &[CountSketch] {
        &self.sketches
    }

    /// Combined bucket of a multi-index (`Σ h_k(i_k) mod m`).
    #[inline]
    pub fn bucket(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.sketches.len());
        let mut h = 0usize;
        for (cs, &i) in self.sketches.iter().zip(idx.iter()) {
            h += cs.bucket(i);
        }
        h % self.m
    }

    /// Combined sign of a multi-index (`Π s_k(i_k)`).
    #[inline]
    pub fn sign(&self, idx: &[usize]) -> f64 {
        let mut s = 1.0;
        for (cs, &i) in self.sketches.iter().zip(idx.iter()) {
            s *= cs.sign(i);
        }
        s
    }

    /// Sketches an explicit Kronecker vector `x₁ ⊗ … ⊗ x_d` via the FFT
    /// identity in `O(Σ n_k + d·m log m)` time.
    pub fn sketch_kron_vec(&self, factors: &[&[f64]]) -> Vec<f64> {
        assert_eq!(factors.len(), self.sketches.len(), "factor count mismatch");
        let m = self.m;
        let mut acc_re = vec![0.0f64; m];
        let mut acc_im = vec![0.0f64; m];
        for (k, (cs, x)) in self.sketches.iter().zip(factors.iter()).enumerate() {
            let mut re = cs.apply_vec(x);
            let mut im = vec![0.0; m];
            fft(&mut re, &mut im);
            if k == 0 {
                acc_re = re;
                acc_im = im;
            } else {
                for t in 0..m {
                    let r = acc_re[t] * re[t] - acc_im[t] * im[t];
                    let i = acc_re[t] * im[t] + acc_im[t] * re[t];
                    acc_re[t] = r;
                    acc_im[t] = i;
                }
            }
        }
        ifft(&mut acc_re, &mut acc_im);
        acc_re
    }

    /// Sketches every column of the Kronecker product `A₁ ⊗ A₂ ⊗ … ⊗ A_d`
    /// (column counts multiply), returning an `m × Π c_k` matrix whose
    /// column multi-index runs with **k = 0 fastest** — matching the
    /// Kolda-convention column ordering used by `dtucker_tensor::unfold`.
    pub fn sketch_kron_cols(&self, mats: &[&Matrix]) -> Matrix {
        assert_eq!(mats.len(), self.sketches.len(), "factor count mismatch");
        let m = self.m;
        // Pre-FFT every factor's sketched columns.
        let mut ffts: Vec<Vec<(Vec<f64>, Vec<f64>)>> = Vec::with_capacity(mats.len());
        for (cs, a) in self.sketches.iter().zip(mats.iter()) {
            let sa = cs.apply_cols(a);
            let mut per_col = Vec::with_capacity(a.cols());
            for c in 0..a.cols() {
                let mut re = sa.col(c);
                let mut im = vec![0.0; m];
                fft(&mut re, &mut im);
                per_col.push((re, im));
            }
            ffts.push(per_col);
        }
        let total: usize = mats.iter().map(|a| a.cols()).product();
        let mut out = Matrix::zeros(m, total);
        let mut idx = vec![0usize; mats.len()];
        for col in 0..total {
            let mut re = ffts[0][idx[0]].0.clone();
            let mut im = ffts[0][idx[0]].1.clone();
            for k in 1..mats.len() {
                let (fr, fi) = &ffts[k][idx[k]];
                for t in 0..m {
                    let r = re[t] * fr[t] - im[t] * fi[t];
                    let i = re[t] * fi[t] + im[t] * fr[t];
                    re[t] = r;
                    im[t] = i;
                }
            }
            ifft(&mut re, &mut im);
            for t in 0..m {
                out.set(t, col, re[t]);
            }
            // Advance multi-index, first factor fastest.
            for k in 0..mats.len() {
                idx[k] += 1;
                if idx[k] < mats[k].cols() {
                    break;
                }
                idx[k] = 0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct sketch of a dense Kronecker vector using bucket/sign.
    fn direct_sketch(ts: &TensorSketch, factors: &[&[f64]]) -> Vec<f64> {
        let mut out = vec![0.0; ts.sketch_dim()];
        let dims: Vec<usize> = factors.iter().map(|f| f.len()).collect();
        let total: usize = dims.iter().product();
        let mut idx = vec![0usize; dims.len()];
        for _ in 0..total {
            let v: f64 = idx.iter().zip(factors.iter()).map(|(&i, f)| f[i]).product();
            out[ts.bucket(&idx)] += ts.sign(&idx) * v;
            for k in 0..dims.len() {
                idx[k] += 1;
                if idx[k] < dims[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        out
    }

    #[test]
    fn fft_route_matches_direct_definition() {
        let x1: Vec<f64> = (0..5).map(|i| i as f64 * 0.3 - 0.7).collect();
        let x2: Vec<f64> = (0..4).map(|i| (i as f64).cos()).collect();
        let x3: Vec<f64> = (0..3).map(|i| (i as f64 + 1.0).recip()).collect();
        for &m in &[8usize, 7, 16] {
            let ts = TensorSketch::new(&[5, 4, 3], m, 11);
            let fast = ts.sketch_kron_vec(&[&x1, &x2, &x3]);
            let slow = direct_sketch(&ts, &[&x1, &x2, &x3]);
            for t in 0..m {
                assert!((fast[t] - slow[t]).abs() < 1e-9, "m={m} t={t}");
            }
        }
    }

    #[test]
    fn sketch_kron_cols_matches_vector_route() {
        let a = Matrix::from_fn(4, 2, |r, c| (r + c) as f64 * 0.2);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64 * 0.1 - 0.3);
        let ts = TensorSketch::new(&[4, 3], 8, 5);
        let all = ts.sketch_kron_cols(&[&a, &b]);
        assert_eq!(all.shape(), (8, 4));
        // Column ordering: first factor fastest → col = ja + 2*jb? No:
        // idx[0] is a's column, advancing fastest.
        for jb in 0..2 {
            for ja in 0..2 {
                let col = ja + 2 * jb;
                let v = ts.sketch_kron_vec(&[&a.col(ja), &b.col(jb)]);
                for t in 0..8 {
                    assert!((all.get(t, col) - v[t]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn sketch_preserves_norm_in_expectation() {
        let x1: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7).sin()).collect();
        let x2: Vec<f64> = (0..5).map(|i| (i as f64 * 0.3).cos()).collect();
        let exact: f64 =
            x1.iter().map(|v| v * v).sum::<f64>() * x2.iter().map(|v| v * v).sum::<f64>();
        let trials = 400;
        let m = 32;
        let mut acc = 0.0;
        for t in 0..trials {
            let ts = TensorSketch::new(&[6, 5], m, t);
            let s = ts.sketch_kron_vec(&[&x1, &x2]);
            acc += s.iter().map(|v| v * v).sum::<f64>();
        }
        let mean = acc / trials as f64;
        assert!((mean - exact).abs() < 0.2 * exact, "{mean} vs {exact}");
    }

    #[test]
    fn accessors() {
        let ts = TensorSketch::new(&[3, 4], 8, 1);
        assert_eq!(ts.sketch_dim(), 8);
        assert_eq!(ts.num_factors(), 2);
        assert_eq!(ts.components().len(), 2);
        assert!(ts.bucket(&[2, 3]) < 8);
    }
}
