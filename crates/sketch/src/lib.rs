//! # dtucker-sketch
//!
//! Sketching substrate for the TensorSketch-based Tucker baselines
//! (Tucker-ts / Tucker-ttmts, Malik & Becker 2018):
//!
//! * [`fft`] — complex FFT (radix-2 + Bluestein) and circular convolution;
//! * [`countsketch::CountSketch`] — the `O(nnz)` sparse random projection;
//! * [`tensorsketch::TensorSketch`] — CountSketch of a Kronecker product
//!   without forming the product.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

/// CountSketch projections (hash + sign).
pub mod countsketch;
/// Radix-2 FFT for fast sketch convolution.
pub mod fft;
/// TensorSketch of Kronecker-structured matrices.
pub mod tensorsketch;

pub use countsketch::CountSketch;
pub use tensorsketch::TensorSketch;
