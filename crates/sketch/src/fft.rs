//! Complex FFT: iterative radix-2 Cooley–Tukey with a Bluestein fallback
//! for arbitrary lengths.
//!
//! TensorSketch needs circular convolutions of sketch-length vectors; the
//! sketch length is caller-chosen, so both power-of-two and general lengths
//! are supported.

use std::f64::consts::PI;

/// In-place radix-2 FFT of `(re, im)`. Length must be a power of two.
fn fft_pow2(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(im.len(), n);
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr0, vi0) = (re[i + k + len / 2], im[i + k + len / 2]);
                let vr = vr0 * cr - vi0 * ci;
                let vi = vr0 * ci + vi0 * cr;
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Forward FFT, any length (Bluestein for non-powers-of-two).
pub fn fft(re: &mut [f64], im: &mut [f64]) {
    transform(re, im, false);
}

/// Inverse FFT (including the `1/n` normalization), any length.
pub fn ifft(re: &mut [f64], im: &mut [f64]) {
    transform(re, im, true);
    let n = re.len().max(1) as f64;
    for v in re.iter_mut() {
        *v /= n;
    }
    for v in im.iter_mut() {
        *v /= n;
    }
}

fn transform(re: &mut [f64], im: &mut [f64], inverse: bool) {
    assert_eq!(re.len(), im.len(), "fft: re/im length mismatch");
    let n = re.len();
    if n == 0 {
        return;
    }
    if n.is_power_of_two() {
        fft_pow2(re, im, inverse);
    } else {
        bluestein(re, im, inverse);
    }
}

/// Bluestein's algorithm: length-n DFT as a circular convolution of length
/// `m = next_pow2(2n+1)`.
fn bluestein(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = exp(sign * i π k² / n).
    let mut cos_t = vec![0.0f64; n];
    let mut sin_t = vec![0.0f64; n];
    for k in 0..n {
        // k² mod 2n avoids precision loss for large k.
        let ksq = (k as u128 * k as u128 % (2 * n as u128)) as f64;
        let ang = sign * PI * ksq / n as f64;
        cos_t[k] = ang.cos();
        sin_t[k] = ang.sin();
    }
    let m = (2 * n + 1).next_power_of_two();
    // a = x * chirp.
    let mut ar = vec![0.0f64; m];
    let mut ai = vec![0.0f64; m];
    for k in 0..n {
        ar[k] = re[k] * cos_t[k] - im[k] * sin_t[k];
        ai[k] = re[k] * sin_t[k] + im[k] * cos_t[k];
    }
    // b = conj chirp, periodically extended.
    let mut br = vec![0.0f64; m];
    let mut bi = vec![0.0f64; m];
    br[0] = cos_t[0];
    bi[0] = -sin_t[0];
    for k in 1..n {
        br[k] = cos_t[k];
        bi[k] = -sin_t[k];
        br[m - k] = cos_t[k];
        bi[m - k] = -sin_t[k];
    }
    // Convolve via power-of-two FFTs.
    fft_pow2(&mut ar, &mut ai, false);
    fft_pow2(&mut br, &mut bi, false);
    for k in 0..m {
        let r = ar[k] * br[k] - ai[k] * bi[k];
        let i = ar[k] * bi[k] + ai[k] * br[k];
        ar[k] = r;
        ai[k] = i;
    }
    fft_pow2(&mut ar, &mut ai, true);
    let inv_m = 1.0 / m as f64;
    for k in 0..n {
        let (cr, ci) = (ar[k] * inv_m, ai[k] * inv_m);
        re[k] = cr * cos_t[k] - ci * sin_t[k];
        im[k] = cr * sin_t[k] + ci * cos_t[k];
    }
}

/// Circular convolution of two real vectors of equal length, via FFT.
pub fn circular_convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "circular_convolve: length mismatch");
    let n = a.len();
    if n == 0 {
        return vec![];
    }
    let mut ar = a.to_vec();
    let mut ai = vec![0.0; n];
    let mut br = b.to_vec();
    let mut bi = vec![0.0; n];
    fft(&mut ar, &mut ai);
    fft(&mut br, &mut bi);
    for k in 0..n {
        let r = ar[k] * br[k] - ai[k] * bi[k];
        let i = ar[k] * bi[k] + ai[k] * br[k];
        ar[k] = r;
        ai[k] = i;
    }
    ifft(&mut ar, &mut ai);
    ar
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(re: &[f64], im: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut or_ = vec![0.0; n];
        let mut oi = vec![0.0; n];
        for k in 0..n {
            for t in 0..n {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                or_[k] += re[t] * ang.cos() - im[t] * ang.sin();
                oi[k] += re[t] * ang.sin() + im[t] * ang.cos();
            }
        }
        (or_, oi)
    }

    fn check_against_naive(n: usize, seed: u64) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let re: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let im: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (er, ei) = naive_dft(&re, &im);
        let mut fr = re.clone();
        let mut fi = im.clone();
        fft(&mut fr, &mut fi);
        for k in 0..n {
            assert!(
                (fr[k] - er[k]).abs() < 1e-8,
                "n={n} k={k}: {} vs {}",
                fr[k],
                er[k]
            );
            assert!((fi[k] - ei[k]).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_matches_naive_pow2() {
        for &n in &[1, 2, 4, 8, 16, 64] {
            check_against_naive(n, n as u64);
        }
    }

    #[test]
    fn fft_matches_naive_general() {
        for &n in &[3, 5, 6, 7, 12, 15, 100] {
            check_against_naive(n, n as u64 + 1000);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for &n in &[4usize, 7, 32, 45] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let re: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let im: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut fr = re.clone();
            let mut fi = im.clone();
            fft(&mut fr, &mut fi);
            ifft(&mut fr, &mut fi);
            for k in 0..n {
                assert!((fr[k] - re[k]).abs() < 1e-10, "n={n}");
                assert!((fi[k] - im[k]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn fft_known_impulse() {
        // FFT of a delta is all-ones.
        let mut re = vec![1.0, 0.0, 0.0, 0.0];
        let mut im = vec![0.0; 4];
        fft(&mut re, &mut im);
        for k in 0..4 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn circular_convolution_matches_naive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        for &n in &[1usize, 4, 5, 9, 16] {
            let mut rng = StdRng::seed_from_u64(n as u64 + 7);
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let fast = circular_convolve(&a, &b);
            for k in 0..n {
                let mut acc = 0.0;
                for t in 0..n {
                    acc += a[t] * b[(k + n - t % n) % n];
                }
                assert!((fast[k] - acc).abs() < 1e-9, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn empty_and_unit_inputs() {
        let mut re: Vec<f64> = vec![];
        let mut im: Vec<f64> = vec![];
        fft(&mut re, &mut im);
        ifft(&mut re, &mut im);
        assert!(circular_convolve(&[], &[]).is_empty());
        let c = circular_convolve(&[3.0], &[2.0]);
        assert!((c[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn parsevals_theorem() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let n = 64usize;
        let mut rng = StdRng::seed_from_u64(42);
        let re: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut fr = re.clone();
        let mut fi = vec![0.0; n];
        fft(&mut fr, &mut fi);
        let time_energy: f64 = re.iter().map(|&x| x * x).sum();
        let freq_energy: f64 = fr
            .iter()
            .zip(fi.iter())
            .map(|(&r, &i)| r * r + i * i)
            .sum::<f64>()
            / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }
}
