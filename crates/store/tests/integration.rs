//! End-to-end tests of the out-of-core + checkpoint/resume pipeline:
//! decompositions computed from a `.dten` file through [`DtenSliceSource`]
//! must be bit-for-bit identical to the in-memory path, and a run killed
//! mid-iteration must resume to the exact factors of an uninterrupted run.

use dtucker_core::{DTucker, DTuckerConfig, SliceSource, SlicedTensor};
use dtucker_linalg::Matrix;
use dtucker_store::{self as store, DtenSliceSource, HooiCheckpoint};
use dtucker_tensor::random::low_rank_plus_noise;
use dtucker_tensor::{io, DenseTensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("dtucker_store_integration")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn test_tensor(shape: &[usize], seed: u64) -> DenseTensor {
    let ranks: Vec<usize> = shape.iter().map(|&d| d.min(3)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    low_rank_plus_noise(shape, &ranks, 0.1, &mut rng).unwrap()
}

fn factor_bits(core: &DenseTensor, factors: &[Matrix]) -> Vec<u64> {
    let mut bits: Vec<u64> = core.as_slice().iter().map(|v| v.to_bits()).collect();
    for f in factors {
        bits.extend(f.as_slice().iter().map(|v| v.to_bits()));
    }
    bits
}

/// Decomposing straight from disk — never materializing the dense tensor —
/// matches the in-memory run bit for bit, at several chunk sizes.
#[test]
fn ondisk_decomposition_is_bit_identical_to_inmemory() {
    let dir = tmpdir("ondisk");
    let x = test_tensor(&[14, 11, 9], 42);
    let dten = dir.join("x.dten");
    io::save(&x, &dten).unwrap();

    let base_cfg = DTuckerConfig::uniform(3, 3).with_seed(7);
    let reference = DTucker::new(base_cfg.clone()).decompose(&x).unwrap();
    let ref_bits = factor_bits(
        &reference.decomposition.core,
        &reference.decomposition.factors,
    );

    for chunk in [1, 2, 4, 100] {
        let cfg = base_cfg.clone().with_chunk_slices(chunk);
        let mut src = DtenSliceSource::open(&dten).unwrap();
        let st = SlicedTensor::compress_source(&mut src, &cfg).unwrap();
        let out = DTucker::new(cfg).decompose_sliced(&st).unwrap();
        assert_eq!(
            factor_bits(&out.decomposition.core, &out.decomposition.factors),
            ref_bits,
            "chunk={chunk} diverged from in-memory decomposition"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Full kill/resume cycle through the artifact store: checkpoints written
/// by the sweep hook survive a simulated crash, and resuming from the
/// loaded checkpoint reproduces the uninterrupted run exactly.
#[test]
fn killed_run_resumes_through_store_bit_identical() {
    let dir = tmpdir("kill_resume");
    let x = test_tensor(&[12, 10, 8], 3);

    let mut cfg = DTuckerConfig::uniform(3, 3).with_seed(11);
    cfg.tolerance = 0.0; // never converge: run the full sweep budget
    cfg.max_iters = 5;
    let solver = DTucker::new(cfg.clone());

    let mut src = dtucker_core::InMemorySource::new(&x).unwrap();
    let st = SlicedTensor::compress_source(&mut src, &cfg).unwrap();
    store::write_sliced(dir.join("x.dts"), &st).unwrap();

    // Reference: uninterrupted run.
    let reference = solver.decompose_sliced(&st).unwrap();
    assert_eq!(reference.trace.iterations(), 5);

    // Crash at sweep 2, but only after the checkpoint hit disk.
    let ck_path = dir.join("ck.dts");
    let crashed = solver.decompose_sliced_resumable(&st, None, &mut |snap| {
        let ck = HooiCheckpoint::from_snapshot(&snap, &st, &cfg);
        store::write_checkpoint(&ck_path, &ck).map_err(|e| {
            dtucker_core::CoreError::InvalidConfig {
                details: e.to_string(),
            }
        })?;
        if snap.sweep == 2 {
            return Err(dtucker_core::CoreError::InvalidConfig {
                details: "simulated kill".into(),
            });
        }
        Ok(())
    });
    assert!(crashed.is_err());

    // A fresh process: everything reloaded from disk.
    let st2 = store::read_sliced(dir.join("x.dts")).unwrap();
    let ck = store::read_checkpoint(&ck_path).unwrap();
    assert_eq!(ck.sweep, 2);
    ck.validate_against(&st2, &cfg).unwrap();
    let resumed = solver
        .decompose_sliced_resumable(&st2, Some(ck.into_state()), &mut |_| Ok(()))
        .unwrap();

    assert_eq!(resumed.trace.iterations(), reference.trace.iterations());
    assert_eq!(
        factor_bits(&resumed.decomposition.core, &resumed.decomposition.factors),
        factor_bits(
            &reference.decomposition.core,
            &reference.decomposition.factors
        ),
        "resumed run diverged from uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming a checkpoint taken at the final sweep is a no-op: the factors
/// come back untouched and no extra sweeps run.
#[test]
fn resuming_finished_run_is_noop() {
    let dir = tmpdir("finished");
    let x = test_tensor(&[10, 9, 6], 5);
    let cfg = DTuckerConfig::uniform(2, 3).with_seed(1);
    let solver = DTucker::new(cfg.clone());
    let mut src = dtucker_core::InMemorySource::new(&x).unwrap();
    let st = SlicedTensor::compress_source(&mut src, &cfg).unwrap();

    let mut last = None;
    let reference = solver
        .decompose_sliced_resumable(&st, None, &mut |snap| {
            last = Some(HooiCheckpoint::from_snapshot(&snap, &st, &cfg));
            Ok(())
        })
        .unwrap();
    let ck = last.expect("at least one sweep ran");

    let mut extra_sweeps = 0usize;
    let resumed = solver
        .decompose_sliced_resumable(&st, Some(ck.into_state()), &mut |_| {
            extra_sweeps += 1;
            Ok(())
        })
        .unwrap();
    assert_eq!(extra_sweeps, 0, "finished run must not iterate again");
    assert_eq!(
        factor_bits(&resumed.decomposition.core, &resumed.decomposition.factors),
        factor_bits(
            &reference.decomposition.core,
            &reference.decomposition.factors
        )
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The on-disk source reports the same norm and slices as the in-memory
/// source for a tensor with awkward (non-divisible, tiny-mode) shape.
#[test]
fn dten_source_matches_inmemory_source() {
    let dir = tmpdir("source_match");
    let x = test_tensor(&[7, 5, 3, 2], 9);
    let dten = dir.join("x.dten");
    io::save(&x, &dten).unwrap();

    let mut mem = dtucker_core::InMemorySource::new(&x).unwrap();
    let mut disk = DtenSliceSource::open(&dten).unwrap();
    assert_eq!(mem.shape(), disk.shape());
    assert_eq!(mem.perm(), disk.perm());
    assert_eq!(
        mem.fro_norm_sq().unwrap().to_bits(),
        disk.fro_norm_sq().unwrap().to_bits()
    );
    for l in 0..mem.num_slices() {
        let a = mem.load_slice(l).unwrap();
        let b = disk.load_slice(l).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "slice {l} differs");
    }
    std::fs::remove_dir_all(&dir).ok();
}
