//! Property-based tests for the `.dts` artifact format and the on-disk
//! slice source: round trips must be bit-exact at awkward shapes (dim-1
//! modes, single-slice tensors, non-divisible chunk sizes), and any
//! corruption — bit flips in header, body, or checksum, truncation, or
//! plain garbage — must come back as a typed error, never a panic.

use dtucker_core::{
    ConvergenceTrace, DTuckerConfig, InMemorySource, SliceSource, SlicedTensor, TuckerDecomp,
};
use dtucker_linalg::Matrix;
use dtucker_store::{
    decode_sliced, decode_tucker, encode_sliced, encode_tucker, DtenSliceSource, HooiCheckpoint,
    StoreError,
};
use dtucker_tensor::{io, DenseTensor};
use proptest::prelude::*;

/// Strategy: an order-2..4 tensor with dims in [1, 6] — deliberately
/// includes degenerate modes and single-slice tensors.
fn tensor_strategy() -> impl Strategy<Value = DenseTensor> {
    proptest::collection::vec(1usize..=6, 2..=4).prop_flat_map(|shape| {
        let n: usize = shape.iter().product();
        proptest::collection::vec(-100.0f64..100.0, n)
            .prop_map(move |data| DenseTensor::from_vec(&shape, data).unwrap())
    })
}

/// Strategy: a structurally valid Tucker decomposition (random core +
/// conformable factors; orthonormality is not required by the format).
fn tucker_strategy() -> impl Strategy<Value = TuckerDecomp> {
    proptest::collection::vec((1usize..=3, 0usize..=3), 2..=4).prop_flat_map(|modes| {
        let ranks: Vec<usize> = modes.iter().map(|&(r, _)| r).collect();
        let dims: Vec<usize> = modes.iter().map(|&(r, extra)| r + extra).collect();
        let core_n: usize = ranks.iter().product();
        let fact_n: usize = dims.iter().zip(&ranks).map(|(d, r)| d * r).sum();
        proptest::collection::vec(-10.0f64..10.0, core_n + fact_n).prop_map(move |data| {
            let core = DenseTensor::from_vec(&ranks, data[..core_n].to_vec()).unwrap();
            let mut off = core_n;
            let factors: Vec<Matrix> = dims
                .iter()
                .zip(&ranks)
                .map(|(&d, &r)| {
                    let m = Matrix::from_vec(d, r, data[off..off + d * r].to_vec()).unwrap();
                    off += d * r;
                    m
                })
                .collect();
            TuckerDecomp { core, factors }
        })
    })
}

fn compress(x: &DenseTensor, chunk: usize, seed: u64) -> SlicedTensor {
    let j = 2usize.min(*x.shape().iter().min().unwrap());
    let cfg = DTuckerConfig::uniform(j, x.order())
        .with_seed(seed)
        .with_chunk_slices(chunk);
    let mut src = InMemorySource::new(x).unwrap();
    SlicedTensor::compress_source(&mut src, &cfg).unwrap()
}

/// Corrupted containers must surface as format-layer errors (never `Io`,
/// which is reserved for the filesystem, and never a panic).
fn assert_typed(e: StoreError) {
    assert!(
        !matches!(e, StoreError::Io(_)),
        "corruption produced an I/O error: {e}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sliced_artifact_round_trip(x in tensor_strategy(), chunk in 0usize..=7, seed in 0u64..4) {
        let st = compress(&x, chunk, seed);
        let bytes = encode_sliced(&st);
        let back = decode_sliced(&bytes).unwrap();
        prop_assert_eq!(back.shape(), st.shape());
        prop_assert_eq!(back.perm(), st.perm());
        prop_assert_eq!(back.norm_x_sq().to_bits(), st.norm_x_sq().to_bits());
        // Bit-exactness of the whole payload: re-encoding reproduces the
        // original byte stream.
        prop_assert_eq!(encode_sliced(&back), bytes);
    }

    #[test]
    fn chunking_does_not_change_the_artifact(x in tensor_strategy(), chunk in 1usize..=7) {
        // Non-divisible chunk sizes partition the work differently but
        // must never change the bytes that land on disk.
        prop_assert_eq!(
            encode_sliced(&compress(&x, chunk, 3)),
            encode_sliced(&compress(&x, 0, 3))
        );
    }

    #[test]
    fn tucker_artifact_round_trip(d in tucker_strategy()) {
        let bytes = encode_tucker(&d);
        let back = decode_tucker(&bytes).unwrap();
        prop_assert_eq!(back.ranks(), d.ranks());
        prop_assert_eq!(back.full_shape(), d.full_shape());
        prop_assert_eq!(encode_tucker(&back), bytes);
    }

    #[test]
    fn checkpoint_artifact_round_trip(
        d in tucker_strategy(),
        sweep_extra in 0usize..3,
        fits in proptest::collection::vec(0.0f64..1.0, 1..4),
    ) {
        let shape = d.full_shape();
        let ck = HooiCheckpoint {
            sweep: fits.len(),
            shape: shape.clone(),
            perm: (0..shape.len()).collect(),
            ranks: d.ranks().to_vec(),
            seed: 42,
            tolerance: 1e-4,
            max_iters: fits.len() + sweep_extra + 1,
            factors: d.factors.clone(),
            trace: ConvergenceTrace { sweep_fits: fits, converged: false },
        };
        let bytes = ck.encode();
        let back = HooiCheckpoint::decode(&bytes).unwrap();
        prop_assert_eq!(back.sweep, ck.sweep);
        prop_assert_eq!(back.tolerance.to_bits(), ck.tolerance.to_bits());
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn bit_flip_anywhere_is_rejected(x in tensor_strategy(), pos_seed in 0usize..1 << 16) {
        // CRC-32 detects every single-bit error; header flips are caught
        // by the magic/version/kind checks first.
        let st = compress(&x, 0, 1);
        let mut bytes = encode_sliced(&st);
        let bit = pos_seed % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        match decode_sliced(&bytes) {
            Ok(_) => prop_assert!(false, "corrupt artifact decoded successfully"),
            Err(e) => assert_typed(e),
        }
    }

    #[test]
    fn truncation_is_rejected(d in tucker_strategy(), cut in 1usize..64) {
        let bytes = encode_tucker(&d);
        let cut = cut.min(bytes.len());
        match decode_tucker(&bytes[..bytes.len() - cut]) {
            Ok(_) => prop_assert!(false, "truncated artifact decoded successfully"),
            Err(e) => assert_typed(e),
        }
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_sliced(&bytes);
        let _ = decode_tucker(&bytes);
        let _ = HooiCheckpoint::decode(&bytes);
    }

    #[test]
    fn dten_source_round_trip_awkward_shapes(x in tensor_strategy(), chunk in 1usize..=5) {
        // Streaming slices off disk — including dim-1 modes and
        // single-slice tensors — compresses to the same bytes as memory.
        let dir = std::env::temp_dir()
            .join(format!("dtucker_store_prop_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.dten");
        io::save(&x, &path).unwrap();

        let j = 2usize.min(*x.shape().iter().min().unwrap());
        let cfg = DTuckerConfig::uniform(j, x.order())
            .with_seed(5)
            .with_chunk_slices(chunk);
        let mut disk = DtenSliceSource::open(&path).unwrap();
        let mut mem = InMemorySource::new(&x).unwrap();
        prop_assert_eq!(
            disk.fro_norm_sq().unwrap().to_bits(),
            mem.fro_norm_sq().unwrap().to_bits()
        );
        let from_disk = SlicedTensor::compress_source(&mut disk, &cfg).unwrap();
        let from_mem = SlicedTensor::compress_source(&mut mem, &cfg).unwrap();
        prop_assert_eq!(encode_sliced(&from_disk), encode_sliced(&from_mem));
        std::fs::remove_file(&path).ok();
    }
}
