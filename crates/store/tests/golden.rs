//! Golden-artifact test: a `.dts` container committed to the repository
//! must keep loading in every future version (or fail with a typed
//! `UnsupportedVersion`, never silently misread). This pins the wire
//! format — if an encoding change breaks this test, bump the format
//! version instead of mutating v1.
//!
//! Regenerate (only when intentionally revving the fixture) with:
//! `cargo test -p dtucker-store --test golden -- --ignored regenerate`

use dtucker_core::{DTuckerConfig, InMemorySource, SlicedTensor, TuckerDecomp};
use dtucker_linalg::Matrix;
use dtucker_store::{read_decomposition, read_sliced, ArtifactKind};
use dtucker_tensor::DenseTensor;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Deterministic, formula-generated inputs — no RNG, no SVD randomness in
/// the fixture definition itself.
fn golden_tensor() -> DenseTensor {
    let shape = [6usize, 5, 4];
    let n: usize = shape.iter().product();
    let data: Vec<f64> = (0..n)
        .map(|i| ((i % 17) as f64 - 8.0) * 0.25 + (i / 17) as f64 * 0.0625)
        .collect();
    DenseTensor::from_vec(&shape, data).unwrap()
}

fn golden_decomp() -> TuckerDecomp {
    let ranks = [2usize, 2, 2];
    let core =
        DenseTensor::from_vec(&ranks, (0..8).map(|i| i as f64 * 0.5 - 1.75).collect()).unwrap();
    let factors = vec![
        Matrix::from_vec(6, 2, (0..12).map(|i| (i as f64 * 0.125).sin()).collect()).unwrap(),
        Matrix::from_vec(5, 2, (0..10).map(|i| (i as f64 * 0.25).cos()).collect()).unwrap(),
        Matrix::from_vec(4, 2, (0..8).map(|i| i as f64 * 0.1 - 0.35).collect()).unwrap(),
    ];
    TuckerDecomp { core, factors }
}

#[test]
fn golden_tucker_artifact_loads() {
    let d = read_decomposition(golden_dir().join("decomp_v1.dts")).unwrap();
    assert_eq!(d.ranks(), &[2, 2, 2]);
    assert_eq!(d.full_shape(), vec![6, 5, 4]);
    // The committed bytes decode to the exact values the fixture was
    // built from (the container stores raw IEEE-754 bits).
    let expect = golden_decomp();
    assert_eq!(d.core.as_slice(), expect.core.as_slice());
    for (a, b) in d.factors.iter().zip(&expect.factors) {
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

#[test]
fn golden_sliced_artifact_loads() {
    let st = read_sliced(golden_dir().join("sliced_v1.dts")).unwrap();
    assert_eq!(st.shape(), &[6, 5, 4]);
    assert_eq!(st.num_slices(), 4);
    // ‖X‖² is stored verbatim; it must match the generating tensor to
    // the last bit.
    assert_eq!(
        st.norm_x_sq().to_bits(),
        golden_tensor().fro_norm_sq().to_bits()
    );
    // The compressed slices reconstruct the (exactly low-rank-ish)
    // tensor to working precision.
    let err = st.compression_error_sq(&golden_tensor()).unwrap();
    assert!(err < 1e-20, "golden reconstruction error {err}");
}

#[test]
fn golden_files_probe_as_expected_kinds() {
    assert_eq!(
        dtucker_store::probe(golden_dir().join("decomp_v1.dts")).unwrap(),
        ArtifactKind::Tucker
    );
    assert_eq!(
        dtucker_store::probe(golden_dir().join("sliced_v1.dts")).unwrap(),
        ArtifactKind::Sliced
    );
}

/// Writes the fixture files. Ignored: run manually only when revving the
/// format, then commit the result.
#[test]
#[ignore]
fn regenerate_golden_fixtures() {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).unwrap();
    dtucker_store::write_decomposition(dir.join("decomp_v1.dts"), &golden_decomp()).unwrap();

    let x = golden_tensor();
    let cfg = DTuckerConfig::uniform(4, 3).with_seed(0);
    let mut src = InMemorySource::new(&x).unwrap();
    let st = SlicedTensor::compress_source(&mut src, &cfg).unwrap();
    dtucker_store::write_sliced(dir.join("sliced_v1.dts"), &st).unwrap();
}
