//! Directory-backed artifact store.
//!
//! [`ArtifactStore`] manages a flat directory of `.dts` containers. All
//! writes go through the shared atomic temp-file-and-rename helper, so a
//! crash mid-save leaves the previous artifact (or nothing) — never a torn
//! file. Names are logical (`"weights"`), extensions are appended by the
//! store.

use crate::checkpoint::HooiCheckpoint;
use crate::error::Result;
use crate::format::{
    decode_container, decode_sliced, decode_tucker, encode_sliced, encode_tucker, ArtifactKind,
};
use dtucker_core::{SlicedTensor, TuckerDecomp};
use dtucker_tensor::io::atomic_write;
use std::fs;
use std::path::{Path, PathBuf};

/// File extension shared by every artifact kind.
pub const EXTENSION: &str = "dts";

/// A flat directory of persistent D-Tucker artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Full path of the artifact named `name`.
    pub fn path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{EXTENSION}"))
    }

    /// Whether an artifact with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.path(name).is_file()
    }

    /// Removes an artifact (no error if absent).
    pub fn remove(&self, name: &str) -> Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Saves a compressed sliced tensor (atomic).
    pub fn save_sliced(&self, name: &str, st: &SlicedTensor) -> Result<PathBuf> {
        let path = self.path(name);
        atomic_write(&path, &encode_sliced(st))?;
        Ok(path)
    }

    /// Loads a sliced tensor.
    pub fn load_sliced(&self, name: &str) -> Result<SlicedTensor> {
        decode_sliced(&fs::read(self.path(name))?)
    }

    /// Saves a Tucker decomposition (atomic).
    pub fn save_decomposition(&self, name: &str, d: &TuckerDecomp) -> Result<PathBuf> {
        let path = self.path(name);
        atomic_write(&path, &encode_tucker(d))?;
        Ok(path)
    }

    /// Loads a Tucker decomposition.
    pub fn load_decomposition(&self, name: &str) -> Result<TuckerDecomp> {
        decode_tucker(&fs::read(self.path(name))?)
    }

    /// Saves a HOOI checkpoint (atomic).
    pub fn save_checkpoint(&self, name: &str, ck: &HooiCheckpoint) -> Result<PathBuf> {
        let path = self.path(name);
        atomic_write(&path, &ck.encode())?;
        Ok(path)
    }

    /// Loads a HOOI checkpoint.
    pub fn load_checkpoint(&self, name: &str) -> Result<HooiCheckpoint> {
        HooiCheckpoint::decode(&fs::read(self.path(name))?)
    }

    /// Lists the store's artifacts as `(name, kind)`, sorted by name.
    ///
    /// Foreign or corrupt `.dts` files are skipped with a warning on
    /// stderr — a store directory shared with other tools (or holding a
    /// damaged artifact) must stay listable, not abort.
    pub fn list(&self) -> Result<Vec<(String, ArtifactKind)>> {
        let (artifacts, skipped) = self.scan()?;
        for (path, reason) in &skipped {
            eprintln!("warning: skipping {}: {reason}", path.display());
        }
        Ok(artifacts)
    }

    /// Like [`list`](ArtifactStore::list), but returns the skipped `.dts`
    /// files alongside the valid artifacts instead of warning, so callers
    /// can surface them their own way. Only directory-level I/O failures
    /// are errors; per-file problems (unreadable, truncated, foreign
    /// bytes, checksum mismatch) land in the skip list with the reason.
    #[allow(clippy::type_complexity)]
    pub fn scan(&self) -> Result<(Vec<(String, ArtifactKind)>, Vec<(PathBuf, String)>)> {
        let mut out = Vec::new();
        let mut skipped = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(EXTENSION) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                skipped.push((path, "non-UTF-8 file name".to_string()));
                continue;
            };
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    skipped.push((path, format!("unreadable: {e}")));
                    continue;
                }
            };
            match decode_container(&bytes) {
                Ok((kind, _)) => out.push((stem.to_string(), kind)),
                Err(e) => skipped.push((path, e.to_string())),
            }
        }
        out.sort();
        skipped.sort();
        Ok((out, skipped))
    }
}

/// Loads any artifact file and reports its kind (header + checksum
/// validation only).
pub fn probe(path: impl AsRef<Path>) -> Result<ArtifactKind> {
    let bytes = fs::read(path.as_ref())?;
    let (kind, _) = decode_container(&bytes)?;
    Ok(kind)
}

/// Reads a sliced-tensor artifact from an explicit path.
pub fn read_sliced(path: impl AsRef<Path>) -> Result<SlicedTensor> {
    decode_sliced(&fs::read(path.as_ref())?)
}

/// Writes a sliced-tensor artifact to an explicit path (atomic).
pub fn write_sliced(path: impl AsRef<Path>, st: &SlicedTensor) -> Result<()> {
    Ok(atomic_write(path, &encode_sliced(st))?)
}

/// Reads a Tucker-decomposition artifact from an explicit path.
pub fn read_decomposition(path: impl AsRef<Path>) -> Result<TuckerDecomp> {
    decode_tucker(&fs::read(path.as_ref())?)
}

/// Writes a Tucker-decomposition artifact to an explicit path (atomic).
pub fn write_decomposition(path: impl AsRef<Path>, d: &TuckerDecomp) -> Result<()> {
    Ok(atomic_write(path, &encode_tucker(d))?)
}

/// Reads a checkpoint artifact from an explicit path.
pub fn read_checkpoint(path: impl AsRef<Path>) -> Result<HooiCheckpoint> {
    HooiCheckpoint::decode(&fs::read(path.as_ref())?)
}

/// Writes a checkpoint artifact to an explicit path (atomic).
pub fn write_checkpoint(path: impl AsRef<Path>, ck: &HooiCheckpoint) -> Result<()> {
    Ok(atomic_write(path, &ck.encode())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use dtucker_core::{DTucker, DTuckerConfig};
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dtucker_store_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_round_trips_all_kinds() {
        let dir = tmpdir("all_kinds");
        let store = ArtifactStore::open(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let x = low_rank_plus_noise(&[12, 10, 4], &[2, 2, 2], 0.05, &mut rng).unwrap();
        let cfg = DTuckerConfig::uniform(2, 3).with_seed(2);
        let out = DTucker::new(cfg.clone()).decompose(&x).unwrap();

        store.save_sliced("compressed", &out.sliced).unwrap();
        store
            .save_decomposition("decomp", &out.decomposition)
            .unwrap();
        let mut ck = None;
        DTucker::new(cfg.clone())
            .decompose_sliced_resumable(&out.sliced, None, &mut |snap| {
                ck = Some(HooiCheckpoint::from_snapshot(&snap, &out.sliced, &cfg));
                Ok(())
            })
            .unwrap();
        store.save_checkpoint("ck", &ck.unwrap()).unwrap();

        let st = store.load_sliced("compressed").unwrap();
        assert_eq!(st.norm_x_sq().to_bits(), out.sliced.norm_x_sq().to_bits());
        let d = store.load_decomposition("decomp").unwrap();
        assert_eq!(d.ranks(), out.decomposition.ranks());
        let ck = store.load_checkpoint("ck").unwrap();
        assert!(ck.validate_against(&st, &cfg).is_ok());

        assert_eq!(
            store.list().unwrap(),
            vec![
                ("ck".to_string(), ArtifactKind::Checkpoint),
                ("compressed".to_string(), ArtifactKind::Sliced),
                ("decomp".to_string(), ArtifactKind::Tucker),
            ]
        );
        assert_eq!(probe(store.path("decomp")).unwrap(), ArtifactKind::Tucker);
        assert!(store.contains("ck"));
        store.remove("ck").unwrap();
        assert!(!store.contains("ck"));
        store.remove("ck").unwrap(); // idempotent

        // Kind confusion is a typed mismatch.
        assert!(matches!(
            store.load_decomposition("compressed"),
            Err(StoreError::Mismatch(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_skips_foreign_files() {
        let dir = tmpdir("foreign");
        let store = ArtifactStore::open(&dir).unwrap();
        fs::write(dir.join("notes.txt"), b"hello").unwrap();
        fs::write(dir.join("junk.dts"), b"not a container").unwrap();
        assert!(store.list().unwrap().is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_reports_foreign_and_corrupt_alongside_valid() {
        // Regression: a store directory containing foreign bytes, a
        // truncated artifact, and a bit-flipped artifact must stay
        // listable — valid entries come back, damage is reported per file,
        // and nothing aborts the listing.
        let dir = tmpdir("scan_mixed");
        let store = ArtifactStore::open(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let x = low_rank_plus_noise(&[8, 7, 3], &[2, 2, 2], 0.05, &mut rng).unwrap();
        let out = DTucker::new(DTuckerConfig::uniform(2, 3).with_seed(1))
            .decompose(&x)
            .unwrap();
        store
            .save_decomposition("good", &out.decomposition)
            .unwrap();

        // Foreign: plausible-looking but not our container.
        fs::write(dir.join("foreign.dts"), b"PNG\x89 pretending to be dts").unwrap();
        // Truncated: a valid artifact cut short.
        let full = fs::read(store.path("good")).unwrap();
        fs::write(dir.join("truncated.dts"), &full[..full.len() / 2]).unwrap();
        // Corrupt: single bit flipped in the payload.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        fs::write(dir.join("flipped.dts"), &flipped).unwrap();
        // Non-.dts files are ignored entirely, not reported.
        fs::write(dir.join("README.md"), b"docs").unwrap();

        let (artifacts, skipped) = store.scan().unwrap();
        assert_eq!(artifacts, vec![("good".to_string(), ArtifactKind::Tucker)]);
        let skipped_names: Vec<String> = skipped
            .iter()
            .map(|(p, _)| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            skipped_names,
            vec!["flipped.dts", "foreign.dts", "truncated.dts"]
        );
        for (_, reason) in &skipped {
            assert!(!reason.is_empty());
        }
        // list() warns-and-skips: same artifacts, no error.
        assert_eq!(store.list().unwrap(), artifacts);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_helpers() {
        let dir = tmpdir("paths");
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.dir(), dir.as_path());
        assert_eq!(store.path("x"), dir.join("x.dts"));
        assert!(store.load_sliced("absent").is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
