//! HOOI checkpoint/resume.
//!
//! A checkpoint captures everything the iteration phase needs to continue
//! after a crash: the completed sweep count, the factor matrices (internal
//! mode order), the convergence trace (the stopping rule compares against
//! the previous sweep's fit), and enough of the run's identity — sliced
//! shape, permutation, target ranks, seed, tolerance, sweep budget — to
//! refuse resuming against the wrong artifact or configuration. Because
//! every ALS sweep is a deterministic function of `(factors, trace)` and
//! the compressed tensor, a resumed run converges to the **bit-identical**
//! factors of the uninterrupted run.
//!
//! Checkpoint payload (inside the standard container, kind 3):
//!
//! ```text
//! sweep      u64
//! shape      vec<u64>    internal shape of the sliced tensor
//! perm       vec<u64>
//! ranks      vec<u64>    target ranks, original mode order
//! seed       u64
//! tolerance  f64
//! max_iters  u64
//! factors    u64 count, then matrix × count (internal order)
//! sweep_fits vec<f64>
//! converged  u64         0 or 1
//! ```

use crate::error::{Result, StoreError};
use crate::format::{
    decode_container, encode_container, put_f64_vec, put_matrix, put_usize_vec, ArtifactKind,
    Reader,
};
use bytes::BufMut;
use dtucker_core::iterate::{SweepSnapshot, SweepState};
use dtucker_core::{ConvergenceTrace, DTuckerConfig, SlicedTensor};
use dtucker_linalg::matrix::Matrix;

/// A persisted mid-run state of the HOOI iteration phase.
#[derive(Debug, Clone)]
pub struct HooiCheckpoint {
    /// Completed sweeps.
    pub sweep: usize,
    /// Internal shape of the sliced tensor the run was iterating on.
    pub shape: Vec<usize>,
    /// Mode permutation of that sliced tensor.
    pub perm: Vec<usize>,
    /// Target multilinear ranks, in **original** mode order.
    pub ranks: Vec<usize>,
    /// RNG seed of the run.
    pub seed: u64,
    /// Convergence tolerance of the run.
    pub tolerance: f64,
    /// Sweep budget of the run.
    pub max_iters: usize,
    /// Factor matrices, internal mode order.
    pub factors: Vec<Matrix>,
    /// Convergence record of the completed sweeps.
    pub trace: ConvergenceTrace,
}

impl HooiCheckpoint {
    /// Captures a checkpoint from a sweep snapshot plus the run identity.
    pub fn from_snapshot(snap: &SweepSnapshot<'_>, st: &SlicedTensor, cfg: &DTuckerConfig) -> Self {
        HooiCheckpoint {
            sweep: snap.sweep,
            shape: st.shape().to_vec(),
            perm: st.perm().to_vec(),
            ranks: cfg.ranks.clone(),
            seed: cfg.seed,
            tolerance: cfg.tolerance,
            max_iters: cfg.max_iters,
            factors: snap.factors.to_vec(),
            trace: snap.trace.clone(),
        }
    }

    /// Serializes into a complete artifact container.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.put_u64_le(self.sweep as u64);
        put_usize_vec(&mut p, &self.shape);
        put_usize_vec(&mut p, &self.perm);
        put_usize_vec(&mut p, &self.ranks);
        p.put_u64_le(self.seed);
        p.put_f64_le(self.tolerance);
        p.put_u64_le(self.max_iters as u64);
        p.put_u64_le(self.factors.len() as u64);
        for f in &self.factors {
            put_matrix(&mut p, f);
        }
        put_f64_vec(&mut p, &self.trace.sweep_fits);
        p.put_u64_le(self.trace.converged as u64);
        encode_container(ArtifactKind::Checkpoint, &p)
    }

    /// Decodes a checkpoint container (checksum validated).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let (kind, payload) = decode_container(bytes)?;
        if kind != ArtifactKind::Checkpoint {
            return Err(StoreError::Mismatch(format!(
                "expected a HOOI checkpoint, found a {}",
                kind.describe()
            )));
        }
        let mut r = Reader::new(payload);
        let sweep = r.len(0, "sweep")?;
        let shape = r.usize_vec("shape")?;
        let perm = r.usize_vec("perm")?;
        let ranks = r.usize_vec("ranks")?;
        let seed = r.u64("seed")?;
        let tolerance = r.f64("tolerance")?;
        let max_iters = r.len(0, "max_iters")?;
        let n = r.len(1, "factor count")?;
        let mut factors = Vec::with_capacity(n);
        for m in 0..n {
            factors.push(r.matrix(&format!("factor {m}"))?);
        }
        let sweep_fits = r.f64_vec("sweep fits")?;
        let converged = match r.u64("converged")? {
            0 => false,
            1 => true,
            other => {
                return Err(StoreError::Format(format!(
                    "converged flag is {other}, expected 0 or 1"
                )))
            }
        };
        r.finish("checkpoint")?;
        if shape.len() < 2 || shape.len() != perm.len() || factors.len() != shape.len() {
            return Err(StoreError::Format(format!(
                "inconsistent checkpoint: order {} / perm {} / {} factors",
                shape.len(),
                perm.len(),
                factors.len()
            )));
        }
        if sweep_fits.len() != sweep {
            return Err(StoreError::Format(format!(
                "checkpoint at sweep {sweep} carries {} fits",
                sweep_fits.len()
            )));
        }
        Ok(HooiCheckpoint {
            sweep,
            shape,
            perm,
            ranks,
            seed,
            tolerance,
            max_iters,
            factors,
            trace: ConvergenceTrace {
                sweep_fits,
                converged,
            },
        })
    }

    /// Verifies this checkpoint belongs to a run over `st` with `cfg`.
    /// Factor shapes are checked again by the core on resume; this guards
    /// the run identity (wrong artifact, changed configuration).
    pub fn validate_against(&self, st: &SlicedTensor, cfg: &DTuckerConfig) -> Result<()> {
        if self.shape != st.shape() || self.perm != st.perm() {
            return Err(StoreError::Mismatch(format!(
                "checkpoint is for shape {:?} perm {:?}, artifact has {:?} perm {:?}",
                self.shape,
                self.perm,
                st.shape(),
                st.perm()
            )));
        }
        if self.ranks != cfg.ranks {
            return Err(StoreError::Mismatch(format!(
                "checkpoint targets ranks {:?}, configuration asks {:?}",
                self.ranks, cfg.ranks
            )));
        }
        if self.seed != cfg.seed {
            return Err(StoreError::Mismatch(format!(
                "checkpoint seed {} != configured seed {}",
                self.seed, cfg.seed
            )));
        }
        if self.tolerance.to_bits() != cfg.tolerance.to_bits() {
            return Err(StoreError::Mismatch(format!(
                "checkpoint tolerance {} != configured {}",
                self.tolerance, cfg.tolerance
            )));
        }
        Ok(())
    }

    /// Converts into the core's resumable iteration state.
    pub fn into_state(self) -> SweepState {
        SweepState {
            sweep: self.sweep,
            factors: self.factors,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_core::DTucker;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_pieces() -> (SlicedTensor, DTuckerConfig, HooiCheckpoint) {
        let mut rng = StdRng::seed_from_u64(5);
        let x = low_rank_plus_noise(&[14, 11, 6], &[2, 2, 2], 0.1, &mut rng).unwrap();
        let mut cfg = DTuckerConfig::uniform(2, 3).with_seed(6);
        cfg.tolerance = 0.0;
        cfg.max_iters = 4;
        let st = SlicedTensor::compress(&x, &cfg).unwrap();
        let mut saved = None;
        DTucker::new(cfg.clone())
            .decompose_sliced_resumable(&st, None, &mut |snap| {
                if snap.sweep == 2 {
                    saved = Some(HooiCheckpoint::from_snapshot(&snap, &st, &cfg));
                }
                Ok(())
            })
            .unwrap();
        (st, cfg, saved.unwrap())
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (_, _, ck) = run_pieces();
        let back = HooiCheckpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back.sweep, 2);
        assert_eq!(back.shape, ck.shape);
        assert_eq!(back.perm, ck.perm);
        assert_eq!(back.ranks, ck.ranks);
        assert_eq!(back.seed, ck.seed);
        assert_eq!(back.tolerance.to_bits(), ck.tolerance.to_bits());
        assert_eq!(back.max_iters, ck.max_iters);
        for (a, b) in back.factors.iter().zip(ck.factors.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(back.trace.sweep_fits, ck.trace.sweep_fits);
        assert_eq!(back.trace.converged, ck.trace.converged);
        let state = back.into_state();
        assert_eq!(state.sweep, 2);
    }

    #[test]
    fn validates_run_identity() {
        let (st, cfg, ck) = run_pieces();
        assert!(ck.validate_against(&st, &cfg).is_ok());
        let mut wrong = cfg.clone();
        wrong.seed = 999;
        assert!(matches!(
            ck.validate_against(&st, &wrong),
            Err(StoreError::Mismatch(_))
        ));
        let mut wrong = cfg.clone();
        wrong.ranks = vec![3, 3, 3];
        assert!(ck.validate_against(&st, &wrong).is_err());
        let mut wrong = cfg.clone();
        wrong.tolerance = 0.5;
        assert!(ck.validate_against(&st, &wrong).is_err());
        let mut other = ck.clone();
        other.shape[0] += 1;
        assert!(other.validate_against(&st, &cfg).is_err());
    }

    #[test]
    fn rejects_inconsistent_payloads() {
        let (_, _, ck) = run_pieces();
        // Lie about the sweep count vs the trace length.
        let mut bad = ck.clone();
        bad.sweep = 5;
        assert!(HooiCheckpoint::decode(&bad.encode()).is_err());
        // Wrong kind.
        let (st, ..) = run_pieces();
        let sliced_bytes = crate::format::encode_sliced(&st);
        assert!(matches!(
            HooiCheckpoint::decode(&sliced_bytes),
            Err(StoreError::Mismatch(_))
        ));
    }
}
