//! Chunked on-disk slice sourcing over `.dten` tensor files.
//!
//! [`DtenSliceSource`] implements [`SliceSource`] directly against the
//! file: the tensor's f64 payload is stored in Fortran order over the
//! **original** modes, and each requested frontal slice of the **permuted**
//! view is gathered with positioned reads. Only the header, one slice
//! buffer, and the norm cache are ever resident, so the approximation
//! phase runs in `O(I₁·I₂·chunk)` memory regardless of the tensor size.
//!
//! Reads pick the cheapest access pattern the permutation allows:
//!
//! * whole-slice read when the permuted slice is contiguous on disk;
//! * per-column / per-row contiguous reads when the leading internal mode
//!   maps to original mode 0;
//! * bounded span reads (one read per column, strided in memory) otherwise,
//!   falling back to element reads only when a span would exceed
//!   [`MAX_SPAN_BYTES`].

use crate::error::{Result, StoreError};
use dtucker_core::source::SliceSource;
use dtucker_core::Result as CoreResult;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::norms::FroNormAccumulator;
use dtucker_tensor::io::{header_len, read_header};
use dtucker_tensor::unfold::descending_mode_order;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Largest single gather read the span strategy may issue (16 MiB). Spans
/// beyond this fall back to per-element reads instead of ballooning memory.
pub const MAX_SPAN_BYTES: usize = 16 << 20;

/// [`SliceSource`] that reads frontal slices of a (virtually) permuted
/// tensor straight from a `.dten` file.
#[derive(Debug)]
pub struct DtenSliceSource {
    file: File,
    path: PathBuf,
    /// Shape in the internal (permuted) order.
    shape: Vec<usize>,
    /// Internal position → original mode.
    perm: Vec<usize>,
    /// Fortran strides of the **original** shape, in elements.
    strides: Vec<usize>,
    /// Byte offset of the f64 payload.
    data_offset: u64,
    norm_cache: Option<f64>,
}

impl DtenSliceSource {
    /// Opens a `.dten` file with the paper's default mode reordering (two
    /// largest modes first).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let shape = Self::peek_shape(path.as_ref())?;
        Self::open_with_perm(path, &descending_mode_order(&shape))
    }

    /// Opens a `.dten` file with an explicit permutation (`perm[p]` =
    /// original mode served at internal position `p`).
    pub fn open_with_perm(path: impl AsRef<Path>, perm: &[usize]) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let orig = read_header(&mut file)?;
        let order = orig.len();
        if order < 2 {
            return Err(StoreError::Format(format!(
                "{}: slice sourcing needs order >= 2, file is order {order}",
                path.display()
            )));
        }
        if perm.len() != order {
            return Err(StoreError::Mismatch(format!(
                "permutation {perm:?} does not fit an order-{order} tensor"
            )));
        }
        let mut seen = vec![false; order];
        for &p in perm {
            if p >= order || seen[p] {
                return Err(StoreError::Mismatch(format!(
                    "{perm:?} is not a permutation of 0..{order}"
                )));
            }
            seen[p] = true;
        }
        // Validate the payload length once so later reads can't run off the
        // end of a truncated file.
        let numel: u64 = orig.iter().map(|&d| d as u64).product();
        let data_offset = header_len(order);
        let expected = data_offset + numel * 8;
        let actual = file.metadata()?.len();
        if actual != expected {
            return Err(StoreError::Format(format!(
                "{}: file is {actual} bytes, header promises {expected}",
                path.display()
            )));
        }
        let mut strides = vec![1usize; order];
        for m in 1..order {
            strides[m] = strides[m - 1] * orig[m - 1];
        }
        let shape: Vec<usize> = perm.iter().map(|&p| orig[p]).collect();
        Ok(DtenSliceSource {
            file,
            path,
            shape,
            perm: perm.to_vec(),
            strides,
            data_offset,
            norm_cache: None,
        })
    }

    /// Reads just the shape from a `.dten` header.
    pub fn peek_shape(path: impl AsRef<Path>) -> Result<Vec<usize>> {
        let mut f = File::open(path)?;
        Ok(read_header(&mut f)?)
    }

    /// The file backing this source.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Element offset (into the payload) of internal element
    /// `(0, 0, t₂, …)` for frontal slice `l`, plus the two leading strides.
    fn slice_geometry(&self, l: usize) -> (usize, usize, usize) {
        let mut base = 0usize;
        let mut rem = l;
        for (p, &dim) in self.shape.iter().enumerate().skip(2) {
            let t = rem % dim;
            rem /= dim;
            base += t * self.strides[self.perm[p]];
        }
        (base, self.strides[self.perm[0]], self.strides[self.perm[1]])
    }

    fn read_elements_at(&mut self, elem_offset: usize, out: &mut [f64]) -> Result<()> {
        let byte = self.data_offset + elem_offset as u64 * 8;
        self.file.seek(SeekFrom::Start(byte))?;
        let mut raw = vec![0u8; out.len() * 8];
        self.file.read_exact(&mut raw)?;
        for (dst, chunk) in out.iter_mut().zip(raw.chunks_exact(8)) {
            *dst = f64::from_le_bytes(crate::format::arr8(chunk));
        }
        Ok(())
    }

    fn gather_slice(&mut self, l: usize) -> Result<Matrix> {
        let (i1, i2) = (self.shape[0], self.shape[1]);
        let (base, s0, s1) = self.slice_geometry(l);
        let mut m = Matrix::zeros(i1, i2);

        if s0 == 1 && s1 == i1 {
            // The permuted slice is one contiguous window (identity leading
            // permutation): a single read, then transpose into row-major.
            let mut col_major = vec![0.0f64; i1 * i2];
            self.read_elements_at(base, &mut col_major)?;
            for c in 0..i2 {
                for r in 0..i1 {
                    m.set(r, c, col_major[c * i1 + r]);
                }
            }
        } else if s1 == 1 {
            // Rows are contiguous on disk: one read per row.
            for r in 0..i1 {
                self.read_elements_at(base + r * s0, m.row_mut(r))?;
            }
        } else if s0 == 1 {
            // Columns are contiguous on disk: one read per column.
            let mut col = vec![0.0f64; i1];
            for c in 0..i2 {
                self.read_elements_at(base + c * s1, &mut col)?;
                for (r, &v) in col.iter().enumerate() {
                    m.set(r, c, v);
                }
            }
        } else {
            // General gather: each column is an arithmetic progression with
            // step s0. Read its bounding span in one go when reasonable,
            // element-by-element otherwise.
            let span_elems = (i1 - 1) * s0 + 1;
            if span_elems * 8 <= MAX_SPAN_BYTES {
                let mut span = vec![0.0f64; span_elems];
                for c in 0..i2 {
                    self.read_elements_at(base + c * s1, &mut span)?;
                    for r in 0..i1 {
                        m.set(r, c, span[r * s0]);
                    }
                }
            } else {
                let mut one = [0.0f64; 1];
                for c in 0..i2 {
                    for r in 0..i1 {
                        self.read_elements_at(base + c * s1 + r * s0, &mut one)?;
                        m.set(r, c, one[0]);
                    }
                }
            }
        }
        Ok(m)
    }

    fn stream_norm(&mut self) -> Result<f64> {
        // Feed the payload in file (= original Fortran) order, exactly the
        // order `DenseTensor::fro_norm_sq` walks, so the result is
        // bit-identical to the in-memory norm.
        self.file.seek(SeekFrom::Start(self.data_offset))?;
        let numel: usize = self.shape.iter().product();
        let mut acc = FroNormAccumulator::new();
        let mut reader = BufReader::with_capacity(1 << 20, &mut self.file);
        let mut buf = vec![0u8; 8 * 4096];
        let mut left = numel * 8;
        while left > 0 {
            let take = left.min(buf.len());
            reader.read_exact(&mut buf[..take])?;
            for chunk in buf[..take].chunks_exact(8) {
                acc.push(f64::from_le_bytes(crate::format::arr8(chunk)));
            }
            left -= take;
        }
        Ok(acc.norm_sq())
    }
}

fn to_core_err(e: StoreError) -> dtucker_core::CoreError {
    dtucker_core::CoreError::Tensor(dtucker_tensor::TensorError::Io(e.to_string()))
}

impl SliceSource for DtenSliceSource {
    fn shape(&self) -> &[usize] {
        &self.shape
    }

    fn perm(&self) -> &[usize] {
        &self.perm
    }

    fn load_slice(&mut self, l: usize) -> CoreResult<Matrix> {
        if l >= self.num_slices() {
            return Err(dtucker_core::CoreError::InvalidConfig {
                details: format!("slice {l} out of range (have {})", self.num_slices()),
            });
        }
        self.gather_slice(l).map_err(to_core_err)
    }

    fn fro_norm_sq(&mut self) -> CoreResult<f64> {
        if let Some(n) = self.norm_cache {
            return Ok(n);
        }
        let n = self.stream_norm().map_err(to_core_err)?;
        self.norm_cache = Some(n);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::dense::DenseTensor;
    use dtucker_tensor::io::save;
    use dtucker_tensor::random::low_rank_plus_noise;
    use dtucker_tensor::unfold::permute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dtucker_store_source_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn check_all_slices(x: &DenseTensor, perm: &[usize], name: &str) {
        let path = tmpfile(name);
        save(x, &path).unwrap();
        let mut src = DtenSliceSource::open_with_perm(&path, perm).unwrap();
        let internal = permute(x, perm).unwrap();
        assert_eq!(src.shape(), internal.shape());
        assert_eq!(src.num_slices(), internal.num_frontal_slices());
        for l in 0..src.num_slices() {
            let got = src.load_slice(l).unwrap();
            let want = internal.frontal_slice(l).unwrap();
            assert_eq!(got, want, "slice {l} of {name} perm {perm:?}");
        }
        assert_eq!(
            src.fro_norm_sq().unwrap().to_bits(),
            x.fro_norm_sq().to_bits(),
            "norm of {name}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_permutation_matches_in_memory() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = low_rank_plus_noise(&[7, 5, 4], &[2, 2, 2], 0.2, &mut rng).unwrap();
        // All 6 permutations of an order-3 tensor exercise every gather
        // strategy: contiguous, row-contiguous, column-contiguous, span.
        for perm in [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            check_all_slices(&x, &perm, "p3.dten");
        }
    }

    #[test]
    fn order2_and_order4() {
        let mut rng = StdRng::seed_from_u64(2);
        let x2 = low_rank_plus_noise(&[6, 9], &[2, 2], 0.1, &mut rng).unwrap();
        check_all_slices(&x2, &[0, 1], "p2a.dten");
        check_all_slices(&x2, &[1, 0], "p2b.dten");
        let x4 = low_rank_plus_noise(&[5, 4, 3, 2], &[2, 2, 2, 2], 0.1, &mut rng).unwrap();
        check_all_slices(&x4, &[2, 0, 3, 1], "p4.dten");
        check_all_slices(&x4, &[3, 1, 0, 2], "p4b.dten");
    }

    #[test]
    fn default_open_uses_descending_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = low_rank_plus_noise(&[4, 9, 6], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let path = tmpfile("desc.dten");
        save(&x, &path).unwrap();
        let src = DtenSliceSource::open(&path).unwrap();
        assert_eq!(src.shape(), &[9, 6, 4]);
        assert_eq!(src.perm(), &[1, 2, 0]);
        assert_eq!(src.original_shape(), vec![4, 9, 6]);
        assert_eq!(DtenSliceSource::peek_shape(&path).unwrap(), vec![4, 9, 6]);
        assert_eq!(src.path(), path.as_path());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = low_rank_plus_noise(&[4, 5, 3], &[2, 2, 2], 0.0, &mut rng).unwrap();
        let path = tmpfile("bad.dten");
        save(&x, &path).unwrap();
        // Bad permutations.
        assert!(DtenSliceSource::open_with_perm(&path, &[0, 1]).is_err());
        assert!(DtenSliceSource::open_with_perm(&path, &[0, 0, 1]).is_err());
        assert!(DtenSliceSource::open_with_perm(&path, &[0, 1, 3]).is_err());
        // Truncated file.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(matches!(
            DtenSliceSource::open(&path),
            Err(StoreError::Format(_))
        ));
        // Missing file.
        assert!(matches!(
            DtenSliceSource::open(tmpfile("missing.dten")),
            Err(StoreError::Io(_))
        ));
        // Out-of-range slice.
        std::fs::write(&path, &bytes).unwrap();
        let mut src = DtenSliceSource::open(&path).unwrap();
        assert!(src.load_slice(99).is_err());
        std::fs::remove_file(&path).ok();
    }
}
