//! Error types for the artifact store.

use dtucker_core::CoreError;
use dtucker_tensor::TensorError;
use std::fmt;

/// Errors produced while reading or writing persistent artifacts.
///
/// Corrupt or truncated inputs always surface as a typed error — decoding
/// never panics, whatever the bytes.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The bytes are not a well-formed artifact (bad magic, truncation,
    /// implausible header fields).
    Format(String),
    /// The container is well-formed but written by a newer format revision.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build understands.
        supported: u16,
    },
    /// The checksum does not match the payload — the file was damaged.
    Corrupt {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the bytes actually read.
        computed: u32,
    },
    /// The artifact decodes but does not match what the caller asked for
    /// (wrong kind, incompatible shapes/config on resume).
    Mismatch(String),
    /// A reconstructed value failed the core library's validation.
    Core(CoreError),
    /// A tensor-level operation failed.
    Tensor(TensorError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Format(d) => write!(f, "malformed artifact: {d}"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact version {found} is newer than supported {supported}"
            ),
            StoreError::Corrupt { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StoreError::Mismatch(d) => write!(f, "artifact mismatch: {d}"),
            StoreError::Core(e) => write!(f, "core error: {e}"),
            StoreError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Core(e) => Some(e),
            StoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CoreError> for StoreError {
    fn from(e: CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<TensorError> for StoreError {
    fn from(e: TensorError) -> Self {
        StoreError::Tensor(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = StoreError::Format("short".into());
        assert!(e.to_string().contains("short"));
        assert!(e.source().is_none());
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Corrupt {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("checksum"));
        let e: StoreError = std::io::Error::other("disk").into();
        assert!(e.source().is_some());
        let e: StoreError = CoreError::InvalidConfig {
            details: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("core"));
        let e: StoreError = TensorError::Format("y".into()).into();
        assert!(e.to_string().contains("tensor"));
        let e = StoreError::Mismatch("kind".into());
        assert!(e.to_string().contains("kind"));
    }
}
