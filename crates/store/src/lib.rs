//! # dtucker-store
//!
//! Out-of-core input and persistent artifacts for the D-Tucker pipeline.
//!
//! Two pillars:
//!
//! 1. **Out-of-core slice sourcing** — [`DtenSliceSource`] reads frontal
//!    slices of a (virtually permuted) tensor straight from a `.dten` file,
//!    so the approximation phase runs in `O(I₁·I₂·chunk + compressed)`
//!    memory and produces decompositions **bit-identical** to the in-memory
//!    path. The [`SliceSource`] trait itself lives in `dtucker-core`
//!    (re-exported here) so the core never depends on this crate.
//! 2. **Persistent artifacts** — a versioned, CRC-checked container
//!    ([`format`]) for compressed tensors, Tucker decompositions, and HOOI
//!    checkpoints; [`ArtifactStore`] manages a directory of them with
//!    atomic writes, and [`HooiCheckpoint`] makes long iteration runs
//!    kill-safe: resuming reproduces the uninterrupted run bit for bit.
//!
//! ```no_run
//! use dtucker_core::{DTucker, DTuckerConfig, SlicedTensor};
//! use dtucker_store::{ArtifactStore, DtenSliceSource};
//!
//! // Compress a tensor file without ever materializing it in memory…
//! let mut src = DtenSliceSource::open("big.dten")?;
//! let cfg = DTuckerConfig::uniform(10, 3);
//! let st = SlicedTensor::compress_source(&mut src, &cfg)?;
//! // …persist the compressed artifact, decompose, persist the result.
//! let store = ArtifactStore::open("artifacts")?;
//! store.save_sliced("big", &st)?;
//! let out = DTucker::new(cfg).decompose_sliced(&st)?;
//! store.save_decomposition("big-decomp", &out.decomposition)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Resumable HOOI checkpoints.
pub mod checkpoint;
/// CRC-32/IEEE integrity checksums.
pub mod crc;
/// Typed store errors.
pub mod error;
/// The `.dts` artifact container and payload codecs.
pub mod format;
/// Out-of-core slice sources backed by `.dten` files.
pub mod source;
/// The on-disk artifact store (save/load/list).
pub mod store;

pub use checkpoint::HooiCheckpoint;
pub use crc::{crc32, Crc32};
pub use error::{Result, StoreError};
pub use format::{
    decode_sliced, decode_tucker, encode_sliced, encode_tucker, ArtifactKind, MAGIC, VERSION,
};
pub use source::DtenSliceSource;
pub use store::{
    probe, read_checkpoint, read_decomposition, read_sliced, write_checkpoint, write_decomposition,
    write_sliced, ArtifactStore,
};

// Re-export the sourcing trait and in-core implementations so users of this
// crate see the whole out-of-core story in one place.
pub use dtucker_core::source::{InMemorySource, SliceSource, SyntheticSource};
