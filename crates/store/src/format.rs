//! The `.dts` artifact container and payload codecs.
//!
//! Every persistent artifact shares one little-endian container:
//!
//! ```text
//! magic        4 bytes   "DTAR"
//! version      u16       1
//! kind         u16       1 = sliced tensor, 2 = Tucker decomposition,
//!                        3 = HOOI checkpoint
//! payload_len  u64
//! payload      payload_len bytes (kind-specific, see below)
//! crc32        u32       CRC-32/IEEE over ALL preceding bytes
//! ```
//!
//! Payloads are built from four primitives: `u64`, `f64`, `vec<u64>` and
//! `vec<f64>` (vectors are a `u64` length followed by the elements), plus a
//! matrix (`rows u64, cols u64, data rows·cols × f64` row-major) and a
//! dense tensor (`shape vec<u64>, data numel × f64` Fortran order).
//!
//! * **sliced** — `shape vec, perm vec, slice_rank u64, num_slices u64,
//!   {u matrix, s vec<f64>, v matrix} × num_slices, norm_x_sq f64`;
//! * **tucker** — `core tensor, num_factors u64, factor matrix ×
//!   num_factors`;
//! * **checkpoint** — see [`crate::checkpoint`].
//!
//! Decoding is total: corrupt, truncated, or adversarial bytes produce a
//! typed [`StoreError`], never a panic or an outsized allocation (lengths
//! are validated against the bytes actually present before allocating).

use crate::crc::crc32;
use crate::error::{Result, StoreError};
use bytes::BufMut;
use dtucker_core::slices::{SliceSvd, SlicedTensor};
use dtucker_core::tucker::TuckerDecomp;
use dtucker_linalg::matrix::Matrix;
use dtucker_tensor::dense::DenseTensor;

/// Container magic.
pub const MAGIC: &[u8; 4] = b"DTAR";
/// Highest container version this build reads and the version it writes.
pub const VERSION: u16 = 1;
/// Container overhead: magic + version + kind + payload_len + crc32.
pub const OVERHEAD: usize = 4 + 2 + 2 + 8 + 4;

/// Total copy of the first 8 bytes of `b` into a fixed array (zero-padded
/// if short). Every caller has already length-checked `b`, but the total
/// form keeps the decoder panic-free on any input.
pub(crate) fn arr8(b: &[u8]) -> [u8; 8] {
    let mut out = [0u8; 8];
    let n = b.len().min(8);
    out[..n].copy_from_slice(&b[..n]);
    out
}

/// Total copy of the first 4 bytes of `b` into a fixed array (zero-padded
/// if short).
pub(crate) fn arr4(b: &[u8]) -> [u8; 4] {
    let mut out = [0u8; 4];
    let n = b.len().min(4);
    out[..n].copy_from_slice(&b[..n]);
    out
}

/// What a container holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// A compressed [`SlicedTensor`].
    Sliced,
    /// A [`TuckerDecomp`].
    Tucker,
    /// A HOOI checkpoint ([`crate::checkpoint::HooiCheckpoint`]).
    Checkpoint,
}

impl ArtifactKind {
    fn to_u16(self) -> u16 {
        match self {
            ArtifactKind::Sliced => 1,
            ArtifactKind::Tucker => 2,
            ArtifactKind::Checkpoint => 3,
        }
    }

    fn from_u16(v: u16) -> Result<Self> {
        match v {
            1 => Ok(ArtifactKind::Sliced),
            2 => Ok(ArtifactKind::Tucker),
            3 => Ok(ArtifactKind::Checkpoint),
            other => Err(StoreError::Format(format!("unknown artifact kind {other}"))),
        }
    }

    /// Conventional file extension (`sliced.dts`, …) — all kinds share
    /// `.dts`; the header, not the name, is authoritative.
    pub fn describe(self) -> &'static str {
        match self {
            ArtifactKind::Sliced => "sliced tensor",
            ArtifactKind::Tucker => "Tucker decomposition",
            ArtifactKind::Checkpoint => "HOOI checkpoint",
        }
    }
}

/// Wraps a payload in the container (header + checksum).
pub fn encode_container(kind: ArtifactKind, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(OVERHEAD + payload.len());
    buf.put_slice(MAGIC);
    buf.put_slice(&VERSION.to_le_bytes());
    buf.put_slice(&kind.to_u16().to_le_bytes());
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(payload);
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf
}

/// Validates a container (magic, version, length, checksum) and returns
/// its kind and payload.
pub fn decode_container(bytes: &[u8]) -> Result<(ArtifactKind, &[u8])> {
    if bytes.len() < OVERHEAD {
        return Err(StoreError::Format(format!(
            "{} bytes is too short for a container",
            bytes.len()
        )));
    }
    if &bytes[0..4] != MAGIC {
        return Err(StoreError::Format(format!("bad magic {:?}", &bytes[0..4])));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version > VERSION || version == 0 {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = ArtifactKind::from_u16(u16::from_le_bytes([bytes[6], bytes[7]]))?;
    let payload_len = u64::from_le_bytes(arr8(&bytes[8..16])) as usize;
    let expected = OVERHEAD
        .checked_add(payload_len)
        .ok_or_else(|| StoreError::Format("payload length overflows".into()))?;
    if bytes.len() != expected {
        return Err(StoreError::Format(format!(
            "container is {} bytes but header promises {expected}",
            bytes.len()
        )));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(arr4(&bytes[bytes.len() - 4..]));
    let computed = crc32(body);
    if stored != computed {
        return Err(StoreError::Corrupt { stored, computed });
    }
    Ok((kind, &bytes[16..16 + payload_len]))
}

// ---------------------------------------------------------------------------
// Payload primitives.
// ---------------------------------------------------------------------------

/// Bounded little-endian reader over a payload. Every accessor checks the
/// remaining length first, so malformed payloads fail cleanly.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(StoreError::Format(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(arr8(self.take(8, what)?)))
    }

    /// A `u64` that must fit in `usize` and be a plausible element count
    /// for the bytes still present (`bytes_per_item` each).
    pub(crate) fn len(&mut self, bytes_per_item: usize, what: &str) -> Result<usize> {
        let raw = self.u64(what)?;
        let n = usize::try_from(raw)
            .map_err(|_| StoreError::Format(format!("{what} length {raw} overflows")))?;
        if n.checked_mul(bytes_per_item)
            .map(|need| need > self.buf.len())
            .unwrap_or(true)
        {
            return Err(StoreError::Format(format!(
                "{what} claims {n} items but only {} bytes remain",
                self.buf.len()
            )));
        }
        Ok(n)
    }

    pub(crate) fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_le_bytes(arr8(self.take(8, what)?)))
    }

    pub(crate) fn usize_vec(&mut self, what: &str) -> Result<Vec<usize>> {
        let n = self.len(8, what)?;
        let raw = self.take(n * 8, what)?;
        let mut out = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(8) {
            let v = u64::from_le_bytes(arr8(chunk));
            out.push(
                usize::try_from(v).map_err(|_| {
                    StoreError::Format(format!("{what} element {v} overflows usize"))
                })?,
            );
        }
        Ok(out)
    }

    pub(crate) fn f64_vec_exact(&mut self, n: usize, what: &str) -> Result<Vec<f64>> {
        let need = n
            .checked_mul(8)
            .ok_or_else(|| StoreError::Format(format!("{what} size overflows")))?;
        let raw = self.take(need, what)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(arr8(c)))
            .collect())
    }

    pub(crate) fn f64_vec(&mut self, what: &str) -> Result<Vec<f64>> {
        let n = self.len(8, what)?;
        self.f64_vec_exact(n, what)
    }

    pub(crate) fn matrix(&mut self, what: &str) -> Result<Matrix> {
        let rows = self.len(1, &format!("{what} rows"))?;
        let cols = self.len(1, &format!("{what} cols"))?;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| StoreError::Format(format!("{what} dims overflow")))?;
        let data = self.f64_vec_exact(n, what)?;
        Matrix::from_vec(rows, cols, data).map_err(|e| StoreError::Format(format!("{what}: {e}")))
    }

    pub(crate) fn tensor(&mut self, what: &str) -> Result<DenseTensor> {
        let shape = self.usize_vec(&format!("{what} shape"))?;
        let mut numel: usize = 1;
        for &d in &shape {
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| StoreError::Format(format!("{what} shape overflows")))?;
        }
        let data = self.f64_vec_exact(numel, what)?;
        DenseTensor::from_vec(&shape, data).map_err(StoreError::Tensor)
    }

    pub(crate) fn finish(self, what: &str) -> Result<()> {
        if !self.buf.is_empty() {
            return Err(StoreError::Format(format!(
                "{} trailing bytes after {what}",
                self.buf.len()
            )));
        }
        Ok(())
    }
}

pub(crate) fn put_usize_vec(buf: &mut Vec<u8>, v: &[usize]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_u64_le(x as u64);
    }
}

pub(crate) fn put_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_f64_le(x);
    }
}

pub(crate) fn put_matrix(buf: &mut Vec<u8>, m: &Matrix) {
    buf.put_u64_le(m.rows() as u64);
    buf.put_u64_le(m.cols() as u64);
    for &x in m.as_slice() {
        buf.put_f64_le(x);
    }
}

pub(crate) fn put_tensor(buf: &mut Vec<u8>, t: &DenseTensor) {
    put_usize_vec(buf, t.shape());
    for &x in t.as_slice() {
        buf.put_f64_le(x);
    }
}

// ---------------------------------------------------------------------------
// Sliced tensors.
// ---------------------------------------------------------------------------

/// Serializes a [`SlicedTensor`] into a complete container.
pub fn encode_sliced(st: &SlicedTensor) -> Vec<u8> {
    let mut p = Vec::with_capacity(64 + st.memory_bytes() + st.num_slices() * 48);
    put_usize_vec(&mut p, st.shape());
    put_usize_vec(&mut p, st.perm());
    p.put_u64_le(st.slice_rank() as u64);
    p.put_u64_le(st.num_slices() as u64);
    for sl in st.slices() {
        put_matrix(&mut p, &sl.u);
        put_f64_vec(&mut p, &sl.s);
        put_matrix(&mut p, &sl.v);
    }
    p.put_f64_le(st.norm_x_sq());
    encode_container(ArtifactKind::Sliced, &p)
}

/// Decodes a [`SlicedTensor`] container (checksum and structural
/// validation included).
pub fn decode_sliced(bytes: &[u8]) -> Result<SlicedTensor> {
    let (kind, payload) = decode_container(bytes)?;
    if kind != ArtifactKind::Sliced {
        return Err(StoreError::Mismatch(format!(
            "expected a sliced tensor, found a {}",
            kind.describe()
        )));
    }
    let mut r = Reader::new(payload);
    let shape = r.usize_vec("shape")?;
    let perm = r.usize_vec("perm")?;
    let slice_rank = r.len(1, "slice_rank")?;
    let num_slices = r.len(1, "num_slices")?;
    let mut slices = Vec::with_capacity(num_slices);
    for l in 0..num_slices {
        let u = r.matrix(&format!("slice {l} U"))?;
        let s = r.f64_vec(&format!("slice {l} s"))?;
        let v = r.matrix(&format!("slice {l} V"))?;
        slices.push(SliceSvd { u, s, v });
    }
    let norm_x_sq = r.f64("norm")?;
    r.finish("sliced tensor")?;
    SlicedTensor::from_parts(shape, perm, slice_rank, slices, norm_x_sq)
        .map_err(|e| StoreError::Format(e.to_string()))
}

// ---------------------------------------------------------------------------
// Tucker decompositions.
// ---------------------------------------------------------------------------

/// Serializes a [`TuckerDecomp`] into a complete container.
pub fn encode_tucker(d: &TuckerDecomp) -> Vec<u8> {
    let mut p = Vec::new();
    put_tensor(&mut p, &d.core);
    p.put_u64_le(d.factors.len() as u64);
    for f in &d.factors {
        put_matrix(&mut p, f);
    }
    encode_container(ArtifactKind::Tucker, &p)
}

/// Decodes a [`TuckerDecomp`] container, validating shape consistency.
pub fn decode_tucker(bytes: &[u8]) -> Result<TuckerDecomp> {
    let (kind, payload) = decode_container(bytes)?;
    if kind != ArtifactKind::Tucker {
        return Err(StoreError::Mismatch(format!(
            "expected a Tucker decomposition, found a {}",
            kind.describe()
        )));
    }
    let mut r = Reader::new(payload);
    let core = r.tensor("core")?;
    let n = r.len(1, "num factors")?;
    let mut factors = Vec::with_capacity(n);
    for m in 0..n {
        factors.push(r.matrix(&format!("factor {m}"))?);
    }
    r.finish("Tucker decomposition")?;
    let d = TuckerDecomp { core, factors };
    d.validate()
        .map_err(|e| StoreError::Format(e.to_string()))?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_core::{DTucker, DTuckerConfig};
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> (SlicedTensor, TuckerDecomp) {
        let mut rng = StdRng::seed_from_u64(1);
        let x = low_rank_plus_noise(&[12, 10, 5], &[2, 2, 2], 0.05, &mut rng).unwrap();
        let out = DTucker::new(DTuckerConfig::uniform(2, 3).with_seed(2))
            .decompose(&x)
            .unwrap();
        (out.sliced, out.decomposition)
    }

    #[test]
    fn sliced_round_trip_is_bit_exact() {
        let (st, _) = sample();
        let bytes = encode_sliced(&st);
        let back = decode_sliced(&bytes).unwrap();
        assert_eq!(back.shape(), st.shape());
        assert_eq!(back.perm(), st.perm());
        assert_eq!(back.slice_rank(), st.slice_rank());
        assert_eq!(back.norm_x_sq().to_bits(), st.norm_x_sq().to_bits());
        for (a, b) in back.slices().iter().zip(st.slices().iter()) {
            assert_eq!(a.u, b.u);
            assert_eq!(a.s, b.s);
            assert_eq!(a.v, b.v);
        }
    }

    #[test]
    fn tucker_round_trip_is_bit_exact() {
        let (_, d) = sample();
        let bytes = encode_tucker(&d);
        let back = decode_tucker(&bytes).unwrap();
        assert_eq!(back.core.shape(), d.core.shape());
        assert_eq!(back.core.as_slice(), d.core.as_slice());
        assert_eq!(back.factors.len(), d.factors.len());
        for (a, b) in back.factors.iter().zip(d.factors.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let (st, d) = sample();
        assert!(matches!(
            decode_tucker(&encode_sliced(&st)),
            Err(StoreError::Mismatch(_))
        ));
        assert!(matches!(
            decode_sliced(&encode_tucker(&d)),
            Err(StoreError::Mismatch(_))
        ));
    }

    #[test]
    fn container_rejects_damage() {
        let (st, _) = sample();
        let clean = encode_sliced(&st);

        // Too short.
        assert!(matches!(
            decode_container(&clean[..OVERHEAD - 1]),
            Err(StoreError::Format(_))
        ));
        // Bad magic.
        let mut b = clean.clone();
        b[0] = b'X';
        assert!(matches!(decode_sliced(&b), Err(StoreError::Format(_))));
        // Future version.
        let mut b = clean.clone();
        b[4] = 0xFF;
        assert!(matches!(
            decode_sliced(&b),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        // Header length lies.
        let mut b = clean.clone();
        b[8] ^= 0x01;
        assert!(decode_sliced(&b).is_err());
        // Body bit-flip → checksum catches it.
        let mut b = clean.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x40;
        assert!(matches!(decode_sliced(&b), Err(StoreError::Corrupt { .. })));
        // CRC bit-flip → checksum catches it.
        let mut b = clean.clone();
        let last = b.len() - 1;
        b[last] ^= 0x40;
        assert!(matches!(decode_sliced(&b), Err(StoreError::Corrupt { .. })));
        // Truncated payload.
        assert!(decode_sliced(&clean[..clean.len() - 9]).is_err());
    }

    #[test]
    fn reader_guards_lengths() {
        // A payload claiming a gigantic vector must fail before allocating.
        let mut p = Vec::new();
        p.put_u64_le(u64::MAX);
        let bytes = encode_container(ArtifactKind::Sliced, &p);
        assert!(matches!(decode_sliced(&bytes), Err(StoreError::Format(_))));

        // Trailing garbage after a valid structure is rejected.
        let (st, _) = sample();
        let clean = encode_sliced(&st);
        let (_, payload) = decode_container(&clean).unwrap();
        let mut extended = payload.to_vec();
        extended.extend_from_slice(&[0u8; 8]);
        let bytes = encode_container(ArtifactKind::Sliced, &extended);
        assert!(matches!(decode_sliced(&bytes), Err(StoreError::Format(_))));
    }
}
