//! Per-file token model: file classification, `#[cfg(test)]` region
//! detection, and `// dtucker-lint: allow(...)` suppressions.

use crate::lexer::{lex, TokKind, Token};

/// What kind of source a file is; rules apply per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code under `crates/<name>/src/` or the facade `src/lib.rs`.
    /// All rules apply.
    Lib,
    /// Binary targets (`src/bin/*.rs`, `src/main.rs`). Exempt from
    /// `no-unwrap-in-lib`; writers must still be atomic.
    Bin,
    /// Crates that exist to be executed, not linked against (`bench`,
    /// `lint`). Treated like [`FileClass::Bin`].
    Cli,
    /// Integration tests and Criterion benches (`tests/`, `benches/`).
    Test,
    /// Example programs under `examples/`.
    Example,
}

/// Crate directories under `crates/` whose entire contents are command-line
/// tooling rather than linkable library surface.
pub const CLI_CRATES: [&str; 2] = ["bench", "lint"];

/// Classifies a file by its path relative to the scan root.
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    if parts
        .iter()
        .any(|p| *p == "tests" || *p == "benches" || *p == "fixtures")
    {
        return FileClass::Test;
    }
    if parts.contains(&"examples") {
        return FileClass::Example;
    }
    if parts.contains(&"bin") || parts.last() == Some(&"main.rs") {
        return FileClass::Bin;
    }
    if parts.first() == Some(&"crates") && parts.len() > 1 && CLI_CRATES.contains(&parts[1]) {
        return FileClass::Cli;
    }
    FileClass::Lib
}

/// One parsed inline suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment sits on; it covers this line and the next.
    pub line: u32,
    /// Rule names listed inside `allow(...)`.
    pub rules: Vec<String>,
}

/// A lexed source file plus everything rules need to know about it.
pub struct SourceFile {
    /// Path relative to the scan root, with `/` separators.
    pub rel_path: String,
    /// Rule applicability class, derived from the path.
    pub class: FileClass,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Half-open token-index ranges covered by `#[cfg(test)]` / `#[test]`
    /// items.
    pub test_regions: Vec<(usize, usize)>,
    /// Inline `// dtucker-lint: allow(...)` comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and models one file.
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let test_regions = find_test_regions(&tokens);
        let suppressions = find_suppressions(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            class: classify(rel_path),
            tokens,
            test_regions,
            suppressions,
        }
    }

    /// Is token `i` inside a `#[cfg(test)]` / `#[test]` item?
    pub fn in_test_region(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| i >= a && i < b)
    }

    /// Does a suppression for `rule` cover `line`? A suppression comment
    /// covers its own line (trailing form) and the line directly below it.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| (s.line == line || s.line + 1 == line) && s.rules.iter().any(|r| r == rule))
    }

    /// Non-comment token `i`'s nearest preceding non-comment token index.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_comment())
    }

    /// Non-comment token `i`'s nearest following non-comment token index.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| !self.tokens[j].is_comment())
    }

    /// Collects the text of the comment block attached directly above the
    /// line of token `i`: trailing comments earlier on the same line, then
    /// contiguous lines above containing only comments or attributes
    /// (`#[...]`). A blank line or a code line ends the walk.
    pub fn attached_comments_above(&self, i: usize) -> Vec<&str> {
        let line = self.tokens[i].line;
        let col = self.tokens[i].col;
        let mut out: Vec<&str> = Vec::new();
        for t in &self.tokens {
            if t.line == line && t.col < col && t.is_comment() {
                out.push(&t.text);
            }
        }
        // Walk upward line by line while lines hold only comments or
        // attribute tokens.
        let mut l = line;
        while l > 1 {
            l -= 1;
            let line_toks: Vec<&Token> = self.tokens.iter().filter(|t| t.line == l).collect();
            if line_toks.is_empty() {
                break; // blank line detaches the comment block
            }
            let attr_or_comment = line_toks.iter().all(|t| {
                t.is_comment()
                    || matches!(t.kind, TokKind::Punct if ["#", "[", "]", "(", ")", ",", "="].contains(&t.text.as_str()))
                    || matches!(t.kind, TokKind::Ident | TokKind::Str | TokKind::Int)
            });
            // A line of plain code (not just attrs/comments) ends the
            // block; heuristically, attribute lines start with `#` or are
            // pure comments.
            let is_pure_comment = line_toks.iter().all(|t| t.is_comment());
            let is_attr_line = line_toks.first().is_some_and(|t| t.text == "#");
            if is_pure_comment || (is_attr_line && attr_or_comment) {
                for t in line_toks.iter().filter(|t| t.is_comment()) {
                    out.push(&t.text);
                }
            } else {
                break;
            }
        }
        out
    }
}

/// Scans for `#` `[` ... `]` attributes that gate items on `test` and marks
/// the following item's token extent.
fn find_test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (attr_end, is_test) = scan_attribute(tokens, i + 1);
            if is_test {
                let item_end = item_extent(tokens, attr_end);
                regions.push((i, item_end));
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// From the `[` at `open`, finds the matching `]`; returns (index after
/// `]`, whether the attribute gates on test). Recognizes `#[test]`,
/// `#[cfg(test)]`, and any `#[cfg(...)]` that mentions `test`.
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut mentions_test = false;
    let mut first_ident: Option<&str> = None;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth = depth.saturating_sub(1);
                if depth == 0 && t.text == "]" {
                    j += 1;
                    break;
                }
            }
            _ => {
                if t.kind == TokKind::Ident {
                    if first_ident.is_none() {
                        first_ident = Some(&t.text);
                    }
                    if t.text == "test" {
                        mentions_test = true;
                    }
                }
            }
        }
        j += 1;
    }
    let is_test = match first_ident {
        Some("test") => true,
        Some("cfg") => mentions_test,
        _ => false,
    };
    (j, is_test)
}

/// From the first token after an attribute, finds the end of the item it
/// decorates: skips further attributes and doc comments, then scans to the
/// matching `}` of the first `{` (or past a terminating `;`).
fn item_extent(tokens: &[Token], mut i: usize) -> usize {
    // Skip doc comments and further attributes.
    while i < tokens.len() {
        if tokens[i].is_comment() {
            i += 1;
        } else if tokens[i].text == "#" && tokens.get(i + 1).map(|t| t.text.as_str()) == Some("[") {
            let (end, _) = scan_attribute(tokens, i + 1);
            i = end;
        } else {
            break;
        }
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Parses every `dtucker-lint: allow(rule-a, rule-b)` comment.
fn find_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let Some(pos) = t.text.find("dtucker-lint:") else {
            continue;
        };
        let rest = &t.text[pos + "dtucker-lint:".len()..];
        let rest = rest.trim_start();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        let rules: Vec<String> = inner
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            out.push(Suppression {
                line: t.line,
                rules,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/slices.rs"), FileClass::Lib);
        assert_eq!(classify("src/lib.rs"), FileClass::Lib);
        assert_eq!(classify("src/bin/dtucker-cli.rs"), FileClass::Bin);
        assert_eq!(classify("crates/bench/src/lib.rs"), FileClass::Cli);
        assert_eq!(classify("crates/bench/src/bin/exp_rank.rs"), FileClass::Bin);
        assert_eq!(
            classify("crates/core/tests/determinism.rs"),
            FileClass::Test
        );
        assert_eq!(classify("crates/bench/benches/gemm.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn a() { b.unwrap(); }\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "unwrap")
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.in_test_region(unwraps[0]));
        assert!(f.in_test_region(unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"x\")]\nfn a() { b.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.test_regions.is_empty());
    }

    #[test]
    fn suppressions_parse_and_cover_next_line() {
        let src = "// dtucker-lint: allow(no-unwrap-in-lib, no-float-eq)\nlet x = y.unwrap();\nlet z = q.unwrap(); // dtucker-lint: allow(no-unwrap-in-lib)\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.suppressed("no-unwrap-in-lib", 2));
        assert!(f.suppressed("no-float-eq", 2));
        assert!(f.suppressed("no-unwrap-in-lib", 3));
        assert!(!f.suppressed("no-float-eq", 3));
        assert!(!f.suppressed("no-unwrap-in-lib", 5));
    }

    #[test]
    fn attached_comments_walk_up_through_attrs() {
        let src = "// SAFETY: fine\n#[inline]\nunsafe fn f() {}\n";
        let f = SourceFile::parse("crates/linalg/src/x.rs", src);
        let i = f
            .tokens
            .iter()
            .position(|t| t.text == "unsafe")
            .unwrap_or(0);
        let comments = f.attached_comments_above(i);
        assert!(comments.iter().any(|c| c.contains("SAFETY")));
    }

    #[test]
    fn blank_line_detaches_comment() {
        let src = "// SAFETY: stale\n\nunsafe fn f() {}\n";
        let f = SourceFile::parse("crates/linalg/src/x.rs", src);
        let i = f
            .tokens
            .iter()
            .position(|t| t.text == "unsafe")
            .unwrap_or(0);
        assert!(f.attached_comments_above(i).is_empty());
    }
}
