//! # dtucker-lint
//!
//! Project-specific static analysis for the D-Tucker workspace: the rules
//! `clippy` cannot express because they are *project* invariants, not
//! language ones — every `unsafe` carries a SAFETY comment, library code
//! never panics, file writers are crash-atomic, unchecked indexing stays
//! in the GEMM kernels, lib.rs surfaces are documented, and floats are
//! never compared with `==`.
//!
//! Run as `cargo run -p dtucker-lint -- check [--format json]`; CI treats
//! any non-suppressed finding as a failure. Inline suppressions
//! (`// dtucker-lint: allow(<rule>)`) form the allowlist and each one must
//! be documented in DESIGN.md §11.
//!
//! The implementation is dependency-free by necessity (the build
//! environment has no registry access): a hand-rolled lexer
//! ([`lexer`]), a per-file token model ([`model`]), the six rules
//! ([`rules`]), and the walk/render/fix driver ([`runner`]).

#![forbid(unsafe_code)]

/// Hand-rolled Rust lexer: comments, strings, lifetimes, int/float
/// literals.
pub mod lexer;
/// File classification, `#[cfg(test)]` regions, inline suppressions.
pub mod model;
/// The six project rules and their diagnostics.
pub mod rules;
/// Filesystem walk, reporting, and the safety-stub rewriter.
pub mod runner;

pub use model::{FileClass, SourceFile};
pub use rules::{check_file, Diagnostic, RULES};
pub use runner::{check, fix_safety_stubs, Report};
