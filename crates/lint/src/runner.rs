//! Filesystem walk, suppression accounting, report rendering, and the
//! `--fix-safety-stubs` rewriter.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::model::SourceFile;
use crate::rules::{check_file, Diagnostic, RULES};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// Relative path prefixes excluded from a scan of the repository root: the
/// linter's own known-bad fixture tree must not fail the repo check.
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// A suppression that actually shadowed at least one finding, reported so
/// CI and DESIGN.md §11 can audit the allowlist.
#[derive(Debug, Clone)]
pub struct UsedSuppression {
    /// File containing the suppression comment.
    pub path: String,
    /// Line of the suppressed finding.
    pub line: u32,
    /// Rule that was suppressed.
    pub rule: &'static str,
}

/// Outcome of one full scan.
pub struct Report {
    /// Scan root the paths are relative to.
    pub root: PathBuf,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings that survived suppression, sorted by (path, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings shadowed by an inline `allow(...)` comment.
    pub suppressed: Vec<UsedSuppression>,
}

impl Report {
    /// True when the scan found nothing actionable.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(
                s,
                "{}:{}:{}: [{}] {}",
                d.path, d.line, d.col, d.rule, d.message
            );
        }
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for d in &self.diagnostics {
            match counts.iter_mut().find(|(r, _)| *r == d.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.rule, 1)),
            }
        }
        let _ = writeln!(
            s,
            "dtucker-lint: {} file(s) scanned, {} finding(s), {} suppressed",
            self.files_scanned,
            self.diagnostics.len(),
            self.suppressed.len()
        );
        for (rule, n) in counts {
            let _ = writeln!(s, "  {n:>4}  {rule}");
        }
        s
    }

    /// Renders the machine-readable JSON document (schema in DESIGN.md
    /// §11): `{"version":1,"files_scanned":N,"clean":bool,`
    /// `"diagnostics":[{rule,path,line,col,message}],`
    /// `"suppressed":[{rule,path,line}]}`.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"version\":1,\"files_scanned\":{},\"clean\":{},\"diagnostics\":[",
            self.files_scanned,
            self.is_clean()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
                esc(d.rule),
                esc(&d.path),
                d.line,
                d.col,
                esc(&d.message)
            );
        }
        s.push_str("],\"suppressed\":[");
        for (i, u) in self.suppressed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{}}}",
                esc(u.rule),
                esc(&u.path),
                u.line
            );
        }
        s.push_str("]}");
        s
    }
}

fn esc(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Collects every `.rs` file under `root` (sorted, relative paths with `/`
/// separators), skipping [`SKIP_DIRS`] and [`SKIP_PREFIXES`].
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                let rel = rel_str(root, &path);
                if SKIP_PREFIXES.iter().any(|p| rel == *p) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_str(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scans `root`, applies every rule, and filters findings through inline
/// suppressions.
pub fn check(root: &Path) -> io::Result<Report> {
    let paths = collect_sources(root)?;
    let mut diagnostics = Vec::new();
    let mut suppressed = Vec::new();
    let files_scanned = paths.len();
    for path in &paths {
        let src = fs::read_to_string(path)?;
        let rel = rel_str(root, path);
        let file = SourceFile::parse(&rel, &src);
        for d in check_file(&file) {
            if file.suppressed(d.rule, d.line) {
                suppressed.push(UsedSuppression {
                    path: d.path,
                    line: d.line,
                    rule: d.rule,
                });
            } else {
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report {
        root: root.to_path_buf(),
        files_scanned,
        diagnostics,
        suppressed,
    })
}

/// The TODO stub `--fix-safety-stubs` inserts above undocumented `unsafe`.
pub const SAFETY_STUB: &str = "// SAFETY: TODO(dtucker-lint): document why this is sound.";

/// For every `unsafe-needs-safety-comment` finding in `report`, inserts a
/// [`SAFETY_STUB`] line directly above the offending line (matching its
/// indentation) so a human can triage in bulk. Returns the number of stubs
/// written. Files are rewritten atomically.
pub fn fix_safety_stubs(report: &Report) -> io::Result<usize> {
    let mut by_file: Vec<(&str, Vec<u32>)> = Vec::new();
    for d in &report.diagnostics {
        if d.rule != "unsafe-needs-safety-comment" {
            continue;
        }
        match by_file.iter_mut().find(|(p, _)| *p == d.path) {
            Some((_, lines)) => lines.push(d.line),
            None => by_file.push((&d.path, vec![d.line])),
        }
    }
    let mut fixed = 0usize;
    for (rel, mut lines) in by_file {
        lines.sort_unstable();
        lines.dedup();
        let abs = report.root.join(rel);
        let src = fs::read_to_string(&abs)?;
        let mut out: Vec<String> = src.lines().map(str::to_string).collect();
        // Insert bottom-up so earlier line numbers stay valid.
        for &line in lines.iter().rev() {
            let idx = (line as usize).saturating_sub(1);
            if idx > out.len() {
                continue;
            }
            let indent: String = out
                .get(idx)
                .map(|l| l.chars().take_while(|c| c.is_whitespace()).collect())
                .unwrap_or_default();
            out.insert(idx, format!("{indent}{SAFETY_STUB}"));
            fixed += 1;
        }
        let mut joined = out.join("\n");
        if src.ends_with('\n') {
            joined.push('\n');
        }
        dtucker_core::fsutil::atomic_write(&abs, joined.as_bytes())?;
    }
    Ok(fixed)
}

/// Renders the rule registry for `--explain`.
pub fn explain_rules() -> String {
    let mut s = String::from("dtucker-lint rules:\n");
    for r in RULES {
        let _ = writeln!(s, "  {:<32} {}", r.name, r.summary);
    }
    s.push_str("\nsuppress inline with: // dtucker-lint: allow(<rule>[, <rule>…])\n");
    s
}
