//! The six project rules. Each rule is a pure function from a modeled
//! [`SourceFile`] to diagnostics; suppression filtering happens in the
//! runner so suppressed findings can still be counted and audited.

use crate::lexer::{float_text_is_zero, TokKind};
use crate::model::{FileClass, SourceFile};

/// One finding, pointing at a file, line, and column.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (kebab-case, stable — used in suppressions and JSON).
    pub rule: &'static str,
    /// Path relative to the scan root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the expected remedy.
    pub message: String,
}

/// Static description of a rule, for `--explain` output and DESIGN.md.
pub struct RuleInfo {
    /// Stable kebab-case name.
    pub name: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule this linter knows, in diagnostic-sort order.
pub const RULES: [RuleInfo; 6] = [
    RuleInfo {
        name: "unsafe-needs-safety-comment",
        summary: "every `unsafe` block, fn, or impl carries an attached `// SAFETY:` comment",
    },
    RuleInfo {
        name: "no-unwrap-in-lib",
        summary: "`unwrap()` / `expect()` / `panic!` are forbidden in non-test library code",
    },
    RuleInfo {
        name: "atomic-write-required",
        summary:
            "`File::create` / `fs::write` must go through `dtucker_core::fsutil::atomic_write`",
    },
    RuleInfo {
        name: "no-unchecked-index-in-kernels",
        summary: "`get_unchecked` is confined to the linalg GEMM kernel modules",
    },
    RuleInfo {
        name: "pub-fn-needs-doc",
        summary: "exported items on `crates/*/src/lib.rs` surfaces carry doc comments",
    },
    RuleInfo {
        name: "no-float-eq",
        summary: "`==` / `!=` against non-zero float literals or f32/f64 constants outside tests",
    },
];

/// Files where `get_unchecked` is tolerated (still under the SAFETY-comment
/// rule): the register-tile GEMM kernels, where bounds checks measurably
/// cost throughput.
pub const UNCHECKED_ALLOWED_FILES: [&str; 1] = ["crates/linalg/src/gemm.rs"];

/// True for names of f32/f64 associated constants whose comparison by `==`
/// is a bug (`NAN` never equal) or a smell (`EPSILON` etc.).
fn is_float_const(name: &str) -> bool {
    matches!(
        name,
        "NAN" | "INFINITY" | "NEG_INFINITY" | "EPSILON" | "MIN_POSITIVE"
    )
}

/// Runs every rule over one file.
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rule_unsafe_safety_comment(f, &mut out);
    rule_no_unwrap_in_lib(f, &mut out);
    rule_atomic_write(f, &mut out);
    rule_no_unchecked_index(f, &mut out);
    rule_pub_needs_doc(f, &mut out);
    rule_no_float_eq(f, &mut out);
    out
}

fn diag(f: &SourceFile, rule: &'static str, i: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        path: f.rel_path.clone(),
        line: f.tokens[i].line,
        col: f.tokens[i].col,
        message,
    }
}

/// Rule 1: every `unsafe` keyword (block, fn, impl, trait) must have a
/// `SAFETY:` comment attached directly above (or trailing earlier on the
/// same line). Applies to all files, tests included — unsound test code is
/// still unsound.
fn rule_unsafe_safety_comment(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let comments = f.attached_comments_above(i);
        let has_safety = comments
            .iter()
            .any(|c| c.contains("SAFETY:") || c.contains("Safety:") || c.contains("# Safety"));
        if !has_safety {
            out.push(diag(
                f,
                "unsafe-needs-safety-comment",
                i,
                "`unsafe` without an attached `// SAFETY:` comment; document why every \
                 precondition holds at this call site"
                    .to_string(),
            ));
        }
    }
}

/// Rule 2: no `unwrap()` / `expect()` / `panic!` in non-test library code.
fn rule_no_unwrap_in_lib(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.class != FileClass::Lib {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || f.in_test_region(i) {
            continue;
        }
        let prev_is_dot = f.prev_code(i).is_some_and(|j| f.tokens[j].text == ".");
        let next_text = f.next_code(i).map(|j| f.tokens[j].text.as_str());
        let bad = match t.text.as_str() {
            "unwrap" | "expect" => prev_is_dot && next_text == Some("("),
            "panic" => next_text == Some("!"),
            _ => false,
        };
        if bad {
            out.push(diag(
                f,
                "no-unwrap-in-lib",
                i,
                format!(
                    "`{}` in library code can abort the caller; return the crate's typed \
                     error instead",
                    t.text
                ),
            ));
        }
    }
}

/// Rule 3: raw `File::create` / `fs::write` in non-test code must be the
/// atomic helper itself; everything else routes through
/// `dtucker_core::fsutil::atomic_write` so a crash never leaves a torn
/// file.
fn rule_atomic_write(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if matches!(f.class, FileClass::Test | FileClass::Example) {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || f.in_test_region(i) {
            continue;
        }
        let path_head = f.prev_code(i).and_then(|j| {
            (f.tokens[j].text == "::")
                .then(|| f.prev_code(j))
                .flatten()
                .map(|k| f.tokens[k].text.clone())
        });
        let bad = match t.text.as_str() {
            "create" => path_head.as_deref() == Some("File"),
            "write" => path_head.as_deref() == Some("fs"),
            _ => false,
        };
        if bad {
            out.push(diag(
                f,
                "atomic-write-required",
                i,
                "raw file write can tear on crash; route through \
                 `dtucker_core::fsutil::atomic_write` (temp + fsync + rename)"
                    .to_string(),
            ));
        }
    }
}

/// Rule 4: `get_unchecked` / `get_unchecked_mut` only inside the allowed
/// kernel modules.
fn rule_no_unchecked_index(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if UNCHECKED_ALLOWED_FILES.contains(&f.rel_path.as_str()) {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "get_unchecked" || t.text == "get_unchecked_mut")
            && !f.in_test_region(i)
        {
            out.push(diag(
                f,
                "no-unchecked-index-in-kernels",
                i,
                "unchecked indexing is confined to crates/linalg GEMM kernel modules; use \
                 checked indexing here"
                    .to_string(),
            ));
        }
    }
}

/// Rule 5: `pub` items declared on a crate's `lib.rs` surface need doc
/// comments (`pub use` re-exports inherit docs from their definition and
/// are exempt; `pub(crate)` and narrower are not exported).
fn rule_pub_needs_doc(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let is_surface = f.rel_path == "src/lib.rs"
        || (f.rel_path.starts_with("crates/") && f.rel_path.ends_with("/src/lib.rs"));
    if !is_surface {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "pub" || f.in_test_region(i) {
            continue;
        }
        let Some(j) = f.next_code(i) else { continue };
        if f.tokens[j].text == "(" {
            continue; // pub(crate) / pub(super): not exported
        }
        if f.tokens[j].text == "use" {
            continue; // re-export: docs live at the definition
        }
        let comments = f.attached_comments_above(i);
        let has_doc = comments
            .iter()
            .any(|c| (c.starts_with("///") && !c.starts_with("////")) || c.starts_with("/**"));
        if !has_doc {
            let what = f
                .next_code(i)
                .map(|k| f.tokens[k].text.clone())
                .unwrap_or_default();
            out.push(diag(
                f,
                "pub-fn-needs-doc",
                i,
                format!("exported `pub {what}` on a lib.rs surface has no doc comment"),
            ));
        }
    }
}

/// Rule 6: `==` / `!=` where an adjacent operand is a non-zero float
/// literal, an f32/f64 associated constant, or an `as f32/f64` cast.
/// Exact-zero comparisons (`x == 0.0`) are exempt: they are well-defined
/// guards (a value that was never perturbed is still bit-zero), they are
/// ubiquitous in the Householder/Givens kernels, and replacing them with
/// epsilon tests would change numerics the determinism suite pins.
fn rule_no_float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if matches!(f.class, FileClass::Test | FileClass::Example) {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || f.in_test_region(i) {
            continue;
        }
        let mut flagged: Option<String> = None;
        // Left operand: the token just before the operator.
        if let Some(j) = f.prev_code(i) {
            flagged = flagged.or_else(|| float_evidence_left(f, j));
        }
        // Right operand: skip unary minus and parens.
        let mut k = f.next_code(i);
        while let Some(kk) = k {
            if f.tokens[kk].text == "-" || f.tokens[kk].text == "(" {
                k = f.next_code(kk);
            } else {
                break;
            }
        }
        if let Some(kk) = k {
            flagged = flagged.or_else(|| float_evidence_right(f, kk));
        }
        if let Some(evidence) = flagged {
            let hint = if evidence.contains("NAN") {
                "NaN never compares equal; use `.is_nan()`"
            } else {
                "compare with an explicit tolerance or restructure; exact equality on \
                 computed floats is fragile"
            };
            out.push(diag(
                f,
                "no-float-eq",
                i,
                format!("float equality against `{evidence}`; {hint}"),
            ));
        }
    }
}

/// Float evidence ending at token `j` (left side of the operator):
/// a non-zero float literal, `f64::CONST`, or an `as f32/f64` cast.
fn float_evidence_left(f: &SourceFile, j: usize) -> Option<String> {
    let t = &f.tokens[j];
    if t.kind == TokKind::Float && !float_text_is_zero(&t.text) {
        return Some(t.text.clone());
    }
    if t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64") {
        // `x as f64 == …`
        let is_cast = f.prev_code(j).is_some_and(|p| f.tokens[p].text == "as");
        if is_cast {
            return Some(format!("as {}", t.text));
        }
    }
    if t.kind == TokKind::Ident && is_float_const(&t.text) {
        let p1 = f.prev_code(j)?;
        if f.tokens[p1].text == "::" {
            let p2 = f.prev_code(p1)?;
            if f.tokens[p2].text == "f32" || f.tokens[p2].text == "f64" {
                return Some(format!("{}::{}", f.tokens[p2].text, t.text));
            }
        }
    }
    None
}

/// Float evidence starting at token `k` (right side of the operator).
fn float_evidence_right(f: &SourceFile, k: usize) -> Option<String> {
    let t = &f.tokens[k];
    if t.kind == TokKind::Float && !float_text_is_zero(&t.text) {
        return Some(t.text.clone());
    }
    if t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64") {
        let n1 = f.next_code(k)?;
        if f.tokens[n1].text == "::" {
            let n2 = f.next_code(n1)?;
            if is_float_const(&f.tokens[n2].text) {
                return Some(format!("{}::{}", t.text, f.tokens[n2].text));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(&SourceFile::parse(path, src))
    }

    fn rules_hit(d: &[Diagnostic]) -> Vec<&'static str> {
        d.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn unsafe_without_safety_flagged() {
        let d = run(
            "crates/linalg/src/x.rs",
            "fn f() { let x = unsafe { g() }; }\n",
        );
        assert!(rules_hit(&d).contains(&"unsafe-needs-safety-comment"));
    }

    #[test]
    fn unsafe_with_safety_ok() {
        let d = run(
            "crates/linalg/src/x.rs",
            "fn f() {\n    // SAFETY: g has no preconditions.\n    let x = unsafe { g() };\n}\n",
        );
        assert!(!rules_hit(&d).contains(&"unsafe-needs-safety-comment"));
    }

    #[test]
    fn unwrap_in_lib_flagged_but_not_in_bin_or_test() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); }\n";
        assert_eq!(
            rules_hit(&run("crates/core/src/x.rs", src))
                .iter()
                .filter(|r| **r == "no-unwrap-in-lib")
                .count(),
            3
        );
        assert!(run("src/bin/cli.rs", src).is_empty());
        assert!(run("crates/bench/src/lib.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\n";
        assert!(run("crates/core/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn unwrap_like_names_not_flagged() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(g); let expect = 1; }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_trip_rules() {
        let src = "fn f() { let s = \"x.unwrap() panic! File::create\"; } // panic! unsafe\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_writes_flagged_everywhere_but_tests() {
        let src = "fn f() { let _ = File::create(p); std::fs::write(p, b); }\n";
        let d = run("crates/store/src/x.rs", src);
        assert_eq!(
            rules_hit(&d)
                .iter()
                .filter(|r| **r == "atomic-write-required")
                .count(),
            2
        );
        assert!(rules_hit(&run("src/bin/cli.rs", src)).contains(&"atomic-write-required"));
        assert!(run("crates/core/tests/t.rs", src).is_empty());
    }

    #[test]
    fn get_unchecked_confined_to_kernels() {
        let src = "// SAFETY: i < n checked above.\nfn f() { unsafe { a.get_unchecked(i) }; }\n";
        assert!(rules_hit(&run("crates/tensor/src/x.rs", src))
            .contains(&"no-unchecked-index-in-kernels"));
        assert!(!rules_hit(&run("crates/linalg/src/gemm.rs", src))
            .contains(&"no-unchecked-index-in-kernels"));
    }

    #[test]
    fn pub_without_doc_on_surface_flagged() {
        let src = "pub mod x;\n/// Documented.\npub fn y() {}\npub use x::Z;\n";
        let d = run("crates/core/src/lib.rs", src);
        assert_eq!(
            rules_hit(&d)
                .iter()
                .filter(|r| **r == "pub-fn-needs-doc")
                .count(),
            1,
            "{d:?}"
        );
        // Same file off-surface: rule does not apply.
        assert!(run("crates/core/src/other.rs", src).is_empty());
    }

    #[test]
    fn float_eq_flagged_zero_exempt() {
        let lib = "crates/core/src/x.rs";
        assert!(rules_hit(&run(lib, "fn f() { if x == 1.0 {} }\n")).contains(&"no-float-eq"));
        assert!(rules_hit(&run(lib, "fn f() { if 0.5 != x {} }\n")).contains(&"no-float-eq"));
        assert!(rules_hit(&run(lib, "fn f() { if x == f64::NAN {} }\n")).contains(&"no-float-eq"));
        assert!(rules_hit(&run(lib, "fn f() { if x as f64 == y {} }\n")).contains(&"no-float-eq"));
        assert!(run(lib, "fn f() { if x == 0.0 {} }\n").is_empty());
        assert!(run(lib, "fn f() { if x != -0.0 {} }\n").is_empty());
        assert!(run(lib, "fn f() { if n == 3 {} }\n").is_empty());
    }

    #[test]
    fn rule_names_match_registry() {
        let src = "fn f() { x.unwrap(); }\n";
        for d in run("crates/core/src/x.rs", src) {
            assert!(RULES.iter().any(|r| r.name == d.rule));
        }
    }
}
