//! `dtucker-lint` command-line entry point.
//!
//! ```text
//! dtucker-lint check [--root PATH] [--format text|json]
//!                    [--fix-safety-stubs] [--list-suppressions]
//! dtucker-lint rules
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use dtucker_lint::runner;

struct Args {
    root: PathBuf,
    json: bool,
    fix_safety_stubs: bool,
    list_suppressions: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dtucker-lint check [--root PATH] [--format text|json] \
         [--fix-safety-stubs] [--list-suppressions]\n       dtucker-lint rules"
    );
    ExitCode::from(2)
}

/// Locates the workspace root: walk up from the current directory to the
/// first ancestor containing both `Cargo.toml` and `crates/`.
fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn parse_args(argv: &[String]) -> Option<Args> {
    let mut args = Args {
        root: default_root(),
        json: false,
        fix_safety_stubs: false,
        list_suppressions: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next()?),
            "--format" => match it.next()?.as_str() {
                "json" => args.json = true,
                "text" => args.json = false,
                _ => return None,
            },
            "--fix-safety-stubs" => args.fix_safety_stubs = true,
            "--list-suppressions" => args.list_suppressions = true,
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("rules") => {
            print!("{}", runner::explain_rules());
            ExitCode::SUCCESS
        }
        Some("check") => {
            let Some(args) = parse_args(&argv[1..]) else {
                return usage();
            };
            run_check(&args)
        }
        _ => usage(),
    }
}

fn run_check(args: &Args) -> ExitCode {
    let report = match runner::check(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "dtucker-lint: scan failed under {}: {e}",
                args.root.display()
            );
            return ExitCode::from(2);
        }
    };
    if args.fix_safety_stubs {
        match runner::fix_safety_stubs(&report) {
            Ok(n) => eprintln!("dtucker-lint: inserted {n} SAFETY stub(s); re-run check"),
            Err(e) => {
                eprintln!("dtucker-lint: stub insertion failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if args.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if args.list_suppressions {
        for u in &report.suppressed {
            println!("suppressed: {}:{}: {}", u.path, u.line, u.rule);
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
