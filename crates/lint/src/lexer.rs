//! A small hand-rolled Rust lexer.
//!
//! This is not a full implementation of the Rust grammar — it is exactly
//! enough lexing for static analysis: comments (kept, with doc-ness),
//! string/char/byte literals (skipped as opaque tokens so `"panic!"` in a
//! message never trips a rule), raw strings with arbitrary `#` fences,
//! nested block comments, lifetimes vs. char literals, identifiers, and
//! numeric literals with int/float discrimination (needed by the
//! `no-float-eq` rule). Every token carries a 1-based line and column.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `fs`, ...).
    Ident,
    /// Lifetime such as `'static` (distinguished from char literals).
    Lifetime,
    /// Integer literal (including hex/octal/binary and tuple indices).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-5`, `2.5f64`).
    Float,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br##"…"##`.
    Str,
    /// Char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Punctuation; multi-character operators (`==`, `::`, `->`) are one
    /// token.
    Punct,
    /// `// …` comment; `doc` is true for `///` and `//!`.
    LineComment {
        /// True for `///` and `//!` doc comments.
        doc: bool,
    },
    /// `/* … */` comment; `doc` is true for `/** … */` and `/*! … */`.
    BlockComment {
        /// True for `/** … */` and `/*! … */` doc comments.
        doc: bool,
    },
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token (comments keep their markers).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// True if this token is a doc comment (`///`, `//!`, `/** */`,
    /// `/*! */`).
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { doc: true } | TokKind::BlockComment { doc: true }
        )
    }
}

/// Multi-character operators, longest first so lexing is greedy.
const MULTI_PUNCT: [&str; 22] = [
    "..=", "...", "<<=", ">>=", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn starts_with(&self, s: &str) -> bool {
        s.chars().enumerate().all(|(i, c)| self.peek(i) == Some(c))
    }

    fn bump_str(&mut self, s: &str, out: &mut String) {
        for _ in s.chars() {
            if let Some(c) = self.bump() {
                out.push(c);
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: unrecognized bytes become
/// single-character [`TokKind::Punct`] tokens, and unterminated literals
/// or comments simply run to end of file. Static analysis must degrade
/// gracefully on weird input, not abort the whole run.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let mut text = String::new();
        let kind = if cur.starts_with("//") {
            lex_line_comment(&mut cur, &mut text)
        } else if cur.starts_with("/*") {
            lex_block_comment(&mut cur, &mut text)
        } else if is_raw_or_byte_string_start(&cur) {
            lex_string_with_prefix(&mut cur, &mut text)
        } else if c == '"' {
            lex_quoted(&mut cur, &mut text, '"');
            TokKind::Str
        } else if c == '\'' {
            lex_tick(&mut cur, &mut text)
        } else if is_ident_start(c) {
            lex_ident(&mut cur, &mut text);
            TokKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut cur, &mut text, &out)
        } else {
            lex_punct(&mut cur, &mut text);
            TokKind::Punct
        };
        out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor, text: &mut String) -> TokKind {
    // `///` and `//!` are docs; `////…` (4+ slashes) is a plain comment,
    // matching rustdoc's rule.
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
    TokKind::LineComment { doc }
}

fn lex_block_comment(cur: &mut Cursor, text: &mut String) -> TokKind {
    cur.bump_str("/*", text);
    let doc = matches!(cur.peek(0), Some('*') if cur.peek(1) != Some('*') && cur.peek(1) != Some('/'))
        || cur.peek(0) == Some('!');
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            cur.bump_str("/*", text);
            depth += 1;
        } else if cur.starts_with("*/") {
            cur.bump_str("*/", text);
            depth -= 1;
        } else if let Some(c) = cur.bump() {
            text.push(c);
        } else {
            break; // unterminated: run to EOF
        }
    }
    TokKind::BlockComment { doc }
}

/// Does the cursor sit at `r"`, `r#"`, `b"`, `b'`, `br"`, `br#"` …?
fn is_raw_or_byte_string_start(cur: &Cursor) -> bool {
    let (c0, c1) = (cur.peek(0), cur.peek(1));
    match (c0, c1) {
        (Some('r'), Some('"' | '#')) => raw_fence_len(cur, 1).is_some(),
        (Some('b'), Some('"' | '\'')) => true,
        (Some('b'), Some('r')) => raw_fence_len(cur, 2).is_some(),
        _ => false,
    }
}

/// If a raw-string fence (`#…#"` with zero or more hashes) starts at
/// `offset`, returns the number of hashes.
fn raw_fence_len(cur: &Cursor, offset: usize) -> Option<usize> {
    let mut hashes = 0usize;
    loop {
        match cur.peek(offset + hashes) {
            Some('#') => hashes += 1,
            Some('"') => return Some(hashes),
            _ => return None,
        }
    }
}

fn lex_string_with_prefix(cur: &mut Cursor, text: &mut String) -> TokKind {
    // Consume the prefix letters (`r`, `b`, or `br`).
    let mut raw = false;
    while let Some(c) = cur.peek(0) {
        if c == 'r' {
            raw = true;
        }
        if c == 'r' || c == 'b' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if cur.peek(0) == Some('\'') {
        // byte char `b'x'`
        lex_quoted(cur, text, '\'');
        return TokKind::Char;
    }
    if raw {
        let hashes = raw_fence_len(cur, 0).unwrap_or(0);
        for _ in 0..hashes {
            text.push('#');
            cur.bump();
        }
        text.push('"');
        cur.bump();
        let close: String = std::iter::once('"')
            .chain((0..hashes).map(|_| '#'))
            .collect();
        while !cur.starts_with(&close) {
            match cur.bump() {
                Some(c) => text.push(c),
                None => return TokKind::Str, // unterminated
            }
        }
        cur.bump_str(&close, text);
        TokKind::Str
    } else {
        lex_quoted(cur, text, '"');
        TokKind::Str
    }
}

/// Consumes a `quote`-delimited literal with `\` escapes.
fn lex_quoted(cur: &mut Cursor, text: &mut String, quote: char) {
    if let Some(c) = cur.bump() {
        text.push(c); // opening quote
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(e) = cur.bump() {
                text.push(e);
            }
        } else if c == quote {
            return;
        }
    }
}

/// At a `'`: lifetime (`'a`, `'static`) or char literal (`'x'`, `'\n'`).
fn lex_tick(cur: &mut Cursor, text: &mut String) -> TokKind {
    // Lifetime iff the tick is followed by an identifier that is NOT then
    // closed by another tick.
    if cur.peek(1).is_some_and(is_ident_start) {
        let mut end = 2;
        while cur.peek(end).is_some_and(is_ident_continue) {
            end += 1;
        }
        if cur.peek(end) != Some('\'') {
            for _ in 0..end {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            return TokKind::Lifetime;
        }
    }
    lex_quoted(cur, text, '\'');
    TokKind::Char
}

fn lex_ident(cur: &mut Cursor, text: &mut String) {
    if cur.starts_with("r#") {
        cur.bump_str("r#", text); // raw identifier
    }
    while cur.peek(0).is_some_and(is_ident_continue) {
        text.push(cur.peek(0).unwrap_or(' '));
        cur.bump();
    }
}

fn lex_number(cur: &mut Cursor, text: &mut String, prev: &[Token]) -> TokKind {
    // A digit right after a `.` punct is a tuple index (`x.0`): lex the
    // digit run as an Int and do not look for a fractional part.
    let after_dot = prev
        .last()
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == ".");
    if cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b") {
        text.push(cur.peek(0).unwrap_or('0'));
        cur.bump();
        text.push(cur.peek(0).unwrap_or('x'));
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            text.push(cur.peek(0).unwrap_or('0'));
            cur.bump();
        }
        consume_suffix(cur, text);
        return TokKind::Int;
    }
    while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
        text.push(cur.peek(0).unwrap_or('0'));
        cur.bump();
    }
    let mut float = false;
    if !after_dot && cur.peek(0) == Some('.') {
        let next = cur.peek(1);
        // `1..5` is int + range; `1.max()` would be int + method; `1.0`
        // and a bare trailing `1.` are floats.
        let fractional = match next {
            Some('.') => false,
            Some(c) if is_ident_start(c) => false,
            _ => true,
        };
        if fractional {
            float = true;
            text.push('.');
            cur.bump();
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                text.push(cur.peek(0).unwrap_or('0'));
                cur.bump();
            }
        }
    }
    if cur.peek(0).is_some_and(|c| c == 'e' || c == 'E') {
        let (c1, c2) = (cur.peek(1), cur.peek(2));
        let exp = match c1 {
            Some(d) if d.is_ascii_digit() => true,
            Some('+' | '-') => c2.is_some_and(|d| d.is_ascii_digit()),
            _ => false,
        };
        if exp {
            float = true;
            text.push(cur.peek(0).unwrap_or('e'));
            cur.bump();
            while cur
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-' || c == '_')
            {
                text.push(cur.peek(0).unwrap_or('0'));
                cur.bump();
            }
        }
    }
    let suffix = consume_suffix(cur, text);
    if suffix.starts_with('f') {
        float = true;
    } else if !suffix.is_empty() {
        float = false; // `1u64`, `3usize`
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

fn consume_suffix(cur: &mut Cursor, text: &mut String) -> String {
    let mut s = String::new();
    if cur.peek(0).is_some_and(is_ident_start) {
        while cur.peek(0).is_some_and(is_ident_continue) {
            let c = cur.peek(0).unwrap_or(' ');
            s.push(c);
            text.push(c);
            cur.bump();
        }
    }
    s
}

fn lex_punct(cur: &mut Cursor, text: &mut String) {
    for op in MULTI_PUNCT {
        if cur.starts_with(op) {
            cur.bump_str(op, text);
            return;
        }
    }
    if let Some(c) = cur.bump() {
        text.push(c);
    }
}

/// True if a float-literal token text denotes exactly zero (`0.0`, `0.`,
/// `0.00f64`). The `no-float-eq` rule exempts exact-zero guards.
pub fn float_text_is_zero(text: &str) -> bool {
    let t = text
        .trim_end_matches("f32")
        .trim_end_matches("f64")
        .replace('_', "");
    t.chars().all(|c| c == '0' || c == '.') && t.contains('0')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_docs() {
        let toks = kinds("// plain\n/// doc\n//! inner\n//// not doc\n/* block */ /** docb */");
        assert_eq!(toks[0].0, TokKind::LineComment { doc: false });
        assert_eq!(toks[1].0, TokKind::LineComment { doc: true });
        assert_eq!(toks[2].0, TokKind::LineComment { doc: true });
        assert_eq!(toks[3].0, TokKind::LineComment { doc: false });
        assert_eq!(toks[4].0, TokKind::BlockComment { doc: false });
        assert_eq!(toks[5].0, TokKind::BlockComment { doc: true });
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap() panic!"; y"#);
        assert!(toks
            .iter()
            .filter(|t| t.0 == TokKind::Ident)
            .all(|t| t.1 != "unwrap" && t.1 != "panic"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r###"r"a" r#"b"# b"c" br##"d"## b'x' z"###);
        assert_eq!(
            toks.iter().filter(|t| t.0 == TokKind::Str).count(),
            4,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|t| t.0 == TokKind::Char).count(), 1);
        assert_eq!(toks.last().map(|t| t.1.as_str()), Some("z"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("&'a str 'x' '\\n' 'static");
        assert_eq!(toks[1].0, TokKind::Lifetime);
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(toks.last().map(|t| t.0), Some(TokKind::Lifetime));
    }

    #[test]
    fn numbers_int_vs_float() {
        let cases = [
            ("1", TokKind::Int),
            ("1.0", TokKind::Float),
            ("1.", TokKind::Float),
            ("1e5", TokKind::Float),
            ("1e-5", TokKind::Float),
            ("2.5f64", TokKind::Float),
            ("3f32", TokKind::Float),
            ("0x1f", TokKind::Int),
            ("7usize", TokKind::Int),
            ("1_000", TokKind::Int),
        ];
        for (src, want) in cases {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src}");
            assert_eq!(toks[0].kind, want, "{src}");
        }
    }

    #[test]
    fn ranges_and_tuple_indices_are_ints() {
        let toks = kinds("a[1..5]; x.0; y.0.1");
        assert!(toks.iter().all(|t| t.0 != TokKind::Float), "{toks:?}");
        assert!(toks.iter().any(|t| t.1 == ".."));
    }

    #[test]
    fn multi_char_puncts() {
        let toks = kinds("a == b != c :: d -> e => f ..= g");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokKind::Punct)
            .map(|t| t.1.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->", "=>", "..="]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn zero_float_detection() {
        assert!(float_text_is_zero("0.0"));
        assert!(float_text_is_zero("0."));
        assert!(float_text_is_zero("0.00f64"));
        assert!(!float_text_is_zero("0.1"));
        assert!(!float_text_is_zero("1.0"));
    }
}
