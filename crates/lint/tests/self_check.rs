//! The repo lints itself: running dtucker-lint over the workspace root
//! must come back clean. This is the same gate CI enforces, kept as a
//! plain test so `cargo test` alone catches regressions.

use dtucker_lint::runner::check;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/lint -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn repository_lints_clean() {
    let root = repo_root();
    assert!(
        root.join("Cargo.toml").exists() && root.join("crates").is_dir(),
        "workspace root not found at {}",
        root.display()
    );
    let report = check(&root).unwrap();
    assert!(
        report.is_clean(),
        "dtucker-lint found {} issue(s) in the repo:\n{}",
        report.diagnostics.len(),
        report.render_text()
    );
    assert!(report.files_scanned > 50, "scan looks truncated");
}
