//! Runs the linter over the known-bad fixture tree and asserts every rule
//! in the registry is caught by at least one fixture, suppressions are
//! honored, and the JSON rendering is well-formed.

use dtucker_lint::rules::RULES;
use dtucker_lint::runner::check;
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_tree_is_dirty() {
    let report = check(&fixture_root()).unwrap();
    assert!(!report.is_clean(), "fixture tree must produce findings");
    assert!(report.files_scanned >= 3);
}

#[test]
fn every_rule_fires_on_at_least_one_fixture() {
    let report = check(&fixture_root()).unwrap();
    for rule in RULES {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule.name),
            "rule `{}` produced no finding on the fixture tree",
            rule.name
        );
    }
}

#[test]
fn expected_fixture_sites_are_flagged() {
    let report = check(&fixture_root()).unwrap();
    let has = |rule: &str, path: &str| {
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.path == path)
    };
    let lib = "crates/badcrate/src/lib.rs";
    assert!(has("no-unwrap-in-lib", lib));
    assert!(has("no-float-eq", lib));
    assert!(has("atomic-write-required", lib));
    assert!(has("unsafe-needs-safety-comment", lib));
    assert!(has("pub-fn-needs-doc", lib));
    assert!(has(
        "no-unchecked-index-in-kernels",
        "crates/badcrate/src/kernels.rs"
    ));
}

#[test]
fn compliant_snippets_are_not_flagged() {
    let report = check(&fixture_root()).unwrap();
    // The documented-SAFETY unsafe block and the exact-zero comparison
    // must not be flagged.
    for d in &report.diagnostics {
        if d.path == "crates/badcrate/src/lib.rs" {
            assert_ne!(
                (d.rule, d.line),
                ("no-float-eq", 19),
                "exact-zero guard must be exempt"
            );
        }
    }
    // The unsafe block with a SAFETY comment: count unsafe findings — only
    // the undocumented one (plus the fixture in kernels.rs, which has a
    // comment and so is also exempt).
    let unsafe_in_lib: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| {
            d.rule == "unsafe-needs-safety-comment" && d.path == "crates/badcrate/src/lib.rs"
        })
        .collect();
    assert_eq!(
        unsafe_in_lib.len(),
        1,
        "exactly one undocumented unsafe block expected, got {unsafe_in_lib:?}"
    );
}

#[test]
fn suppressions_are_honored_and_reported() {
    let report = check(&fixture_root()).unwrap();
    assert!(
        report
            .suppressed
            .iter()
            .any(|s| s.rule == "no-unwrap-in-lib" && s.path == "crates/okcrate/src/helpers.rs"),
        "suppression in helpers.rs must be recorded"
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path == "crates/okcrate/src/helpers.rs"),
        "suppressed finding must not surface as a diagnostic"
    );
}

#[test]
fn json_report_is_well_formed() {
    let report = check(&fixture_root()).unwrap();
    let json = report.render_json();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"version\":1"));
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("\"diagnostics\""));
    assert!(json.contains("no-unchecked-index-in-kernels"));
    // Paths must be forward-slash relative, never absolute.
    assert!(!json.contains(fixture_root().to_string_lossy().as_ref()));
}
