//! Suppression fixture: the single unwrap below carries an inline
//! allowlist comment, so it must land in `Report::suppressed`, not in
//! `Report::diagnostics`.

/// First element, panicking on empty input (documented contract).
pub fn first(v: &[i32]) -> i32 {
    // dtucker-lint: allow(no-unwrap-in-lib)
    *v.first().unwrap()
}
