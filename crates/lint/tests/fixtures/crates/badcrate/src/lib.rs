//! Deliberately bad crate for the dtucker-lint self-test. Every rule in
//! the registry must be caught by at least one snippet below — the
//! integration tests assert exactly that. This file is excluded from the
//! real repo scan (see `SKIP_PREFIXES`) and never compiled.

pub mod kernels;

pub fn undocumented_unwrap(v: &[i32]) -> i32 {
    *v.first().unwrap()
}

/// Compares floats with `==` (no-float-eq).
pub fn float_eq(a: f64) -> bool {
    a == 1.5
}

/// Exact-zero comparisons are exempt from no-float-eq by design.
pub fn zero_guard(a: f64) -> bool {
    a == 0.0
}

/// Writes a file directly instead of via the atomic helper
/// (atomic-write-required).
pub fn raw_write(path: &std::path::Path, bytes: &[u8]) {
    let _ = std::fs::write(path, bytes);
}

/// Unsafe block without a SAFETY comment (unsafe-needs-safety-comment).
pub fn no_safety(p: *const i32) -> i32 {
    unsafe { *p }
}

/// Unsafe block WITH a SAFETY comment — must not be flagged.
pub fn has_safety(p: *const i32) -> i32 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    // Unwraps inside test regions are fine.
    #[test]
    fn unwrap_in_test_is_fine() {
        let v = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
