//! Fixture for no-unchecked-index-in-kernels: `get_unchecked` outside the
//! allowlisted GEMM kernel file.

/// Reads an element without a bounds check.
pub fn read_fast(v: &[f64], i: usize) -> f64 {
    // SAFETY: the caller promises `i < v.len()`.
    unsafe { *v.get_unchecked(i) }
}
