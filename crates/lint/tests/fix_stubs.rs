//! `--fix-safety-stubs` end-to-end: copy the bad fixture into a scratch
//! tree, run the fixer, and verify the inserted TODO stubs silence the
//! unsafe-needs-safety-comment findings (and only those).

use dtucker_lint::runner::{check, fix_safety_stubs, SAFETY_STUB};
use std::fs;
use std::path::{Path, PathBuf};

fn scratch_tree(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtucker-lint-fix-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let src_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for rel in [
        "crates/badcrate/src/lib.rs",
        "crates/badcrate/src/kernels.rs",
    ] {
        let dst = dir.join(rel);
        fs::create_dir_all(dst.parent().unwrap()).unwrap();
        fs::copy(src_root.join(rel), &dst).unwrap();
    }
    dir
}

#[test]
fn stubs_silence_unsafe_findings() {
    let dir = scratch_tree("a");
    let before = check(&dir).unwrap();
    let unsafe_before = before
        .diagnostics
        .iter()
        .filter(|d| d.rule == "unsafe-needs-safety-comment")
        .count();
    assert!(unsafe_before >= 1, "fixture must have undocumented unsafe");

    let fixed = fix_safety_stubs(&before).unwrap();
    assert_eq!(fixed, unsafe_before, "one stub per finding");

    let rewritten = fs::read_to_string(dir.join("crates/badcrate/src/lib.rs")).unwrap();
    assert!(rewritten.contains(SAFETY_STUB), "stub text inserted");

    let after = check(&dir).unwrap();
    assert_eq!(
        after
            .diagnostics
            .iter()
            .filter(|d| d.rule == "unsafe-needs-safety-comment")
            .count(),
        0,
        "stubs must satisfy the rule:\n{}",
        after.render_text()
    );
    // The other findings are untouched by the fixer.
    let others = |r: &dtucker_lint::Report| {
        r.diagnostics
            .iter()
            .filter(|d| d.rule != "unsafe-needs-safety-comment")
            .count()
    };
    assert_eq!(others(&before), others(&after));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fixer_is_a_no_op_on_clean_trees() {
    let dir = scratch_tree("b");
    let report = check(&dir).unwrap();
    fix_safety_stubs(&report).unwrap();
    let snapshot = fs::read_to_string(dir.join("crates/badcrate/src/lib.rs")).unwrap();
    let again = check(&dir).unwrap();
    assert_eq!(
        fix_safety_stubs(&again).unwrap(),
        0,
        "second pass finds nothing"
    );
    assert_eq!(
        fs::read_to_string(dir.join("crates/badcrate/src/lib.rs")).unwrap(),
        snapshot,
        "no further rewrites"
    );
    let _ = fs::remove_dir_all(&dir);
}
