//! Property-based tests for the tensor substrate.

use dtucker_linalg::Matrix;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::unfold::{fold, inverse_permutation, permute, unfold};
use dtucker_tensor::{io, ttm};
use proptest::prelude::*;

/// Strategy: an order-2..4 tensor with dims in [1, 6].
fn tensor_strategy() -> impl Strategy<Value = DenseTensor> {
    proptest::collection::vec(1usize..=6, 2..=4).prop_flat_map(|shape| {
        let n: usize = shape.iter().product();
        proptest::collection::vec(-100.0f64..100.0, n)
            .prop_map(move |data| DenseTensor::from_vec(&shape, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn unfold_fold_round_trip(x in tensor_strategy(), mode_seed in 0usize..16) {
        let mode = mode_seed % x.order();
        let m = unfold(&x, mode).unwrap();
        prop_assert_eq!(m.shape().0, x.shape()[mode]);
        let back = fold(&m, mode, x.shape()).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn unfold_preserves_norm(x in tensor_strategy(), mode_seed in 0usize..16) {
        let mode = mode_seed % x.order();
        let m = unfold(&x, mode).unwrap();
        prop_assert!((m.fro_norm() - x.fro_norm()).abs() < 1e-9 * (1.0 + x.fro_norm()));
    }

    #[test]
    fn io_round_trip(x in tensor_strategy()) {
        let bytes = io::to_bytes(&x);
        let back = io::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn io_from_bytes_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Malformed input must produce Err, never a panic.
        let _ = io::from_bytes(&bytes);
    }

    #[test]
    fn io_rejects_any_truncation(x in tensor_strategy(), cut in 1usize..64) {
        let bytes = io::to_bytes(&x);
        let cut = cut.min(bytes.len());
        prop_assert!(io::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn permute_round_trip(x in tensor_strategy(), rot in 0usize..4) {
        // A cyclic rotation is always a valid permutation.
        let n = x.order();
        let order: Vec<usize> = (0..n).map(|i| (i + rot) % n).collect();
        let p = permute(&x, &order).unwrap();
        let back = permute(&p, &inverse_permutation(&order)).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn ttm_linearity(x in tensor_strategy(), scale in -3.0f64..3.0) {
        // (αA) ×ₙ X = α (A ×ₙ X).
        let mode = 0;
        let i_n = x.shape()[mode];
        let a = Matrix::from_fn(2, i_n, |r, c| ((r + c) as f64).sin());
        let mut a_scaled = a.clone();
        a_scaled.scale(scale);
        let y1 = ttm::ttm(&x, &a_scaled, mode).unwrap();
        let mut y2 = ttm::ttm(&x, &a, mode).unwrap();
        y2.scale(scale);
        prop_assert!(y1.sub(&y2).unwrap().fro_norm() < 1e-8 * (1.0 + y2.fro_norm()));
    }

    #[test]
    fn ttm_matches_unfolded_product(x in tensor_strategy(), mode_seed in 0usize..16) {
        let mode = mode_seed % x.order();
        let i_n = x.shape()[mode];
        let a = Matrix::from_fn(3, i_n, |r, c| ((r * 7 + c * 3) as f64).cos());
        let y = ttm::ttm(&x, &a, mode).unwrap();
        let y_unf = unfold(&y, mode).unwrap();
        let expected = dtucker_linalg::gemm::matmul(&a, &unfold(&x, mode).unwrap());
        prop_assert!(y_unf.max_abs_diff(&expected) < 1e-9 * (1.0 + expected.max_abs()));
    }

    #[test]
    fn frontal_slices_partition_norm(x in tensor_strategy()) {
        let total_sq = x.fro_norm_sq();
        let mut acc = 0.0;
        for l in 0..x.num_frontal_slices() {
            let s = x.frontal_slice(l).unwrap();
            let n = s.fro_norm();
            acc += n * n;
        }
        prop_assert!((acc - total_sq).abs() < 1e-7 * (1.0 + total_sq));
    }
}
