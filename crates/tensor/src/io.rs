//! Binary tensor serialization.
//!
//! A minimal self-describing little-endian format (`.dten`):
//!
//! ```text
//! magic   4 bytes  "DTEN"
//! version u32      1
//! order   u32
//! dims    order × u64
//! data    numel × f64   (Fortran element order)
//! ```

use crate::dense::{num_elements, DenseTensor};
use crate::error::{Result, TensorError};
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: &[u8; 4] = b"DTEN";
const VERSION: u32 = 1;

/// Byte length of a `.dten` header for an order-`n` tensor (magic +
/// version + order + dims). The f64 payload starts at this offset.
pub fn header_len(order: usize) -> u64 {
    12 + order as u64 * 8
}

/// Serializes a tensor into a byte vector.
pub fn to_bytes(t: &DenseTensor) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + t.shape().len() * 8 + t.numel() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(t.order() as u32);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.as_slice() {
        buf.put_f64_le(v);
    }
    buf
}

/// Deserializes a tensor from bytes produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<DenseTensor> {
    if buf.remaining() < 12 {
        return Err(TensorError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TensorError::Format(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TensorError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let order = buf.get_u32_le() as usize;
    if order == 0 || order > 16 {
        return Err(TensorError::Format(format!("implausible order {order}")));
    }
    if buf.remaining() < order * 8 {
        return Err(TensorError::Format("truncated dims".into()));
    }
    let mut shape = Vec::with_capacity(order);
    for _ in 0..order {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(TensorError::Format("zero dimension".into()));
        }
        shape.push(d);
    }
    let n = num_elements(&shape);
    if buf.remaining() != n * 8 {
        return Err(TensorError::Format(format!(
            "payload has {} bytes, expected {}",
            buf.remaining(),
            n * 8
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f64_le());
    }
    DenseTensor::from_vec(&shape, data)
}

/// Reads and validates a `.dten` header from a reader positioned at the
/// start of the file, returning the shape. After this call the reader is
/// positioned at the f64 payload (offset [`header_len`]). Out-of-core
/// readers use this to learn the shape without loading the data.
pub fn read_header(r: &mut impl Read) -> Result<Vec<usize>> {
    let mut head = [0u8; 12];
    read_exact_or(r, &mut head, "header")?;
    let mut buf = &head[..];
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TensorError::Format(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TensorError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let order = buf.get_u32_le() as usize;
    if order == 0 || order > 16 {
        return Err(TensorError::Format(format!("implausible order {order}")));
    }
    let mut dims = vec![0u8; order * 8];
    read_exact_or(r, &mut dims, "dims")?;
    let mut buf = &dims[..];
    let mut shape = Vec::with_capacity(order);
    for _ in 0..order {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(TensorError::Format("zero dimension".into()));
        }
        shape.push(d);
    }
    Ok(shape)
}

fn read_exact_or(r: &mut impl Read, buf: &mut [u8], what: &str) -> Result<()> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => TensorError::Format(format!("truncated {what}")),
        _ => TensorError::Io(e.to_string()),
    })
}

/// Writes `bytes` to `path` **atomically**: the data goes to a freshly
/// named temporary file in the same directory, is flushed and fsynced,
/// then renamed over the destination. A crash mid-write leaves either the
/// old file or nothing — never a torn artifact. All dtucker file writers
/// (`.dten` tensors and the `dtucker-store` artifact formats) go through
/// this helper.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let path = path.as_ref();
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        name.to_string_lossy(),
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let write = (|| {
        // This IS the atomic-write helper every other writer must route
        // through; the raw create targets the private temp file.
        // dtucker-lint: allow(atomic-write-required)
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Writes a tensor to a file (atomically — see [`atomic_write`]).
pub fn save(t: &DenseTensor, path: impl AsRef<Path>) -> Result<()> {
    Ok(atomic_write(path, &to_bytes(t))?)
}

/// Reads a tensor from a file.
pub fn load(path: impl AsRef<Path>) -> Result<DenseTensor> {
    let mut r = BufReader::new(File::open(path)?);
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> DenseTensor {
        DenseTensor::from_fn(&[3, 4, 2], |idx| {
            idx[0] as f64 + idx[1] as f64 * 0.5 - idx[2] as f64 * 2.25
        })
        .unwrap()
    }

    #[test]
    fn bytes_round_trip() {
        let t = example();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn file_round_trip() {
        let t = example();
        let dir = std::env::temp_dir().join("dtucker_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tensor.dten");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&example());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(TensorError::Format(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&example());
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&example());
        assert!(from_bytes(&bytes[..10]).is_err());
        assert!(from_bytes(&bytes[..bytes.len() - 8]).is_err());
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn rejects_zero_dim_and_bad_order() {
        let mut buf = Vec::new();
        buf.put_slice(b"DTEN");
        buf.put_u32_le(1);
        buf.put_u32_le(2);
        buf.put_u64_le(0);
        buf.put_u64_le(3);
        assert!(from_bytes(&buf).is_err());

        let mut buf = Vec::new();
        buf.put_slice(b"DTEN");
        buf.put_u32_le(1);
        buf.put_u32_le(99); // implausible order
        assert!(from_bytes(&buf).is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/place/t.dten").unwrap_err();
        assert!(matches!(err, TensorError::Io(_)));
    }

    #[test]
    fn read_header_streams_shape() {
        let t = example();
        let bytes = to_bytes(&t);
        let mut r = &bytes[..];
        let shape = read_header(&mut r).unwrap();
        assert_eq!(shape, vec![3, 4, 2]);
        // Reader is now positioned at the payload.
        assert_eq!(r.len() as u64, bytes.len() as u64 - header_len(3));
        let mut first = [0u8; 8];
        r.read_exact(&mut first).unwrap();
        assert_eq!(f64::from_le_bytes(first), t.as_slice()[0]);
        // Truncated header is a Format error, not a panic.
        let mut short = &bytes[..6];
        assert!(matches!(
            read_header(&mut short),
            Err(TensorError::Format(_))
        ));
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("dtucker_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp files are left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
        // A destination without a file name errors instead of panicking.
        assert!(atomic_write("/", b"x").is_err());
    }
}
