//! Binary tensor serialization.
//!
//! A minimal self-describing little-endian format (`.dten`):
//!
//! ```text
//! magic   4 bytes  "DTEN"
//! version u32      1
//! order   u32
//! dims    order × u64
//! data    numel × f64   (Fortran element order)
//! ```

use crate::dense::{num_elements, DenseTensor};
use crate::error::{Result, TensorError};
use bytes::{Buf, BufMut};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DTEN";
const VERSION: u32 = 1;

/// Serializes a tensor into a byte vector.
pub fn to_bytes(t: &DenseTensor) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + t.shape().len() * 8 + t.numel() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(t.order() as u32);
    for &d in t.shape() {
        buf.put_u64_le(d as u64);
    }
    for &v in t.as_slice() {
        buf.put_f64_le(v);
    }
    buf
}

/// Deserializes a tensor from bytes produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<DenseTensor> {
    if buf.remaining() < 12 {
        return Err(TensorError::Format("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TensorError::Format(format!("bad magic {magic:?}")));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TensorError::Format(format!(
            "unsupported version {version}"
        )));
    }
    let order = buf.get_u32_le() as usize;
    if order == 0 || order > 16 {
        return Err(TensorError::Format(format!("implausible order {order}")));
    }
    if buf.remaining() < order * 8 {
        return Err(TensorError::Format("truncated dims".into()));
    }
    let mut shape = Vec::with_capacity(order);
    for _ in 0..order {
        let d = buf.get_u64_le() as usize;
        if d == 0 {
            return Err(TensorError::Format("zero dimension".into()));
        }
        shape.push(d);
    }
    let n = num_elements(&shape);
    if buf.remaining() != n * 8 {
        return Err(TensorError::Format(format!(
            "payload has {} bytes, expected {}",
            buf.remaining(),
            n * 8
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(buf.get_f64_le());
    }
    DenseTensor::from_vec(&shape, data)
}

/// Writes a tensor to a file.
pub fn save(t: &DenseTensor, path: impl AsRef<Path>) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&to_bytes(t))?;
    w.flush()?;
    Ok(())
}

/// Reads a tensor from a file.
pub fn load(path: impl AsRef<Path>) -> Result<DenseTensor> {
    let mut r = BufReader::new(File::open(path)?);
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> DenseTensor {
        DenseTensor::from_fn(&[3, 4, 2], |idx| {
            idx[0] as f64 + idx[1] as f64 * 0.5 - idx[2] as f64 * 2.25
        })
        .unwrap()
    }

    #[test]
    fn bytes_round_trip() {
        let t = example();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn file_round_trip() {
        let t = example();
        let dir = std::env::temp_dir().join("dtucker_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tensor.dten");
        save(&t, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&example());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(TensorError::Format(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&example());
        bytes[4] = 99;
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&example());
        assert!(from_bytes(&bytes[..10]).is_err());
        assert!(from_bytes(&bytes[..bytes.len() - 8]).is_err());
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn rejects_zero_dim_and_bad_order() {
        let mut buf = Vec::new();
        buf.put_slice(b"DTEN");
        buf.put_u32_le(1);
        buf.put_u32_le(2);
        buf.put_u64_le(0);
        buf.put_u64_le(3);
        assert!(from_bytes(&buf).is_err());

        let mut buf = Vec::new();
        buf.put_slice(b"DTEN");
        buf.put_u32_le(1);
        buf.put_u32_le(99); // implausible order
        assert!(from_bytes(&buf).is_err());
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load("/nonexistent/place/t.dten").unwrap_err();
        assert!(matches!(err, TensorError::Io(_)));
    }
}
