//! Random tensor generators used by tests and benchmarks.
//!
//! Domain-specific workload generators (video, traffic, …) live in the
//! `dtucker-data` crate; these are the generic building blocks.

use crate::dense::DenseTensor;
use crate::error::Result;
use crate::ttm::ttm;
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::qr::orthonormalize;
use dtucker_linalg::random::{gaussian, gaussian_matrix};
use rand::Rng;

/// A tensor of i.i.d. uniform entries in `[lo, hi)`.
pub fn uniform_tensor<R: Rng + ?Sized>(
    shape: &[usize],
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> Result<DenseTensor> {
    DenseTensor::from_fn(shape, |_| rng.gen_range(lo..hi))
}

/// A tensor of i.i.d. standard normal entries.
pub fn gaussian_tensor<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Result<DenseTensor> {
    DenseTensor::from_fn(shape, |_| gaussian(rng))
}

/// A random Tucker model: orthonormal factors plus a Gaussian core.
#[derive(Debug, Clone)]
pub struct RandomTucker {
    /// Orthonormal factor matrices `Iₙ × Jₙ`.
    pub factors: Vec<Matrix>,
    /// Gaussian core tensor of shape `ranks`.
    pub core: DenseTensor,
}

/// Draws a random Tucker model with the given shape and multilinear ranks.
pub fn random_tucker<R: Rng + ?Sized>(
    shape: &[usize],
    ranks: &[usize],
    rng: &mut R,
) -> Result<RandomTucker> {
    assert_eq!(shape.len(), ranks.len(), "shape/ranks order mismatch");
    // Ranks can never exceed the corresponding dimension.
    let ranks: Vec<usize> = ranks
        .iter()
        .zip(shape.iter())
        .map(|(&j, &i)| j.min(i))
        .collect();
    let factors: Vec<Matrix> = shape
        .iter()
        .zip(ranks.iter())
        .map(|(&i, &j)| orthonormalize(&gaussian_matrix(i, j, rng)))
        .collect();
    let core = gaussian_tensor(&ranks, rng)?;
    Ok(RandomTucker { factors, core })
}

impl RandomTucker {
    /// Expands the model to the full tensor `G ×₁ A⁽¹⁾ ⋯ ×_N A⁽ᴺ⁾`.
    pub fn expand(&self) -> Result<DenseTensor> {
        let mut t = self.core.clone();
        for (mode, f) in self.factors.iter().enumerate() {
            t = ttm(&t, f, mode)?;
        }
        Ok(t)
    }
}

/// A low-multilinear-rank tensor plus Gaussian noise:
/// `X = expand(random_tucker) + noise_level · ‖signal‖/‖noise‖ · N`.
///
/// `noise_level` is the resulting noise-to-signal Frobenius ratio, so the
/// optimal rank-`ranks` relative reconstruction error is ≈
/// `noise_level² / (1 + noise_level²)`.
pub fn low_rank_plus_noise<R: Rng + ?Sized>(
    shape: &[usize],
    ranks: &[usize],
    noise_level: f64,
    rng: &mut R,
) -> Result<DenseTensor> {
    let model = random_tucker(shape, ranks, rng)?;
    let mut x = model.expand()?;
    if noise_level > 0.0 {
        let noise = gaussian_tensor(shape, rng)?;
        let scale = noise_level * x.fro_norm() / noise.fro_norm().max(f64::MIN_POSITIVE);
        x.axpy(scale, &noise)?;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform_tensor(&[4, 5, 2], -1.0, 1.0, &mut rng).unwrap();
        assert!(t.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }

    #[test]
    fn random_tucker_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = random_tucker(&[8, 7, 6], &[3, 2, 4], &mut rng).unwrap();
        assert_eq!(m.factors[0].shape(), (8, 3));
        assert_eq!(m.factors[2].shape(), (6, 4));
        assert_eq!(m.core.shape(), &[3, 2, 4]);
        let x = m.expand().unwrap();
        assert_eq!(x.shape(), &[8, 7, 6]);
        // Orthonormal factors preserve the core's norm.
        assert!((x.fro_norm() - m.core.fro_norm()).abs() < 1e-9);
    }

    #[test]
    fn low_rank_plus_noise_has_expected_noise_ratio() {
        let mut rng = StdRng::seed_from_u64(3);
        let clean = low_rank_plus_noise(&[10, 9, 8], &[2, 2, 2], 0.0, &mut rng).unwrap();
        assert_eq!(clean.shape(), &[10, 9, 8]);

        let mut rng = StdRng::seed_from_u64(4);
        let model = random_tucker(&[10, 9, 8], &[2, 2, 2], &mut rng).unwrap();
        let signal = model.expand().unwrap();
        let mut rng2 = StdRng::seed_from_u64(4);
        let noisy = low_rank_plus_noise(&[10, 9, 8], &[2, 2, 2], 0.1, &mut rng2).unwrap();
        let resid = noisy.sub(&signal).unwrap();
        let ratio = resid.fro_norm() / signal.fro_norm();
        assert!((ratio - 0.1).abs() < 1e-9, "noise ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank_plus_noise(&[5, 5, 5], &[2, 2, 2], 0.05, &mut StdRng::seed_from_u64(7))
            .unwrap();
        let b = low_rank_plus_noise(&[5, 5, 5], &[2, 2, 2], 0.05, &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ranks_clamped_to_dims() {
        let mut rng = StdRng::seed_from_u64(8);
        let m = random_tucker(&[3, 4], &[5, 2], &mut rng).unwrap();
        // Rank clamped to dimension 3.
        assert_eq!(m.factors[0].shape(), (3, 3));
    }
}
