//! Dense N-order tensor with Fortran (first-index-fastest) element order.
//!
//! The layout choice follows the MATLAB heritage of the Tucker literature:
//! with the first index fastest, the mode-1 unfolding and — crucially for
//! D-Tucker — the *frontal slices* `X[:, :, i₃, …, i_N]` are contiguous
//! windows of the buffer.

use crate::error::{Result, TensorError};
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::norms;

/// A dense tensor of `f64` values.
///
/// Element `(i₁, …, i_N)` lives at linear offset
/// `i₁ + I₁·(i₂ + I₂·(i₃ + …))`.
#[derive(Clone, PartialEq)]
pub struct DenseTensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

/// Product of a shape's dimensions.
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl DenseTensor {
    /// Creates a zero tensor of the given shape.
    ///
    /// Returns an error for an empty shape or any zero dimension.
    pub fn zeros(shape: &[usize]) -> Result<Self> {
        validate_shape("zeros", shape)?;
        Ok(DenseTensor {
            shape: shape.to_vec(),
            data: vec![0.0; num_elements(shape)],
        })
    }

    /// Wraps a data buffer (Fortran element order) with a shape.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Result<Self> {
        validate_shape("from_vec", shape)?;
        if data.len() != num_elements(shape) {
            return Err(TensorError::ShapeMismatch {
                op: "from_vec",
                details: format!(
                    "shape {:?} needs {} elements, got {}",
                    shape,
                    num_elements(shape),
                    data.len()
                ),
            });
        }
        Ok(DenseTensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Builds a tensor by evaluating `f` at every multi-index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Result<Self> {
        validate_shape("from_fn", shape)?;
        let n = num_elements(shape);
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; shape.len()];
        for _ in 0..n {
            data.push(f(&idx));
            increment_index(&mut idx, shape);
        }
        Ok(DenseTensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's order (number of modes).
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw buffer (Fortran element order).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor and returns the raw buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Linear offset of a multi-index.
    #[inline]
    pub fn linear_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len());
        let mut off = 0usize;
        let mut stride = 1usize;
        for (i, (&ix, &dim)) in idx.iter().zip(self.shape.iter()).enumerate() {
            debug_assert!(ix < dim, "index {ix} out of range for mode {i} (dim {dim})");
            let _ = i;
            off += ix * stride;
            stride *= dim;
        }
        off
    }

    /// Reads the element at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[self.linear_index(idx)]
    }

    /// Writes the element at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: f64) {
        let off = self.linear_index(idx);
        self.data[off] = v;
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        norms::fro_norm(&self.data)
    }

    /// Squared Frobenius norm.
    pub fn fro_norm_sq(&self) -> f64 {
        let n = self.fro_norm();
        n * n
    }

    /// Scales all entries in place.
    pub fn scale(&mut self, s: f64) {
        norms::scale(&mut self.data, s);
    }

    /// `self += alpha * other`; shapes must match.
    pub fn axpy(&mut self, alpha: f64, other: &DenseTensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                details: format!("{:?} vs {:?}", self.shape, other.shape),
            });
        }
        norms::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// `self - other` as a new tensor.
    pub fn sub(&self, other: &DenseTensor) -> Result<DenseTensor> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                details: format!("{:?} vs {:?}", self.shape, other.shape),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Ok(DenseTensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Relative squared reconstruction error `‖self − other‖²_F / ‖self‖²_F`.
    pub fn relative_error_sq(&self, other: &DenseTensor) -> Result<f64> {
        let diff = self.sub(other)?;
        let denom = self.fro_norm_sq();
        Ok(if denom == 0.0 {
            0.0
        } else {
            diff.fro_norm_sq() / denom
        })
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// True when every entry is finite (no NaN/±∞).
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Result<DenseTensor> {
        validate_shape("reshape", shape)?;
        if num_elements(shape) != self.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                details: format!("{:?} -> {:?}", self.shape, shape),
            });
        }
        Ok(DenseTensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Extracts the hyper-rectangle with half-open per-mode bounds
    /// `[lo, hi)` as a new tensor of shape `(hi₁−lo₁, …, hi_N−lo_N)`.
    ///
    /// This is the *naive* range extraction: it requires the full tensor to
    /// be resident. The query engine reconstructs the same hyper-rectangle
    /// straight from Tucker factors; this method is its correctness oracle.
    pub fn subtensor(&self, bounds: &[(usize, usize)]) -> Result<DenseTensor> {
        if bounds.len() != self.order() {
            return Err(TensorError::ShapeMismatch {
                op: "subtensor",
                details: format!("{} bounds for order-{} tensor", bounds.len(), self.order()),
            });
        }
        for (n, (&(lo, hi), &dim)) in bounds.iter().zip(self.shape.iter()).enumerate() {
            if lo >= hi || hi > dim {
                return Err(TensorError::ShapeMismatch {
                    op: "subtensor",
                    details: format!("bounds {lo}..{hi} invalid for mode {n} of size {dim}"),
                });
            }
        }
        let out_shape: Vec<usize> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
        let mut out = DenseTensor::zeros(&out_shape)?;
        // Runs along mode 0 are contiguous in Fortran layout: walk an
        // odometer over the trailing modes and copy one run per tick.
        let strides: Vec<usize> = {
            let mut s = Vec::with_capacity(self.order());
            let mut acc = 1usize;
            for &d in &self.shape {
                s.push(acc);
                acc *= d;
            }
            s
        };
        let run = out_shape[0];
        let nruns: usize = out_shape[1..].iter().product();
        let mut idx = vec![0usize; self.order().saturating_sub(1)];
        let dst = out.as_mut_slice();
        for r in 0..nruns {
            let mut src_off = bounds[0].0;
            for (k, &i) in idx.iter().enumerate() {
                src_off += (bounds[k + 1].0 + i) * strides[k + 1];
            }
            dst[r * run..(r + 1) * run].copy_from_slice(&self.data[src_off..src_off + run]);
            for (k, i) in idx.iter_mut().enumerate() {
                *i += 1;
                if *i < out_shape[k + 1] {
                    break;
                }
                *i = 0;
            }
        }
        Ok(out)
    }

    /// Number of frontal slices `L = I₃ · I₄ ⋯ I_N` (1 for order-2 tensors).
    pub fn num_frontal_slices(&self) -> usize {
        if self.order() <= 2 {
            1
        } else {
            self.shape[2..].iter().product()
        }
    }

    /// Extracts frontal slice `l` as an `I₁ × I₂` row-major matrix.
    ///
    /// Slices are indexed in Fortran order over the trailing modes
    /// (`i₃` fastest).
    pub fn frontal_slice(&self, l: usize) -> Result<Matrix> {
        let (i1, i2) = self.leading_dims()?;
        let ls = self.num_frontal_slices();
        if l >= ls {
            return Err(TensorError::ShapeMismatch {
                op: "frontal_slice",
                details: format!("slice {l} out of range (have {ls})"),
            });
        }
        let block = &self.data[l * i1 * i2..(l + 1) * i1 * i2];
        // Block layout is column-major (i1 fastest); transpose-copy to row-major.
        let mut m = Matrix::zeros(i1, i2);
        const B: usize = 32;
        let out = m.as_mut_slice();
        for cb in (0..i2).step_by(B) {
            let cmax = (cb + B).min(i2);
            for rb in (0..i1).step_by(B) {
                let rmax = (rb + B).min(i1);
                for c in cb..cmax {
                    let col = &block[c * i1..(c + 1) * i1];
                    for r in rb..rmax {
                        out[r * i2 + c] = col[r];
                    }
                }
            }
        }
        Ok(m)
    }

    /// Writes an `I₁ × I₂` row-major matrix into frontal slice `l`.
    pub fn set_frontal_slice(&mut self, l: usize, m: &Matrix) -> Result<()> {
        let (i1, i2) = self.leading_dims()?;
        if m.shape() != (i1, i2) {
            return Err(TensorError::ShapeMismatch {
                op: "set_frontal_slice",
                details: format!("slice is {}x{}, matrix is {:?}", i1, i2, m.shape()),
            });
        }
        if l >= self.num_frontal_slices() {
            return Err(TensorError::ShapeMismatch {
                op: "set_frontal_slice",
                details: format!("slice {l} out of range"),
            });
        }
        let block = &mut self.data[l * i1 * i2..(l + 1) * i1 * i2];
        for c in 0..i2 {
            for r in 0..i1 {
                block[c * i1 + r] = m.get(r, c);
            }
        }
        Ok(())
    }

    /// Assembles a tensor of the given shape from its frontal slices.
    pub fn from_frontal_slices(shape: &[usize], slices: &[Matrix]) -> Result<DenseTensor> {
        let mut t = DenseTensor::zeros(shape)?;
        if slices.len() != t.num_frontal_slices() {
            return Err(TensorError::ShapeMismatch {
                op: "from_frontal_slices",
                details: format!(
                    "shape {:?} has {} slices, got {}",
                    shape,
                    t.num_frontal_slices(),
                    slices.len()
                ),
            });
        }
        for (l, s) in slices.iter().enumerate() {
            t.set_frontal_slice(l, s)?;
        }
        Ok(t)
    }

    /// Extracts the sub-tensor `start..end` along the **last** mode.
    ///
    /// With Fortran layout this is a contiguous window, so the copy is a
    /// single `memcpy`.
    pub fn subtensor_last(&self, start: usize, end: usize) -> Result<DenseTensor> {
        let n = self.order();
        let last = self.shape[n - 1];
        if start >= end || end > last {
            return Err(TensorError::ShapeMismatch {
                op: "subtensor_last",
                details: format!("range {start}..{end} invalid for last dim {last}"),
            });
        }
        let stride: usize = self.shape[..n - 1].iter().product();
        let mut shape = self.shape.clone();
        shape[n - 1] = end - start;
        Ok(DenseTensor {
            shape,
            data: self.data[start * stride..end * stride].to_vec(),
        })
    }

    /// Concatenates tensors along the **last** mode. All leading dims must
    /// agree.
    pub fn concat_last(parts: &[&DenseTensor]) -> Result<DenseTensor> {
        let first = parts.first().ok_or_else(|| TensorError::ShapeMismatch {
            op: "concat_last",
            details: "no parts given".into(),
        })?;
        let n = first.order();
        let lead = &first.shape[..n - 1];
        let mut last = 0usize;
        let mut data = Vec::new();
        for p in parts {
            if p.order() != n || &p.shape[..n - 1] != lead {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_last",
                    details: format!("{:?} vs {:?}", first.shape, p.shape),
                });
            }
            last += p.shape[n - 1];
            data.extend_from_slice(&p.data);
        }
        let mut shape = lead.to_vec();
        shape.push(last);
        Ok(DenseTensor { shape, data })
    }

    fn leading_dims(&self) -> Result<(usize, usize)> {
        if self.order() < 2 {
            return Err(TensorError::InvalidMode {
                mode: 1,
                order: self.order(),
            });
        }
        Ok((self.shape[0], self.shape[1]))
    }
}

impl std::fmt::Debug for DenseTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseTensor(shape={:?}, numel={}, ‖·‖={:.4})",
            self.shape,
            self.numel(),
            self.fro_norm()
        )
    }
}

fn validate_shape(op: &'static str, shape: &[usize]) -> Result<()> {
    if shape.is_empty() {
        return Err(TensorError::ShapeMismatch {
            op,
            details: "empty shape".into(),
        });
    }
    if shape.contains(&0) {
        return Err(TensorError::ShapeMismatch {
            op,
            details: format!("zero dimension in {:?}", shape),
        });
    }
    Ok(())
}

/// Advances a multi-index one step in Fortran order (first index fastest).
#[inline]
pub fn increment_index(idx: &mut [usize], shape: &[usize]) {
    for (i, dim) in idx.iter_mut().zip(shape.iter()) {
        *i += 1;
        if *i < *dim {
            return;
        }
        *i = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_order() {
        let t = DenseTensor::zeros(&[2, 3, 4]).unwrap();
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.order(), 3);
        assert_eq!(t.numel(), 24);
        assert!(DenseTensor::zeros(&[]).is_err());
        assert!(DenseTensor::zeros(&[2, 0]).is_err());
    }

    #[test]
    fn fortran_linear_layout() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64).unwrap();
        // First index fastest: (0,0),(1,0),(0,1),(1,1),(0,2),(1,2)
        assert_eq!(t.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(t.get(&[1, 2]), 12.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(DenseTensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert!(DenseTensor::from_vec(&[2, 2], vec![0.0; 5]).is_err());
    }

    #[test]
    fn subtensor_extracts_hyper_rectangles() {
        let t = DenseTensor::from_fn(&[4, 3, 5], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64
        })
        .unwrap();
        // Full-tensor bounds are the identity.
        let full = t.subtensor(&[(0, 4), (0, 3), (0, 5)]).unwrap();
        assert_eq!(full, t);
        // Interior box.
        let s = t.subtensor(&[(1, 3), (0, 2), (2, 5)]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 3]);
        for i in 0..2 {
            for j in 0..2 {
                for k in 0..3 {
                    assert_eq!(s.get(&[i, j, k]), t.get(&[i + 1, j, k + 2]));
                }
            }
        }
        // Single element and order-1.
        let e = t.subtensor(&[(3, 4), (2, 3), (4, 5)]).unwrap();
        assert_eq!(e.as_slice(), &[t.get(&[3, 2, 4])]);
        let v = DenseTensor::from_vec(&[5], vec![0.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(v.subtensor(&[(1, 4)]).unwrap().as_slice(), &[1.0, 2.0, 3.0]);
        // Invalid bounds are typed errors.
        assert!(t.subtensor(&[(0, 4), (0, 3)]).is_err());
        assert!(t.subtensor(&[(0, 5), (0, 3), (0, 5)]).is_err());
        assert!(t.subtensor(&[(2, 2), (0, 3), (0, 5)]).is_err());
        assert!(t.subtensor(&[(3, 1), (0, 3), (0, 5)]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = DenseTensor::zeros(&[3, 4, 5]).unwrap();
        t.set(&[2, 1, 3], 7.5);
        assert_eq!(t.get(&[2, 1, 3]), 7.5);
        assert_eq!(t.get(&[2, 1, 2]), 0.0);
    }

    #[test]
    fn norms_and_arith() {
        let t = DenseTensor::from_vec(&[1, 2], vec![3.0, 4.0]).unwrap();
        assert!((t.fro_norm() - 5.0).abs() < 1e-12);
        assert!((t.fro_norm_sq() - 25.0).abs() < 1e-9);
        let mut u = t.clone();
        u.scale(2.0);
        assert_eq!(u.as_slice(), &[6.0, 8.0]);
        u.axpy(-1.0, &t).unwrap();
        assert_eq!(u.as_slice(), &[3.0, 4.0]);
        let d = u.sub(&t).unwrap();
        assert_eq!(d.fro_norm(), 0.0);
        assert_eq!(t.relative_error_sq(&u).unwrap(), 0.0);
        assert!(u.axpy(1.0, &DenseTensor::zeros(&[2, 1]).unwrap()).is_err());
    }

    #[test]
    fn map_and_max_abs() {
        let mut t = DenseTensor::from_vec(&[2, 2], vec![-1.0, 2.0, -3.0, 0.5]).unwrap();
        assert_eq!(t.max_abs(), 3.0);
        t.map_inplace(|v| v * v);
        assert_eq!(t.as_slice(), &[1.0, 4.0, 9.0, 0.25]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = DenseTensor::from_fn(&[2, 3], |idx| (idx[0] + 10 * idx[1]) as f64).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[4, 2]).is_err());
    }

    #[test]
    fn frontal_slice_extraction() {
        // 2x3x2 tensor, values encode their index.
        let t = DenseTensor::from_fn(&[2, 3, 2], |idx| {
            (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64
        })
        .unwrap();
        assert_eq!(t.num_frontal_slices(), 2);
        let s0 = t.frontal_slice(0).unwrap();
        assert_eq!(s0.shape(), (2, 3));
        assert_eq!(s0.get(1, 2), 120.0);
        let s1 = t.frontal_slice(1).unwrap();
        assert_eq!(s1.get(0, 1), 11.0);
        assert!(t.frontal_slice(2).is_err());
    }

    #[test]
    fn frontal_slice_round_trip() {
        let t = DenseTensor::from_fn(&[4, 5, 3, 2], |idx| {
            idx.iter()
                .enumerate()
                .map(|(i, &x)| (i + 1) * x)
                .sum::<usize>() as f64
        })
        .unwrap();
        assert_eq!(t.num_frontal_slices(), 6);
        let slices: Vec<Matrix> = (0..6).map(|l| t.frontal_slice(l).unwrap()).collect();
        let rebuilt = DenseTensor::from_frontal_slices(&[4, 5, 3, 2], &slices).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn set_frontal_slice_validates() {
        let mut t = DenseTensor::zeros(&[2, 2, 2]).unwrap();
        assert!(t.set_frontal_slice(0, &Matrix::zeros(3, 2)).is_err());
        assert!(t.set_frontal_slice(5, &Matrix::zeros(2, 2)).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        t.set_frontal_slice(1, &m).unwrap();
        assert_eq!(t.get(&[0, 1, 1]), 2.0);
        assert_eq!(t.get(&[1, 0, 1]), 3.0);
    }

    #[test]
    fn order2_has_one_slice() {
        let t = DenseTensor::from_fn(&[3, 4], |idx| (idx[0] + idx[1]) as f64).unwrap();
        assert_eq!(t.num_frontal_slices(), 1);
        let s = t.frontal_slice(0).unwrap();
        assert_eq!(s.shape(), (3, 4));
        assert_eq!(s.get(2, 3), 5.0);
    }

    #[test]
    fn subtensor_and_concat_last() {
        let t = DenseTensor::from_fn(&[2, 3, 4], |idx| idx[2] as f64).unwrap();
        let a = t.subtensor_last(0, 2).unwrap();
        let b = t.subtensor_last(2, 4).unwrap();
        assert_eq!(a.shape(), &[2, 3, 2]);
        assert_eq!(b.get(&[0, 0, 0]), 2.0);
        let joined = DenseTensor::concat_last(&[&a, &b]).unwrap();
        assert_eq!(joined, t);
        assert!(t.subtensor_last(3, 3).is_err());
        assert!(t.subtensor_last(0, 5).is_err());
        assert!(DenseTensor::concat_last(&[]).is_err());
        let bad = DenseTensor::zeros(&[3, 3, 1]).unwrap();
        assert!(DenseTensor::concat_last(&[&a, &bad]).is_err());
    }

    #[test]
    fn increment_index_wraps() {
        let shape = [2, 3];
        let mut idx = vec![0, 0];
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(idx.clone());
            increment_index(&mut idx, &shape);
        }
        assert_eq!(
            seen,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![0, 1],
                vec![1, 1],
                vec![0, 2],
                vec![1, 2]
            ]
        );
        assert_eq!(idx, vec![0, 0]); // wrapped around
    }

    #[test]
    fn debug_format_mentions_shape() {
        let t = DenseTensor::zeros(&[2, 2]).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("[2, 2]"));
    }
}
