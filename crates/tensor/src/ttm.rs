//! n-mode (tensor-times-matrix) products.
//!
//! `ttm(x, a, n)` computes `Y = X ×ₙ A`, i.e. `Y₍ₙ₎ = A X₍ₙ₎`, without
//! materializing the unfolding: with Fortran layout the tensor factors into
//! `right` contiguous blocks that are row-major `Iₙ × left` matrices, so the
//! product is a batch of GEMMs over buffer windows.
//!
//! Large contractions fan out across the shared worker pool: the batch of
//! `right` independent GEMMs is split block-wise (bit-identical for any
//! thread count since each output block is computed by exactly one worker),
//! and a single big GEMM (`right == 1`) splits internally by output rows.

use crate::dense::DenseTensor;
use crate::error::{Result, TensorError};
use dtucker_linalg::gemm::{matmul_into, matmul_into_threaded, t_matmul_into_threaded};
use dtucker_linalg::matrix::Matrix;
use dtucker_linalg::pool;

/// Computes `X ×ₙ A` where `A ∈ R^{J×Iₙ}` (contracting `A`'s columns with
/// mode `n`). The result has mode `n` of size `J`.
pub fn ttm(x: &DenseTensor, a: &Matrix, mode: usize) -> Result<DenseTensor> {
    let shape = x.shape();
    let order = shape.len();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    let i_n = shape[mode];
    if a.cols() != i_n {
        return Err(TensorError::ShapeMismatch {
            op: "ttm",
            details: format!(
                "matrix {:?} cannot contract mode {mode} of {:?}",
                a.shape(),
                shape
            ),
        });
    }
    let j = a.rows();
    if j == 0 {
        return Err(TensorError::ShapeMismatch {
            op: "ttm",
            details: "matrix with zero rows".into(),
        });
    }
    let left: usize = shape[..mode].iter().product();
    let right: usize = shape[mode + 1..].iter().product();

    let mut out_shape = shape.to_vec();
    out_shape[mode] = j;
    let mut out = DenseTensor::zeros(&out_shape)?;

    let xin = x.as_slice();
    let xout = out.as_mut_slice();
    let in_block = i_n * left;
    let out_block = j * left;
    let nthreads = pool::threads_for_flops(2 * j * i_n * left * right);
    if right == 1 {
        // One big GEMM: let it split internally by output rows.
        matmul_into_threaded(a.as_slice(), xin, xout, j, i_n, left, nthreads);
    } else {
        // Input block r is a row-major Iₙ × left matrix; output block is
        // row-major J × left. Blocks are independent, so the batch fans out
        // across the pool block-wise.
        pool::parallel_chunks(xout, out_block, nthreads, |r0, chunk| {
            for (b, cblk) in chunk.chunks_exact_mut(out_block).enumerate() {
                let r = r0 + b;
                matmul_into(
                    a.as_slice(),
                    &xin[r * in_block..(r + 1) * in_block],
                    cblk,
                    j,
                    i_n,
                    left,
                );
            }
        });
    }
    Ok(out)
}

/// Computes `X ×ₙ Aᵀ` where `A ∈ R^{Iₙ×J}` is a factor matrix (contracting
/// `A`'s **rows** with mode `n`). This is the HOOI projection step
/// `X ×ₙ A⁽ⁿ⁾ᵀ` without forming the transpose.
pub fn ttm_t(x: &DenseTensor, a: &Matrix, mode: usize) -> Result<DenseTensor> {
    let shape = x.shape();
    let order = shape.len();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    let i_n = shape[mode];
    if a.rows() != i_n {
        return Err(TensorError::ShapeMismatch {
            op: "ttm_t",
            details: format!(
                "matrix {:?} cannot contract mode {mode} of {:?}",
                a.shape(),
                shape
            ),
        });
    }
    let j = a.cols();
    if j == 0 {
        return Err(TensorError::ShapeMismatch {
            op: "ttm_t",
            details: "matrix with zero cols".into(),
        });
    }
    let left: usize = shape[..mode].iter().product();
    let right: usize = shape[mode + 1..].iter().product();

    let mut out_shape = shape.to_vec();
    out_shape[mode] = j;
    let mut out = DenseTensor::zeros(&out_shape)?;

    let xin = x.as_slice();
    let xout = out.as_mut_slice();
    let in_block = i_n * left;
    let out_block = j * left;
    let nthreads = pool::threads_for_flops(2 * j * i_n * left * right);
    if right == 1 {
        t_matmul_into_threaded(a.as_slice(), xin, xout, i_n, j, left, nthreads);
    } else {
        pool::parallel_chunks(xout, out_block, nthreads, |r0, chunk| {
            for (b, cblk) in chunk.chunks_exact_mut(out_block).enumerate() {
                let r = r0 + b;
                dtucker_linalg::gemm::t_matmul_into(
                    a.as_slice(),
                    &xin[r * in_block..(r + 1) * in_block],
                    cblk,
                    i_n,
                    j,
                    left,
                );
            }
        });
    }
    Ok(out)
}

/// Computes `X ×ₙ A[r0..r1, :]` — the n-mode product with a **row range**
/// of `A`, without materializing the sub-matrix: rows of a row-major
/// matrix are contiguous, so the batched GEMMs read the window in place.
/// The result has mode `n` of size `r1 - r0`.
///
/// This is the contraction primitive of factored range queries: serving a
/// hyper-rectangle of a Tucker reconstruction contracts each factor over
/// only the requested rows.
pub fn ttm_rows(
    x: &DenseTensor,
    a: &Matrix,
    r0: usize,
    r1: usize,
    mode: usize,
) -> Result<DenseTensor> {
    let shape = x.shape();
    let order = shape.len();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    let i_n = shape[mode];
    if a.cols() != i_n {
        return Err(TensorError::ShapeMismatch {
            op: "ttm_rows",
            details: format!(
                "matrix {:?} cannot contract mode {mode} of {:?}",
                a.shape(),
                shape
            ),
        });
    }
    if r0 >= r1 || r1 > a.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "ttm_rows",
            details: format!("rows {r0}..{r1} invalid for matrix {:?}", a.shape()),
        });
    }
    let j = r1 - r0;
    let rows = &a.as_slice()[r0 * i_n..r1 * i_n];
    let left: usize = shape[..mode].iter().product();
    let right: usize = shape[mode + 1..].iter().product();

    let mut out_shape = shape.to_vec();
    out_shape[mode] = j;
    let mut out = DenseTensor::zeros(&out_shape)?;

    let xin = x.as_slice();
    let xout = out.as_mut_slice();
    let in_block = i_n * left;
    let out_block = j * left;
    let nthreads = pool::threads_for_flops(2 * j * i_n * left * right);
    if right == 1 {
        matmul_into_threaded(rows, xin, xout, j, i_n, left, nthreads);
    } else {
        pool::parallel_chunks(xout, out_block, nthreads, |r0b, chunk| {
            for (b, cblk) in chunk.chunks_exact_mut(out_block).enumerate() {
                let r = r0b + b;
                matmul_into(
                    rows,
                    &xin[r * in_block..(r + 1) * in_block],
                    cblk,
                    j,
                    i_n,
                    left,
                );
            }
        });
    }
    Ok(out)
}

/// Tensor-times-vector: contracts mode `n` with a vector of length `Iₙ`,
/// dropping that mode. `ttv(x, v, n)[..] = Σ_{iₙ} v[iₙ]·x[.., iₙ, ..]`.
pub fn ttv(x: &DenseTensor, v: &[f64], mode: usize) -> Result<DenseTensor> {
    let shape = x.shape();
    let order = shape.len();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    if order == 1 {
        return Err(TensorError::ShapeMismatch {
            op: "ttv",
            details: "cannot drop the only mode of an order-1 tensor".into(),
        });
    }
    if v.len() != shape[mode] {
        return Err(TensorError::ShapeMismatch {
            op: "ttv",
            details: format!(
                "vector length {} vs mode {mode} size {}",
                v.len(),
                shape[mode]
            ),
        });
    }
    let row = Matrix::from_vec(1, v.len(), v.to_vec())?;
    let contracted = ttm(x, &row, mode)?;
    // Drop the singleton mode.
    let mut new_shape: Vec<usize> = contracted.shape().to_vec();
    new_shape.remove(mode);
    contracted.reshape(&new_shape)
}

/// Applies `X ×ₖ A⁽ᵏ⁾ᵀ` for every `(k, A⁽ᵏ⁾)` pair, skipping mode
/// `skip` (pass `usize::MAX` to apply all). Factors are `Iₖ × Jₖ`.
///
/// Modes are processed in order of decreasing size reduction
/// (`Iₖ − Jₖ`), which minimizes intermediate tensor volume — the standard
/// multi-TTM ordering trick.
pub fn multi_ttm_t(x: &DenseTensor, factors: &[Matrix], skip: usize) -> Result<DenseTensor> {
    if factors.len() != x.order() {
        return Err(TensorError::ShapeMismatch {
            op: "multi_ttm_t",
            details: format!("{} factors for order-{} tensor", factors.len(), x.order()),
        });
    }
    let mut modes: Vec<usize> = (0..x.order()).filter(|&k| k != skip).collect();
    modes.sort_by_key(|&k| {
        // Largest reduction first (negative for sort ascending).
        -((x.shape()[k] as isize) - (factors[k].cols() as isize))
    });
    let mut cur = x.clone();
    for &k in &modes {
        cur = ttm_t(&cur, &factors[k], k)?;
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::unfold;
    use dtucker_linalg::gemm::matmul;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tensor(shape: &[usize], seed: u64) -> DenseTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        DenseTensor::from_fn(shape, |_| rng.gen_range(-1.0..1.0)).unwrap()
    }

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
    }

    /// Reference implementation through explicit unfolding.
    fn ttm_reference(x: &DenseTensor, a: &Matrix, mode: usize) -> DenseTensor {
        let unf = unfold(x, mode).unwrap();
        let prod = matmul(a, &unf);
        let mut shape = x.shape().to_vec();
        shape[mode] = a.rows();
        crate::unfold::fold(&prod, mode, &shape).unwrap()
    }

    #[test]
    fn ttm_matches_unfold_route_all_modes() {
        let x = random_tensor(&[4, 5, 3, 2], 1);
        for mode in 0..4 {
            let a = random_matrix(2, x.shape()[mode], 10 + mode as u64);
            let fast = ttm(&x, &a, mode).unwrap();
            let slow = ttm_reference(&x, &a, mode);
            assert!(
                fast.sub(&slow).unwrap().fro_norm() < 1e-10,
                "mode {mode} mismatch"
            );
        }
    }

    #[test]
    fn ttm_t_matches_explicit_transpose() {
        let x = random_tensor(&[6, 4, 3], 2);
        for mode in 0..3 {
            let a = random_matrix(x.shape()[mode], 2, 20 + mode as u64);
            let fast = ttm_t(&x, &a, mode).unwrap();
            let slow = ttm(&x, &a.transpose(), mode).unwrap();
            assert!(fast.sub(&slow).unwrap().fro_norm() < 1e-10, "mode {mode}");
        }
    }

    #[test]
    fn ttm_known_values() {
        // X of shape 2x2, A = [[1, 1]] (1x2): mode-0 product sums rows.
        let x = DenseTensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let a = Matrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let y = ttm(&x, &a, 0).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn ttm_mode_commutativity() {
        // X ×₀ A ×₂ B == X ×₂ B ×₀ A for distinct modes.
        let x = random_tensor(&[5, 4, 6], 3);
        let a = random_matrix(2, 5, 30);
        let b = random_matrix(3, 6, 31);
        let p1 = ttm(&ttm(&x, &a, 0).unwrap(), &b, 2).unwrap();
        let p2 = ttm(&ttm(&x, &b, 2).unwrap(), &a, 0).unwrap();
        assert!(p1.sub(&p2).unwrap().fro_norm() < 1e-10);
    }

    #[test]
    fn ttm_same_mode_composes() {
        // (X ×₀ A) ×₀ B == X ×₀ (BA).
        let x = random_tensor(&[5, 3], 4);
        let a = random_matrix(4, 5, 40);
        let b = random_matrix(2, 4, 41);
        let p1 = ttm(&ttm(&x, &a, 0).unwrap(), &b, 0).unwrap();
        let p2 = ttm(&x, &matmul(&b, &a), 0).unwrap();
        assert!(p1.sub(&p2).unwrap().fro_norm() < 1e-10);
    }

    #[test]
    fn multi_ttm_t_matches_sequential() {
        let x = random_tensor(&[6, 5, 4], 5);
        let factors = vec![
            random_matrix(6, 2, 50),
            random_matrix(5, 3, 51),
            random_matrix(4, 2, 52),
        ];
        let all = multi_ttm_t(&x, &factors, usize::MAX).unwrap();
        let mut seq = x.clone();
        for (k, f) in factors.iter().enumerate() {
            seq = ttm_t(&seq, f, k).unwrap();
        }
        assert!(all.sub(&seq).unwrap().fro_norm() < 1e-10);
        assert_eq!(all.shape(), &[2, 3, 2]);

        let skip1 = multi_ttm_t(&x, &factors, 1).unwrap();
        assert_eq!(skip1.shape(), &[2, 5, 2]);
    }

    #[test]
    fn ttm_rows_matches_submatrix_route() {
        let x = random_tensor(&[4, 5, 3], 11);
        for mode in 0..3 {
            let a = random_matrix(7, x.shape()[mode], 60 + mode as u64);
            for &(r0, r1) in &[(0usize, 7usize), (2, 5), (6, 7)] {
                let fast = ttm_rows(&x, &a, r0, r1, mode).unwrap();
                let sub = a.submatrix(r0, r1, 0, a.cols());
                let slow = ttm(&x, &sub, mode).unwrap();
                // Identical kernel over identical bytes: bit-equal.
                assert_eq!(fast.as_slice(), slow.as_slice(), "mode {mode} {r0}..{r1}");
            }
            // Degenerate/invalid ranges and shapes are typed errors.
            assert!(ttm_rows(&x, &a, 3, 3, mode).is_err());
            assert!(ttm_rows(&x, &a, 5, 8, mode).is_err());
        }
        assert!(ttm_rows(&x, &Matrix::zeros(2, 9), 0, 1, 0).is_err());
        assert!(ttm_rows(&x, &Matrix::zeros(2, 4), 0, 1, 5).is_err());
    }

    #[test]
    fn ttv_contracts_and_drops_mode() {
        let x = random_tensor(&[4, 3, 5], 9);
        let v = vec![1.0, -1.0, 0.5];
        let y = ttv(&x, &v, 1).unwrap();
        assert_eq!(y.shape(), &[4, 5]);
        for i in 0..4 {
            for k in 0..5 {
                let expected: f64 = (0..3).map(|j| v[j] * x.get(&[i, j, k])).sum();
                assert!((y.get(&[i, k]) - expected).abs() < 1e-12);
            }
        }
        assert!(ttv(&x, &[1.0, 2.0], 1).is_err());
        assert!(ttv(&x, &v, 5).is_err());
    }

    #[test]
    fn ttv_all_ones_is_mode_sum() {
        let x = random_tensor(&[3, 4], 10);
        let y = ttv(&x, &[1.0; 3], 0).unwrap();
        assert_eq!(y.shape(), &[4]);
        for j in 0..4 {
            let expected: f64 = (0..3).map(|i| x.get(&[i, j])).sum();
            assert!((y.get(&[j]) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn ttm_validates_inputs() {
        let x = random_tensor(&[3, 3], 6);
        assert!(ttm(&x, &Matrix::zeros(2, 4), 0).is_err()); // wrong cols
        assert!(ttm(&x, &Matrix::zeros(2, 3), 5).is_err()); // bad mode
        assert!(ttm_t(&x, &Matrix::zeros(4, 2), 0).is_err());
        assert!(ttm_t(&x, &Matrix::zeros(3, 2), 9).is_err());
        assert!(multi_ttm_t(&x, &[Matrix::zeros(3, 2)], usize::MAX).is_err());
    }

    #[test]
    fn ttm_with_identity_is_noop() {
        let x = random_tensor(&[4, 3, 2], 7);
        for mode in 0..3 {
            let id = Matrix::identity(x.shape()[mode]);
            let y = ttm(&x, &id, mode).unwrap();
            assert!(y.sub(&x).unwrap().fro_norm() < 1e-12);
        }
    }

    #[test]
    fn ttm_orthonormal_projection_shrinks_norm() {
        let x = random_tensor(&[8, 6, 4], 8);
        let q = dtucker_linalg::qr::orthonormalize(&random_matrix(8, 3, 80));
        let y = ttm_t(&x, &q, 0).unwrap();
        assert!(y.fro_norm() <= x.fro_norm() + 1e-12);
    }
}
