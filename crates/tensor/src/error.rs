//! Error types for the tensor substrate.

use dtucker_linalg::LinalgError;
use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape argument is inconsistent (wrong element count, zero dims, …).
    ShapeMismatch {
        /// Operation name.
        op: &'static str,
        /// Conflicting shape description.
        details: String,
    },
    /// A mode index is out of range for the tensor's order.
    InvalidMode {
        /// Mode that was requested.
        mode: usize,
        /// Order of the tensor.
        order: usize,
    },
    /// An underlying linear-algebra routine failed.
    Linalg(LinalgError),
    /// An I/O operation failed (message carries the `std::io::Error` text).
    Io(String),
    /// A serialized tensor file is malformed.
    Format(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, details } => {
                write!(f, "shape mismatch in {op}: {details}")
            }
            TensorError::InvalidMode { mode, order } => {
                write!(f, "mode {mode} out of range for order-{order} tensor")
            }
            TensorError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            TensorError::Io(msg) => write!(f, "tensor i/o error: {msg}"),
            TensorError::Format(msg) => write!(f, "tensor file format error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for TensorError {
    fn from(e: LinalgError) -> Self {
        TensorError::Linalg(e)
    }
}

impl From<std::io::Error> for TensorError {
    fn from(e: std::io::Error) -> Self {
        TensorError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = TensorError::InvalidMode { mode: 5, order: 3 };
        assert_eq!(e.to_string(), "mode 5 out of range for order-3 tensor");
        let e = TensorError::ShapeMismatch {
            op: "fold",
            details: "x".into(),
        };
        assert!(e.to_string().contains("fold"));
        let e: TensorError = LinalgError::NotPositiveDefinite.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: TensorError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e: TensorError = LinalgError::NotPositiveDefinite.into();
        assert!(e.source().is_some());
        assert!(TensorError::Format("bad".into()).source().is_none());
    }
}
