//! # dtucker-tensor
//!
//! Dense and sparse tensor substrate for the `dtucker` workspace.
//!
//! * [`dense::DenseTensor`] — Fortran-ordered dense tensors whose frontal
//!   slices (the unit of D-Tucker's compression) are contiguous;
//! * [`unfold`] — Kolda-convention mode-n matricization, folding, mode
//!   permutation;
//! * [`ttm`] — n-mode products as batched GEMMs over buffer windows;
//! * [`sparse::SparseTensor`] — COO tensors for the MACH baseline;
//! * [`random`] — generic random/low-rank tensor generators;
//! * [`io`] — a small self-describing binary format.
//!
//! ## Example
//!
//! ```
//! use dtucker_tensor::dense::DenseTensor;
//! use dtucker_tensor::{ttm, unfold};
//! use dtucker_linalg::Matrix;
//!
//! let x = DenseTensor::from_fn(&[4, 3, 2], |idx| idx[0] as f64).unwrap();
//! let a = Matrix::identity(4);
//! let y = ttm::ttm(&x, &a, 0).unwrap();
//! assert_eq!(y.shape(), &[4, 3, 2]);
//! let m = unfold::unfold(&x, 1).unwrap();
//! assert_eq!(m.shape(), (3, 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

/// The Fortran-order `DenseTensor` type.
pub mod dense;
/// Typed tensor errors.
pub mod error;
/// The `.dten` file format and atomic writes.
pub mod io;
/// Seeded random tensors and low-rank-plus-noise models.
pub mod random;
/// COO sparse tensors and sparse TTM.
pub mod sparse;
/// Summary statistics over tensor entries.
pub mod stats;
/// Tensor-times-matrix products and chains.
pub mod ttm;
/// Mode-n unfoldings and permutations.
pub mod unfold;

pub use dense::DenseTensor;
pub use error::{Result, TensorError};
pub use sparse::SparseTensor;
