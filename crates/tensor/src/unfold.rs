//! Mode-n matricization (unfolding) and its inverse.
//!
//! Kolda–Bader convention: the mode-`n` unfolding `X₍ₙ₎` is the
//! `I_n × Π_{k≠n} I_k` matrix whose column index is
//! `j = Σ_{k≠n} i_k · J_k` with `J_k = Π_{m<k, m≠n} I_m`.

use crate::dense::{num_elements, DenseTensor};
use crate::error::{Result, TensorError};
use dtucker_linalg::matrix::Matrix;

/// Column strides `J_k` of the mode-`n` unfolding (with `J_n = 0` so mode
/// `n` never contributes to the column index).
fn unfold_col_strides(shape: &[usize], mode: usize) -> Vec<usize> {
    let mut strides = vec![0usize; shape.len()];
    let mut acc = 1usize;
    for (k, &dim) in shape.iter().enumerate() {
        if k == mode {
            continue;
        }
        strides[k] = acc;
        acc *= dim;
    }
    strides
}

/// Computes the mode-`n` unfolding of `x` as a row-major matrix.
pub fn unfold(x: &DenseTensor, mode: usize) -> Result<Matrix> {
    let shape = x.shape();
    let order = shape.len();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    let rows = shape[mode];
    let cols = x.numel() / rows;
    let strides = unfold_col_strides(shape, mode);

    let mut out = Matrix::zeros(rows, cols);
    let odat = out.as_mut_slice();
    let data = x.as_slice();

    // Walk the buffer once in Fortran order, maintaining (row, col)
    // incrementally: bumping index k adds strides[k] to the column (or 1 to
    // the row when k == mode); wrapping subtracts the full extent again.
    let mut idx = vec![0usize; order];
    let mut row = 0usize;
    let mut col = 0usize;
    for &v in data {
        odat[row * cols + col] = v;
        // Inline increment with incremental (row, col) bookkeeping.
        for k in 0..order {
            idx[k] += 1;
            if k == mode {
                row += 1;
            } else {
                col += strides[k];
            }
            if idx[k] < shape[k] {
                break;
            }
            idx[k] = 0;
            if k == mode {
                row = 0;
            } else {
                col -= strides[k] * shape[k];
            }
        }
    }
    Ok(out)
}

/// Inverse of [`unfold`]: folds a mode-`n` matricization back into a tensor
/// of the given shape.
pub fn fold(m: &Matrix, mode: usize, shape: &[usize]) -> Result<DenseTensor> {
    let order = shape.len();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    let rows = shape[mode];
    let total = num_elements(shape);
    if rows == 0 || m.rows() != rows || m.rows() * m.cols() != total {
        return Err(TensorError::ShapeMismatch {
            op: "fold",
            details: format!(
                "matrix {:?} does not match mode-{mode} of {:?}",
                m.shape(),
                shape
            ),
        });
    }
    let cols = m.cols();
    let strides = unfold_col_strides(shape, mode);
    let mut t = DenseTensor::zeros(shape)?;
    let data = t.as_mut_slice();
    let mdat = m.as_slice();

    let mut idx = vec![0usize; order];
    let mut row = 0usize;
    let mut col = 0usize;
    for v in data.iter_mut() {
        *v = mdat[row * cols + col];
        for k in 0..order {
            idx[k] += 1;
            if k == mode {
                row += 1;
            } else {
                col += strides[k];
            }
            if idx[k] < shape[k] {
                break;
            }
            idx[k] = 0;
            if k == mode {
                row = 0;
            } else {
                col -= strides[k] * shape[k];
            }
        }
    }
    Ok(t)
}

/// Permutes the modes of a tensor: output mode `p` is input mode
/// `order[p]`. `order` must be a permutation of `0..N`.
pub fn permute(x: &DenseTensor, order: &[usize]) -> Result<DenseTensor> {
    let n = x.order();
    if order.len() != n {
        return Err(TensorError::ShapeMismatch {
            op: "permute",
            details: format!("permutation {:?} for order-{n} tensor", order),
        });
    }
    let mut seen = vec![false; n];
    for &p in order {
        if p >= n || seen[p] {
            return Err(TensorError::ShapeMismatch {
                op: "permute",
                details: format!("{:?} is not a permutation of 0..{n}", order),
            });
        }
        seen[p] = true;
    }
    let in_shape = x.shape().to_vec();
    let out_shape: Vec<usize> = order.iter().map(|&p| in_shape[p]).collect();

    // Output stride (Fortran) of input axis k = stride of the output
    // position holding k.
    let mut out_strides_by_pos = vec![1usize; n];
    for p in 1..n {
        out_strides_by_pos[p] = out_strides_by_pos[p - 1] * out_shape[p - 1];
    }
    let mut ostride_of_input_axis = vec![0usize; n];
    for (p, &axis) in order.iter().enumerate() {
        ostride_of_input_axis[axis] = out_strides_by_pos[p];
    }

    let mut out = DenseTensor::zeros(&out_shape)?;
    let odat = out.as_mut_slice();
    let mut idx = vec![0usize; n];
    let mut ooff = 0usize;
    for &v in x.as_slice() {
        odat[ooff] = v;
        for k in 0..n {
            idx[k] += 1;
            ooff += ostride_of_input_axis[k];
            if idx[k] < in_shape[k] {
                break;
            }
            idx[k] = 0;
            ooff -= ostride_of_input_axis[k] * in_shape[k];
        }
    }
    Ok(out)
}

/// Returns the permutation that sorts the modes by descending
/// dimensionality, breaking ties by mode index (stable). This is the
/// reordering D-Tucker applies so the two largest modes form the slices.
pub fn descending_mode_order(shape: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shape.len()).collect();
    order.sort_by(|&a, &b| shape[b].cmp(&shape[a]).then(a.cmp(&b)));
    order
}

/// Inverts a permutation: `inverse[p[i]] = i`.
pub fn inverse_permutation(p: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; p.len()];
    for (i, &pi) in p.iter().enumerate() {
        inv[pi] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_tensor() -> DenseTensor {
        // Kolda & Bader's 3x4x2 running example: entries 1..24 in Fortran
        // order.
        DenseTensor::from_vec(&[3, 4, 2], (1..=24).map(|v| v as f64).collect()).unwrap()
    }

    #[test]
    fn unfold_mode0_matches_kolda() {
        let x = example_tensor();
        let m = unfold(&x, 0).unwrap();
        assert_eq!(m.shape(), (3, 8));
        // X_(1) row 0: 1 4 7 10 13 16 19 22
        assert_eq!(m.row(0), &[1.0, 4.0, 7.0, 10.0, 13.0, 16.0, 19.0, 22.0]);
        assert_eq!(m.row(2), &[3.0, 6.0, 9.0, 12.0, 15.0, 18.0, 21.0, 24.0]);
    }

    #[test]
    fn unfold_mode1_matches_kolda() {
        let x = example_tensor();
        let m = unfold(&x, 1).unwrap();
        assert_eq!(m.shape(), (4, 6));
        // X_(2) row 0: 1 2 3 13 14 15
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0, 13.0, 14.0, 15.0]);
        assert_eq!(m.row(3), &[10.0, 11.0, 12.0, 22.0, 23.0, 24.0]);
    }

    #[test]
    fn unfold_mode2_matches_kolda() {
        let x = example_tensor();
        let m = unfold(&x, 2).unwrap();
        assert_eq!(m.shape(), (2, 12));
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 11), 12.0);
        assert_eq!(m.get(1, 0), 13.0);
        assert_eq!(m.get(1, 11), 24.0);
    }

    #[test]
    fn fold_inverts_unfold_all_modes() {
        let x = DenseTensor::from_fn(&[3, 4, 2, 5], |idx| {
            (idx[0] + 7 * idx[1] + 31 * idx[2] + 101 * idx[3]) as f64
        })
        .unwrap();
        for mode in 0..4 {
            let m = unfold(&x, mode).unwrap();
            let back = fold(&m, mode, x.shape()).unwrap();
            assert_eq!(back, x, "mode {mode}");
        }
    }

    #[test]
    fn unfold_rejects_bad_mode() {
        let x = example_tensor();
        assert!(matches!(
            unfold(&x, 3),
            Err(TensorError::InvalidMode { .. })
        ));
        assert!(fold(&Matrix::zeros(3, 8), 3, &[3, 4, 2]).is_err());
        assert!(fold(&Matrix::zeros(2, 8), 0, &[3, 4, 2]).is_err());
    }

    #[test]
    fn permute_reverses() {
        let x = example_tensor();
        let p = permute(&x, &[2, 1, 0]).unwrap();
        assert_eq!(p.shape(), &[2, 4, 3]);
        for i in 0..3 {
            for j in 0..4 {
                for k in 0..2 {
                    assert_eq!(p.get(&[k, j, i]), x.get(&[i, j, k]));
                }
            }
        }
        // Round-trip through the inverse permutation.
        let back = permute(&p, &inverse_permutation(&[2, 1, 0])).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn permute_identity_is_noop() {
        let x = example_tensor();
        assert_eq!(permute(&x, &[0, 1, 2]).unwrap(), x);
    }

    #[test]
    fn permute_validates() {
        let x = example_tensor();
        assert!(permute(&x, &[0, 1]).is_err());
        assert!(permute(&x, &[0, 0, 1]).is_err());
        assert!(permute(&x, &[0, 1, 3]).is_err());
    }

    #[test]
    fn permute_4d_random_round_trip() {
        let x = DenseTensor::from_fn(&[2, 3, 4, 5], |idx| {
            (idx[0] * 1000 + idx[1] * 100 + idx[2] * 10 + idx[3]) as f64
        })
        .unwrap();
        let order = [3, 0, 2, 1];
        let p = permute(&x, &order).unwrap();
        assert_eq!(p.shape(), &[5, 2, 4, 3]);
        assert_eq!(p.get(&[4, 1, 3, 2]), x.get(&[1, 2, 3, 4]));
        let back = permute(&p, &inverse_permutation(&order)).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn descending_order_and_inverse() {
        assert_eq!(descending_mode_order(&[10, 50, 20]), vec![1, 2, 0]);
        assert_eq!(descending_mode_order(&[5, 5, 3]), vec![0, 1, 2]);
        assert_eq!(inverse_permutation(&[1, 2, 0]), vec![2, 0, 1]);
    }

    #[test]
    fn unfold_preserves_fro_norm() {
        let x = example_tensor();
        for mode in 0..3 {
            let m = unfold(&x, mode).unwrap();
            assert!((m.fro_norm() - x.fro_norm()).abs() < 1e-12);
        }
    }
}
