//! COO sparse tensors.
//!
//! The MACH baseline sparsifies a dense tensor by keeping each entry with
//! probability `p` (rescaled by `1/p`); the result lives here. Only the
//! operations Tucker-ALS needs are provided: a transposed n-mode product
//! into a dense tensor (after the first contraction the operand is dense
//! anyway) and densification.

use crate::dense::DenseTensor;
use crate::error::{Result, TensorError};
use dtucker_linalg::matrix::Matrix;
use rand::Rng;

/// A sparse tensor in coordinate (COO) format.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseTensor {
    shape: Vec<usize>,
    /// Flattened multi-indices, `order` entries per nonzero.
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseTensor {
    /// Creates an empty sparse tensor of the given shape.
    pub fn new(shape: &[usize]) -> Result<Self> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(TensorError::ShapeMismatch {
                op: "SparseTensor::new",
                details: format!("invalid shape {:?}", shape),
            });
        }
        Ok(SparseTensor {
            shape: shape.to_vec(),
            indices: Vec::new(),
            values: Vec::new(),
        })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's order.
    pub fn order(&self) -> usize {
        self.shape.len()
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends a nonzero. Indices must be in range.
    pub fn push(&mut self, idx: &[usize], v: f64) -> Result<()> {
        if idx.len() != self.order() || idx.iter().zip(&self.shape).any(|(&i, &d)| i >= d) {
            return Err(TensorError::ShapeMismatch {
                op: "SparseTensor::push",
                details: format!("index {:?} out of range for {:?}", idx, self.shape),
            });
        }
        self.indices.extend_from_slice(idx);
        self.values.push(v);
        Ok(())
    }

    /// Iterates `(multi_index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        let n = self.order();
        self.values
            .iter()
            .enumerate()
            .map(move |(k, &v)| (&self.indices[k * n..(k + 1) * n], v))
    }

    /// MACH sampling: keeps each entry of `x` independently with probability
    /// `p` and rescales kept entries by `1/p` (an unbiased estimator of the
    /// tensor).
    pub fn sample_from_dense<R: Rng + ?Sized>(
        x: &DenseTensor,
        p: f64,
        rng: &mut R,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) || p == 0.0 {
            return Err(TensorError::ShapeMismatch {
                op: "sample_from_dense",
                details: format!("sampling rate {p} must be in (0, 1]"),
            });
        }
        let mut out = SparseTensor::new(x.shape())?;
        let order = x.order();
        let inv_p = 1.0 / p;
        let mut idx = vec![0usize; order];
        for &v in x.as_slice() {
            if v != 0.0 && rng.gen_range(0.0..1.0) < p {
                out.indices.extend_from_slice(&idx);
                out.values.push(v * inv_p);
            }
            crate::dense::increment_index(&mut idx, x.shape());
        }
        Ok(out)
    }

    /// Materializes the dense tensor.
    pub fn to_dense(&self) -> Result<DenseTensor> {
        let mut t = DenseTensor::zeros(&self.shape)?;
        for (idx, v) in self.iter() {
            let off = t.linear_index(idx);
            t.as_mut_slice()[off] += v;
        }
        Ok(t)
    }

    /// Transposed n-mode product `Y = X ×ₙ Aᵀ` with `A ∈ R^{Iₙ×J}`,
    /// producing a **dense** tensor (mode `n` of size `J`).
    ///
    /// Cost is `O(nnz · J)` — the whole point of running Tucker on a MACH
    /// sample.
    pub fn ttm_t(&self, a: &Matrix, mode: usize) -> Result<DenseTensor> {
        let order = self.order();
        if mode >= order {
            return Err(TensorError::InvalidMode { mode, order });
        }
        if a.rows() != self.shape[mode] {
            return Err(TensorError::ShapeMismatch {
                op: "SparseTensor::ttm_t",
                details: format!(
                    "matrix {:?} cannot contract mode {mode} of {:?}",
                    a.shape(),
                    self.shape
                ),
            });
        }
        let j = a.cols();
        let mut out_shape = self.shape.clone();
        out_shape[mode] = j;
        let mut out = DenseTensor::zeros(&out_shape)?;

        // Precompute output strides (Fortran).
        let mut strides = vec![1usize; order];
        for k in 1..order {
            strides[k] = strides[k - 1] * out_shape[k - 1];
        }
        let odat = out.as_mut_slice();
        let n = order;
        for (k, &v) in self.values.iter().enumerate() {
            let idx = &self.indices[k * n..(k + 1) * n];
            let mut base = 0usize;
            for (m, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
                if m != mode {
                    base += i * s;
                }
            }
            let arow = a.row(idx[mode]);
            let sm = strides[mode];
            for (jj, &ajj) in arow.iter().enumerate().take(j) {
                odat[base + jj * sm] += v * ajj;
            }
        }
        Ok(out)
    }

    /// Squared Frobenius norm of the stored values.
    pub fn fro_norm_sq(&self) -> f64 {
        self.values.iter().map(|&v| v * v).sum()
    }

    /// Permutes the modes (`O(nnz)`): output mode `p` is input mode
    /// `order[p]`.
    pub fn permute(&self, order: &[usize]) -> Result<SparseTensor> {
        let n = self.order();
        if order.len() != n {
            return Err(TensorError::ShapeMismatch {
                op: "SparseTensor::permute",
                details: format!("permutation {:?} for order-{n} tensor", order),
            });
        }
        let mut seen = vec![false; n];
        for &p in order {
            if p >= n || seen[p] {
                return Err(TensorError::ShapeMismatch {
                    op: "SparseTensor::permute",
                    details: format!("{:?} is not a permutation of 0..{n}", order),
                });
            }
            seen[p] = true;
        }
        let shape: Vec<usize> = order.iter().map(|&p| self.shape[p]).collect();
        let mut out = SparseTensor::new(&shape)?;
        out.values = self.values.clone();
        out.indices = Vec::with_capacity(self.indices.len());
        for k in 0..self.nnz() {
            let idx = &self.indices[k * n..(k + 1) * n];
            for &p in order {
                out.indices.push(idx[p]);
            }
        }
        Ok(out)
    }

    /// Splits the tensor into frontal-slice CSR matrices (`I₁ × I₂`, one
    /// per combination of the trailing modes, Fortran order) — the input
    /// format of the sparse D-Tucker approximation phase.
    pub fn frontal_slices_csr(&self) -> Result<Vec<dtucker_linalg::sparse::CsrMatrix>> {
        let n = self.order();
        if n < 2 {
            return Err(TensorError::InvalidMode { mode: 1, order: n });
        }
        let num_slices: usize = if n == 2 {
            1
        } else {
            self.shape[2..].iter().product()
        };
        let mut trailing_strides = vec![1usize; n.saturating_sub(2)];
        for k in 1..trailing_strides.len() {
            trailing_strides[k] = trailing_strides[k - 1] * self.shape[k + 1];
        }
        let mut per_slice: Vec<Vec<(usize, usize, f64)>> = vec![Vec::new(); num_slices];
        for (idx, v) in self.iter() {
            let mut l = 0usize;
            for (k, &s) in trailing_strides.iter().enumerate() {
                l += idx[k + 2] * s;
            }
            per_slice[l].push((idx[0], idx[1], v));
        }
        per_slice
            .into_iter()
            .map(|t| {
                dtucker_linalg::sparse::CsrMatrix::from_triplets(self.shape[0], self.shape[1], &t)
                    .map_err(Into::into)
            })
            .collect()
    }

    /// Memory footprint in bytes (indices + values).
    pub fn memory_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttm::ttm_t;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dense_example() -> DenseTensor {
        DenseTensor::from_fn(&[3, 4, 2], |idx| {
            (idx[0] + idx[1] * 10 + idx[2] * 100) as f64
        })
        .unwrap()
    }

    #[test]
    fn push_and_to_dense() {
        let mut s = SparseTensor::new(&[2, 3]).unwrap();
        s.push(&[0, 1], 5.0).unwrap();
        s.push(&[1, 2], -2.0).unwrap();
        assert_eq!(s.nnz(), 2);
        let d = s.to_dense().unwrap();
        assert_eq!(d.get(&[0, 1]), 5.0);
        assert_eq!(d.get(&[1, 2]), -2.0);
        assert_eq!(d.get(&[0, 0]), 0.0);
        assert!(s.push(&[2, 0], 1.0).is_err());
        assert!(s.push(&[0], 1.0).is_err());
    }

    #[test]
    fn sample_full_rate_is_lossless() {
        let x = dense_example();
        let mut rng = StdRng::seed_from_u64(1);
        let s = SparseTensor::sample_from_dense(&x, 1.0, &mut rng).unwrap();
        let back = s.to_dense().unwrap();
        assert!(back.sub(&x).unwrap().fro_norm() < 1e-12);
    }

    #[test]
    fn sample_rate_controls_nnz() {
        let x = DenseTensor::from_fn(&[20, 20, 5], |_| 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let s = SparseTensor::sample_from_dense(&x, 0.3, &mut rng).unwrap();
        let frac = s.nnz() as f64 / x.numel() as f64;
        assert!((frac - 0.3).abs() < 0.05, "kept fraction {frac}");
        // Rescaling keeps the sum unbiased (roughly).
        let total: f64 = s.to_dense().unwrap().as_slice().iter().sum();
        assert!((total - 2000.0).abs() / 2000.0 < 0.1);
        assert!(SparseTensor::sample_from_dense(&x, 0.0, &mut rng).is_err());
        assert!(SparseTensor::sample_from_dense(&x, 1.5, &mut rng).is_err());
    }

    #[test]
    fn sparse_ttm_t_matches_dense() {
        let x = dense_example();
        let mut rng = StdRng::seed_from_u64(3);
        let s = SparseTensor::sample_from_dense(&x, 1.0, &mut rng).unwrap();
        for mode in 0..3 {
            let a = dtucker_linalg::random::gaussian_matrix(x.shape()[mode], 2, &mut rng);
            let sparse_res = s.ttm_t(&a, mode).unwrap();
            let dense_res = ttm_t(&x, &a, mode).unwrap();
            assert!(
                sparse_res.sub(&dense_res).unwrap().fro_norm() < 1e-9,
                "mode {mode}"
            );
        }
    }

    #[test]
    fn sparse_ttm_t_validates() {
        let s = SparseTensor::new(&[3, 3]).unwrap();
        assert!(s.ttm_t(&Matrix::zeros(2, 2), 0).is_err());
        assert!(s.ttm_t(&Matrix::zeros(3, 2), 7).is_err());
    }

    #[test]
    fn permute_matches_dense_permute() {
        let x = dense_example();
        let mut rng = StdRng::seed_from_u64(8);
        let s = SparseTensor::sample_from_dense(&x, 0.6, &mut rng).unwrap();
        let order = [2usize, 0, 1];
        let sp = s.permute(&order).unwrap();
        let dp = crate::unfold::permute(&s.to_dense().unwrap(), &order).unwrap();
        assert!(sp.to_dense().unwrap().sub(&dp).unwrap().fro_norm() < 1e-12);
        assert!(s.permute(&[0, 1]).is_err());
        assert!(s.permute(&[0, 0, 1]).is_err());
    }

    #[test]
    fn frontal_slices_csr_match_dense_slices() {
        let x = dense_example();
        let mut rng = StdRng::seed_from_u64(9);
        let s = SparseTensor::sample_from_dense(&x, 1.0, &mut rng).unwrap();
        let slices = s.frontal_slices_csr().unwrap();
        assert_eq!(slices.len(), 2);
        for (l, sl) in slices.iter().enumerate() {
            let dense_slice = x.frontal_slice(l).unwrap();
            assert!(sl.to_dense().approx_eq(&dense_slice, 1e-12), "slice {l}");
        }
        // Order-2 sparse tensor: a single slice.
        let mut m = SparseTensor::new(&[3, 4]).unwrap();
        m.push(&[2, 3], 7.0).unwrap();
        let sl = m.frontal_slices_csr().unwrap();
        assert_eq!(sl.len(), 1);
        assert_eq!(sl[0].to_dense().get(2, 3), 7.0);
    }

    #[test]
    fn memory_accounting() {
        let mut s = SparseTensor::new(&[4, 4]).unwrap();
        s.push(&[1, 1], 1.0).unwrap();
        assert_eq!(s.memory_bytes(), 2 * 8 + 8);
        assert_eq!(s.fro_norm_sq(), 1.0);
    }

    #[test]
    fn new_validates_shape() {
        assert!(SparseTensor::new(&[]).is_err());
        assert!(SparseTensor::new(&[3, 0]).is_err());
    }
}
