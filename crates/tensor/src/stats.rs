//! Statistical preprocessing along tensor modes — the standard cleanup
//! steps (per-fiber centering/standardization) applied to panels like the
//! air-quality and stock tensors before decomposition.

use crate::dense::DenseTensor;
use crate::error::{Result, TensorError};

/// Per-index means along mode `mode`: entry `i` is the mean over all
/// elements whose mode-`mode` index equals `i`.
pub fn mode_means(x: &DenseTensor, mode: usize) -> Result<Vec<f64>> {
    let order = x.order();
    if mode >= order {
        return Err(TensorError::InvalidMode { mode, order });
    }
    let dim = x.shape()[mode];
    let left: usize = x.shape()[..mode].iter().product();
    let right: usize = x.shape()[mode + 1..].iter().product();
    let mut sums = vec![0.0f64; dim];
    let data = x.as_slice();
    for r in 0..right {
        for i in 0..dim {
            let base = r * dim * left + i * left;
            let mut acc = 0.0;
            for &v in &data[base..base + left] {
                acc += v;
            }
            sums[i] += acc;
        }
    }
    let count = (left * right) as f64;
    for s in &mut sums {
        *s /= count;
    }
    Ok(sums)
}

/// Per-index standard deviations along mode `mode` (population variant).
pub fn mode_stds(x: &DenseTensor, mode: usize) -> Result<Vec<f64>> {
    let means = mode_means(x, mode)?;
    let dim = x.shape()[mode];
    let left: usize = x.shape()[..mode].iter().product();
    let right: usize = x.shape()[mode + 1..].iter().product();
    let mut sq = vec![0.0f64; dim];
    let data = x.as_slice();
    for r in 0..right {
        for i in 0..dim {
            let base = r * dim * left + i * left;
            let m = means[i];
            let mut acc = 0.0;
            for &v in &data[base..base + left] {
                acc += (v - m) * (v - m);
            }
            sq[i] += acc;
        }
    }
    let count = (left * right) as f64;
    Ok(sq.into_iter().map(|s| (s / count).sqrt()).collect())
}

/// Subtracts the per-index mean along `mode` in place; returns the means so
/// the transform can be undone.
pub fn center_mode(x: &mut DenseTensor, mode: usize) -> Result<Vec<f64>> {
    let means = mode_means(x, mode)?;
    apply_affine(x, mode, &means, None)?;
    Ok(means)
}

/// Standardizes along `mode` in place (`(x − μᵢ)/σᵢ`; indices with zero
/// spread are only centered). Returns `(means, stds)`.
pub fn standardize_mode(x: &mut DenseTensor, mode: usize) -> Result<(Vec<f64>, Vec<f64>)> {
    let means = mode_means(x, mode)?;
    let stds = mode_stds(x, mode)?;
    apply_affine(x, mode, &means, Some(&stds))?;
    Ok((means, stds))
}

fn apply_affine(
    x: &mut DenseTensor,
    mode: usize,
    means: &[f64],
    stds: Option<&[f64]>,
) -> Result<()> {
    let dim = x.shape()[mode];
    let left: usize = x.shape()[..mode].iter().product();
    let right: usize = x.shape()[mode + 1..].iter().product();
    let data = x.as_mut_slice();
    for r in 0..right {
        for i in 0..dim {
            let base = r * dim * left + i * left;
            let m = means[i];
            let inv = match stds {
                Some(s) if s[i] > 0.0 => 1.0 / s[i],
                _ => 1.0,
            };
            for v in &mut data[base..base + left] {
                *v = (*v - m) * inv;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample() -> DenseTensor {
        DenseTensor::from_fn(&[3, 4, 2], |idx| {
            (idx[0] * 10) as f64 + idx[1] as f64 + 0.5 * idx[2] as f64
        })
        .unwrap()
    }

    #[test]
    fn mode_means_match_manual() {
        let x = sample();
        let means = mode_means(&x, 0).unwrap();
        // For fixed i0, mean over i1 in 0..4 (mean 1.5) and i2 in 0..2
        // (mean 0.25): total = 10·i0 + 1.75.
        for (i, m) in means.iter().enumerate() {
            assert!((m - (10.0 * i as f64 + 1.75)).abs() < 1e-12, "i={i} m={m}");
        }
        assert!(mode_means(&x, 3).is_err());
    }

    #[test]
    fn center_zeroes_the_means() {
        let mut x = sample();
        let original = x.clone();
        let means = center_mode(&mut x, 1).unwrap();
        let after = mode_means(&x, 1).unwrap();
        for m in after {
            assert!(m.abs() < 1e-12);
        }
        // Undo.
        for i in 0..4 {
            for i0 in 0..3 {
                for i2 in 0..2 {
                    let v = x.get(&[i0, i, i2]) + means[i];
                    assert!((v - original.get(&[i0, i, i2])).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn standardize_gives_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = DenseTensor::from_fn(&[5, 30, 4], |idx| {
            (idx[0] as f64 + 1.0) * rng.gen_range(-1.0..1.0) + idx[0] as f64 * 3.0
        })
        .unwrap();
        standardize_mode(&mut x, 0).unwrap();
        let means = mode_means(&x, 0).unwrap();
        let stds = mode_stds(&x, 0).unwrap();
        for i in 0..5 {
            assert!(means[i].abs() < 1e-10, "mean {i}");
            assert!((stds[i] - 1.0).abs() < 1e-10, "std {i}");
        }
    }

    #[test]
    fn constant_fiber_is_only_centered() {
        let mut x =
            DenseTensor::from_fn(&[2, 3], |idx| if idx[0] == 0 { 5.0 } else { idx[1] as f64 })
                .unwrap();
        let (means, stds) = standardize_mode(&mut x, 0).unwrap();
        assert!((means[0] - 5.0).abs() < 1e-12);
        assert_eq!(stds[0], 0.0);
        for j in 0..3 {
            assert_eq!(x.get(&[0, j]), 0.0);
        }
    }

    #[test]
    fn works_on_last_mode() {
        let mut x = sample();
        center_mode(&mut x, 2).unwrap();
        for m in mode_means(&x, 2).unwrap() {
            assert!(m.abs() < 1e-12);
        }
    }
}
