//! Dataset registry: named analogs of the D-Tucker evaluation datasets with
//! CI-scale and paper-scale presets.

use crate::airquality::{airquality, AirQualityConfig};
use crate::climate::{climate, ClimateConfig};
use crate::hsi::{hsi, HsiConfig};
use crate::stock::{stock, StockConfig};
use crate::traffic::{traffic, TrafficConfig};
use crate::video::{video, VideoConfig};
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::{Result, TensorError};

/// The analog datasets (see DESIGN.md §5 for the substitution rationale).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Boats surveillance-video analog (order 3, two large spatial modes).
    Boats,
    /// Air-quality analog (order 3, one tiny mode, long time mode).
    AirQuality,
    /// Traffic-volume analog (order 3, very large leading mode).
    Traffic,
    /// Hyperspectral-image analog (order 3, huge slices, few of them).
    Hsi,
    /// Climate/aerosol-absorption analog (order 4).
    Absorb,
    /// Stock-market panel analog (stock × feature × day, latent sectors).
    Stock,
}

impl Dataset {
    /// All datasets, in the order the experiment tables print them.
    pub const ALL: [Dataset; 6] = [
        Dataset::Boats,
        Dataset::AirQuality,
        Dataset::Traffic,
        Dataset::Hsi,
        Dataset::Absorb,
        Dataset::Stock,
    ];

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Boats => "boats",
            Dataset::AirQuality => "airquality",
            Dataset::Traffic => "traffic",
            Dataset::Hsi => "hsi",
            Dataset::Absorb => "absorb",
            Dataset::Stock => "stock",
        }
    }

    /// Parses a dataset name.
    pub fn parse(s: &str) -> Option<Dataset> {
        Dataset::ALL
            .iter()
            .copied()
            .find(|d| d.name() == s.to_lowercase())
    }
}

/// Size presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment sizes for CI and local iteration.
    Ci,
    /// Medium sizes: minutes per experiment, clearly separates the methods.
    Bench,
    /// Paper-comparable sizes (gigabyte-class tensors; opt-in).
    Paper,
}

/// Shape a dataset/scale combination will have, without generating it.
pub fn shape_of(ds: Dataset, scale: Scale) -> Vec<usize> {
    match (ds, scale) {
        (Dataset::Boats, Scale::Ci) => vec![64, 48, 40],
        (Dataset::Boats, Scale::Bench) => vec![160, 120, 200],
        (Dataset::Boats, Scale::Paper) => vec![320, 240, 700],
        (Dataset::AirQuality, Scale::Ci) => vec![60, 6, 100],
        (Dataset::AirQuality, Scale::Bench) => vec![200, 6, 2000],
        (Dataset::AirQuality, Scale::Paper) => vec![376, 6, 11688],
        (Dataset::Traffic, Scale::Ci) => vec![100, 24, 30],
        (Dataset::Traffic, Scale::Bench) => vec![400, 96, 120],
        (Dataset::Traffic, Scale::Paper) => vec![1084, 96, 2000],
        (Dataset::Hsi, Scale::Ci) => vec![48, 48, 20],
        (Dataset::Hsi, Scale::Bench) => vec![160, 160, 60],
        (Dataset::Hsi, Scale::Paper) => vec![512, 512, 191],
        (Dataset::Absorb, Scale::Ci) => vec![24, 30, 6, 20],
        (Dataset::Absorb, Scale::Bench) => vec![64, 96, 15, 60],
        (Dataset::Absorb, Scale::Paper) => vec![192, 288, 30, 240],
        (Dataset::Stock, Scale::Ci) => vec![80, 6, 60],
        (Dataset::Stock, Scale::Bench) => vec![600, 20, 500],
        (Dataset::Stock, Scale::Paper) => vec![3028, 54, 3050],
    }
}

/// Generates a dataset analog deterministically.
pub fn generate(ds: Dataset, scale: Scale, seed: u64) -> Result<DenseTensor> {
    let shape = shape_of(ds, scale);
    match ds {
        Dataset::Boats => video(&VideoConfig::new(shape[0], shape[1], shape[2]), seed),
        Dataset::AirQuality => {
            airquality(&AirQualityConfig::new(shape[0], shape[1], shape[2]), seed)
        }
        Dataset::Traffic => traffic(&TrafficConfig::new(shape[0], shape[1], shape[2]), seed),
        Dataset::Hsi => hsi(&HsiConfig::new(shape[0], shape[1], shape[2]), seed),
        Dataset::Absorb => climate(
            &ClimateConfig::new(shape[0], shape[1], shape[2], shape[3]),
            seed,
        ),
        Dataset::Stock => stock(&StockConfig::new(shape[0], shape[1], shape[2]), seed),
    }
}

/// Parses a scale name.
pub fn parse_scale(s: &str) -> Result<Scale> {
    match s.to_lowercase().as_str() {
        "ci" => Ok(Scale::Ci),
        "bench" => Ok(Scale::Bench),
        "paper" => Ok(Scale::Paper),
        other => Err(TensorError::Format(format!(
            "unknown scale '{other}' (ci|bench|paper)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for ds in Dataset::ALL {
            assert_eq!(Dataset::parse(ds.name()), Some(ds));
        }
        assert_eq!(Dataset::parse("BOATS"), Some(Dataset::Boats));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn generate_matches_declared_shape() {
        for ds in Dataset::ALL {
            let x = generate(ds, Scale::Ci, 1).unwrap();
            assert_eq!(
                x.shape(),
                shape_of(ds, Scale::Ci).as_slice(),
                "{}",
                ds.name()
            );
        }
    }

    #[test]
    fn absorb_is_order4_others_order3() {
        assert_eq!(shape_of(Dataset::Absorb, Scale::Ci).len(), 4);
        for ds in [
            Dataset::Boats,
            Dataset::AirQuality,
            Dataset::Traffic,
            Dataset::Hsi,
            Dataset::Stock,
        ] {
            assert_eq!(shape_of(ds, Scale::Ci).len(), 3);
        }
    }

    #[test]
    fn scales_are_ordered_by_volume() {
        for ds in Dataset::ALL {
            let ci: usize = shape_of(ds, Scale::Ci).iter().product();
            let bench: usize = shape_of(ds, Scale::Bench).iter().product();
            let paper: usize = shape_of(ds, Scale::Paper).iter().product();
            assert!(ci < bench && bench < paper, "{}", ds.name());
        }
    }

    #[test]
    fn parse_scale_names() {
        assert!(matches!(parse_scale("ci"), Ok(Scale::Ci)));
        assert!(matches!(parse_scale("Bench"), Ok(Scale::Bench)));
        assert!(matches!(parse_scale("PAPER"), Ok(Scale::Paper)));
        assert!(parse_scale("huge").is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(Dataset::AirQuality, Scale::Ci, 9).unwrap();
        let b = generate(Dataset::AirQuality, Scale::Ci, 9).unwrap();
        let c = generate(Dataset::AirQuality, Scale::Ci, 10).unwrap();
        assert_eq!(a, b);
        assert!(a.sub(&c).unwrap().fro_norm() > 0.0);
    }
}
