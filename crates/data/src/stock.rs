//! Stock-market analog: shape `(stock, feature, day)` — the panel the
//! authors use for their discovery experiments (daily prices/indicators for
//! thousands of Korean stocks). Stocks belong to latent **sectors** whose
//! influence drifts over time, so factor analyses can recover sector
//! membership and detect regime changes; market-wide shock windows inject
//! anomalies.

use crate::synthetic::smooth_profile;
use dtucker_linalg::random::gaussian;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stock-panel generator parameters.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Number of stocks `I₁` (large).
    pub stocks: usize,
    /// Number of features per stock `I₂` (prices + indicators; small).
    pub features: usize,
    /// Number of trading days `I₃`.
    pub days: usize,
    /// Number of latent sectors.
    pub sectors: usize,
    /// Observation-noise standard deviation.
    pub noise_sigma: f64,
    /// Market-shock windows: `(start_day, length, magnitude)`.
    pub shocks: Vec<(usize, usize, f64)>,
}

impl StockConfig {
    /// A small default suitable for tests and CI benchmarks: 4 sectors, 5%
    /// noise, one mid-series shock.
    pub fn new(stocks: usize, features: usize, days: usize) -> Self {
        StockConfig {
            stocks,
            features,
            days,
            sectors: 4,
            noise_sigma: 0.05,
            shocks: vec![(days / 2, (days / 20).max(1), 2.0)],
        }
    }
}

/// Sector membership used by the generator (exposed for discovery-style
/// evaluations: examples compare recovered factors against this ground
/// truth).
pub fn sector_of(stock: usize, sectors: usize) -> usize {
    stock % sectors.max(1)
}

/// Generates the stock tensor (shape `[stocks, features, days]`).
pub fn stock(cfg: &StockConfig, seed: u64) -> Result<DenseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (s_n, f_n, d_n) = (cfg.stocks, cfg.features, cfg.days);
    let sec_n = cfg.sectors.max(1);

    // Per-sector temporal trajectories: smooth trends whose relative
    // strength drifts across the series (regime change).
    let sector_paths: Vec<Vec<f64>> = (0..sec_n)
        .map(|c| {
            let base = smooth_profile(d_n, 3, &mut rng);
            let drift = rng.gen_range(-1.0..1.0);
            base.iter()
                .enumerate()
                .map(|(t, &b)| {
                    let frac = t as f64 / d_n.max(1) as f64;
                    1.0 + 0.5 * b + drift * frac * if c % 2 == 0 { 1.0 } else { -1.0 }
                })
                .collect()
        })
        .collect();

    // Per-feature response to the sector signal (price-like features load
    // positively; indicator-like features mix signs).
    let feature_loads: Vec<f64> = (0..f_n)
        .map(|f| {
            if f < f_n.div_ceil(2) {
                rng.gen_range(0.6..1.0)
            } else {
                rng.gen_range(-0.6..0.6)
            }
        })
        .collect();

    // Per-stock idiosyncratic scale and sector affinity.
    let stock_scale: Vec<f64> = (0..s_n).map(|_| rng.gen_range(0.5..1.5)).collect();
    let affinity: Vec<f64> = (0..s_n).map(|_| rng.gen_range(0.7..1.0)).collect();

    let mut x = DenseTensor::zeros(&[s_n, f_n, d_n])?;
    let data = x.as_mut_slice();
    for d in 0..d_n {
        // Market-wide shock factor for this day.
        let mut shock = 0.0;
        for &(start, len, mag) in &cfg.shocks {
            if d >= start && d < start + len {
                shock = -mag; // crashes pull everything down together
            }
        }
        for f in 0..f_n {
            let base = d * s_n * f_n + f * s_n;
            let fl = feature_loads[f];
            for s in 0..s_n {
                let sec = sector_of(s, sec_n);
                let signal = affinity[s] * sector_paths[sec][d] + shock;
                data[base + s] =
                    stock_scale[s] * fl * signal + cfg.noise_sigma * gaussian(&mut rng);
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = StockConfig::new(40, 6, 60);
        let a = stock(&cfg, 1).unwrap();
        assert_eq!(a.shape(), &[40, 6, 60]);
        assert_eq!(a, stock(&cfg, 1).unwrap());
    }

    #[test]
    fn shock_window_depresses_the_market() {
        let mut cfg = StockConfig::new(30, 4, 100);
        cfg.noise_sigma = 0.0;
        cfg.shocks = vec![(50, 5, 3.0)];
        let x = stock(&cfg, 2).unwrap();
        // Mean of a price-like feature (f=0) across stocks, inside vs
        // outside the shock.
        let day_mean = |d: usize| -> f64 { (0..30).map(|s| x.get(&[s, 0, d])).sum::<f64>() / 30.0 };
        let normal = (day_mean(20) + day_mean(80)) / 2.0;
        let shocked = day_mean(52);
        assert!(
            shocked < normal - 1.0,
            "shocked {shocked} vs normal {normal}"
        );
    }

    #[test]
    fn noiseless_rank_bounded_by_sectors() {
        let mut cfg = StockConfig::new(32, 5, 60);
        cfg.noise_sigma = 0.0;
        cfg.shocks.clear();
        let x = stock(&cfg, 3).unwrap();
        // Mode-0 rank ≤ sectors (stock loadings live in sector space).
        let unf = dtucker_tensor::unfold::unfold(&x, 0).unwrap();
        let svd = dtucker_linalg::svd::svd(&unf).unwrap();
        let idx = cfg.sectors.min(svd.s.len() - 1);
        assert!(
            svd.s[idx] < 1e-6 * svd.s[0],
            "σ ratios: {:?}",
            svd.s
                .iter()
                .take(idx + 1)
                .map(|v| v / svd.s[0])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sector_assignment_cycles() {
        assert_eq!(sector_of(0, 4), 0);
        assert_eq!(sector_of(5, 4), 1);
        assert_eq!(sector_of(7, 4), 3);
        assert_eq!(sector_of(3, 0), 0);
    }
}
