//! Boats-analog: a grayscale surveillance video of shape
//! `(height, width, time)` — a static smooth background with a handful of
//! objects drifting across the frame plus pixel noise.
//!
//! The structural property that matters to the algorithms: the background is
//! (numerically) rank-1 across time and each frame is approximately low
//! rank, so the frontal-slice SVDs decay fast — the regime the Boats dataset
//! puts D-Tucker in.

use dtucker_linalg::random::gaussian;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Video generator parameters.
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// Frame height `I₁`.
    pub height: usize,
    /// Frame width `I₂`.
    pub width: usize,
    /// Number of frames `I₃` (the temporal mode).
    pub frames: usize,
    /// Number of moving objects.
    pub blobs: usize,
    /// Pixel-noise standard deviation (background intensity is O(1)).
    pub noise_sigma: f64,
}

impl VideoConfig {
    /// A small default suitable for tests and CI benchmarks.
    pub fn new(height: usize, width: usize, frames: usize) -> Self {
        VideoConfig {
            height,
            width,
            frames,
            blobs: 4,
            noise_sigma: 0.02,
        }
    }
}

/// Generates the video tensor (shape `[height, width, frames]`).
pub fn video(cfg: &VideoConfig, seed: u64) -> Result<DenseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (h, w, t_len) = (cfg.height, cfg.width, cfg.frames);

    // Smooth static background: separable vertical/horizontal gradients.
    let bg_v: Vec<f64> = (0..h)
        .map(|i| 0.6 + 0.3 * (std::f64::consts::PI * i as f64 / h.max(1) as f64).sin())
        .collect();
    let bg_h: Vec<f64> = (0..w)
        .map(|j| 0.8 + 0.2 * (2.0 * std::f64::consts::PI * j as f64 / w.max(1) as f64).cos())
        .collect();
    let mut background = vec![0.0f64; h * w]; // column-major within a frame
    for j in 0..w {
        for i in 0..h {
            background[j * h + i] = bg_v[i] * bg_h[j];
        }
    }

    // Moving blobs: linear trajectories that wrap around.
    struct Blob {
        x0: f64,
        y0: f64,
        vx: f64,
        vy: f64,
        sigma: f64,
        amp: f64,
    }
    let blobs: Vec<Blob> = (0..cfg.blobs)
        .map(|_| Blob {
            x0: rng.gen_range(0.0..w as f64),
            y0: rng.gen_range(0.0..h as f64),
            vx: rng.gen_range(-0.8..0.8) * w as f64 / t_len.max(1) as f64,
            vy: rng.gen_range(-0.3..0.3) * h as f64 / t_len.max(1) as f64,
            sigma: rng.gen_range(0.03..0.08) * (h.min(w)) as f64,
            amp: rng.gen_range(0.4..0.9),
        })
        .collect();

    let mut x = DenseTensor::zeros(&[h, w, t_len])?;
    let data = x.as_mut_slice();
    for t in 0..t_len {
        let frame = &mut data[t * h * w..(t + 1) * h * w];
        frame.copy_from_slice(&background);
        for b in &blobs {
            let cx = (b.x0 + b.vx * t as f64).rem_euclid(w as f64);
            let cy = (b.y0 + b.vy * t as f64).rem_euclid(h as f64);
            let r = (3.0 * b.sigma).ceil() as isize;
            let inv2s2 = 1.0 / (2.0 * b.sigma * b.sigma);
            for dj in -r..=r {
                let j = (cx as isize + dj).rem_euclid(w as isize) as usize;
                for di in -r..=r {
                    let i = (cy as isize + di).rem_euclid(h as isize) as usize;
                    let d2 = (dj * dj + di * di) as f64;
                    frame[j * h + i] += b.amp * (-d2 * inv2s2).exp();
                }
            }
        }
        if cfg.noise_sigma > 0.0 {
            for v in frame.iter_mut() {
                *v += cfg.noise_sigma * gaussian(&mut rng);
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = VideoConfig::new(16, 12, 10);
        let a = video(&cfg, 7).unwrap();
        let b = video(&cfg, 7).unwrap();
        assert_eq!(a.shape(), &[16, 12, 10]);
        assert_eq!(a, b);
        let c = video(&cfg, 8).unwrap();
        assert!(a.sub(&c).unwrap().fro_norm() > 0.0);
    }

    #[test]
    fn frames_are_approximately_low_rank() {
        let cfg = VideoConfig {
            height: 24,
            width: 20,
            frames: 6,
            blobs: 2,
            noise_sigma: 0.0,
        };
        let x = video(&cfg, 1).unwrap();
        let s = x.frontal_slice(0).unwrap();
        let svd = dtucker_linalg::svd::svd(&s).unwrap();
        // Rank-8 captures ≥ 95% of frame energy (smooth background is
        // rank 1; blobs decay fast).
        let total: f64 = svd.s.iter().map(|v| v * v).sum();
        let head: f64 = svd.s[..8.min(svd.s.len())].iter().map(|v| v * v).sum();
        assert!(head / total > 0.95, "captured {}", head / total);
    }

    #[test]
    fn background_is_temporally_stable() {
        let cfg = VideoConfig {
            height: 20,
            width: 16,
            frames: 8,
            blobs: 0,
            noise_sigma: 0.0,
        };
        let x = video(&cfg, 2).unwrap();
        let f0 = x.frontal_slice(0).unwrap();
        let f5 = x.frontal_slice(5).unwrap();
        assert!(f0.approx_eq(&f5, 1e-12), "static background must not move");
    }

    #[test]
    fn blobs_move_over_time() {
        let cfg = VideoConfig {
            height: 20,
            width: 16,
            frames: 8,
            blobs: 3,
            noise_sigma: 0.0,
        };
        let x = video(&cfg, 3).unwrap();
        let f0 = x.frontal_slice(0).unwrap();
        let f7 = x.frontal_slice(7).unwrap();
        assert!(f0.max_abs_diff(&f7) > 0.05, "blobs should move");
    }
}
