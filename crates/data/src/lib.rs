//! # dtucker-data
//!
//! Seeded synthetic workload generators standing in for the real datasets
//! of the D-Tucker evaluation (which cannot be redistributed here). Each
//! generator preserves the structural property its real counterpart
//! stresses — see `DESIGN.md` §5 for the substitution table.
//!
//! * [`video`] — Boats-like surveillance video;
//! * [`airquality`] — station × pollutant × day panel;
//! * [`traffic`] — sensor × time-of-day × day volumes;
//! * [`hsi`] — hyperspectral linear-mixing scene;
//! * [`climate`] — order-4 aerosol-absorption field;
//! * [`stock`] — stock × feature × day market panel with latent sectors;
//! * [`registry`] — named presets at CI / bench / paper scales;
//! * [`synthetic`] — the shared separable-sum building blocks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

/// Air-quality surrogate (diurnal pollutant fields).
pub mod airquality;
/// Climate surrogate (seasonal temperature fields).
pub mod climate;
/// Hyperspectral-image surrogate (smooth spectral mixtures).
pub mod hsi;
/// Dataset registry: names, scales, shapes, generation.
pub mod registry;
/// Stock-price surrogate (correlated random walks).
pub mod stock;
/// Shared separable-sum synthetic building blocks.
pub mod synthetic;
/// Traffic-volume surrogate (rush-hour periodicities).
pub mod traffic;
/// Video surrogate (moving blobs over static background).
pub mod video;

pub use registry::{generate, parse_scale, shape_of, Dataset, Scale};
