//! # dtucker-data
//!
//! Seeded synthetic workload generators standing in for the real datasets
//! of the D-Tucker evaluation (which cannot be redistributed here). Each
//! generator preserves the structural property its real counterpart
//! stresses — see `DESIGN.md` §5 for the substitution table.
//!
//! * [`video`] — Boats-like surveillance video;
//! * [`airquality`] — station × pollutant × day panel;
//! * [`traffic`] — sensor × time-of-day × day volumes;
//! * [`hsi`] — hyperspectral linear-mixing scene;
//! * [`climate`] — order-4 aerosol-absorption field;
//! * [`stock`] — stock × feature × day market panel with latent sectors;
//! * [`registry`] — named presets at CI / bench / paper scales;
//! * [`synthetic`] — the shared separable-sum building blocks.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)]

pub mod airquality;
pub mod climate;
pub mod hsi;
pub mod registry;
pub mod stock;
pub mod synthetic;
pub mod traffic;
pub mod video;

pub use registry::{generate, parse_scale, shape_of, Dataset, Scale};
