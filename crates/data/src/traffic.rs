//! Traffic-analog: shape `(sensor, time-of-day, day)` — strongly periodic
//! volumes (rush hours, weekday/weekend alternation) with sensor mixtures
//! and occasional bursts. Mirrors the BigTrafficData tensor's trait of one
//! very large leading mode.

use crate::synthetic::{bump_profile, smooth_profile};
use dtucker_linalg::random::gaussian;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Traffic generator parameters.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of road sensors `I₁` (large).
    pub sensors: usize,
    /// Intra-day sampling bins `I₂` (e.g. 96 = 15-minute bins).
    pub bins: usize,
    /// Number of days `I₃` (the temporal mode).
    pub days: usize,
    /// Latent mixture components.
    pub latent: usize,
    /// Noise standard deviation.
    pub noise_sigma: f64,
    /// Probability that a (sensor, day) pair carries an incident burst.
    pub burst_rate: f64,
}

impl TrafficConfig {
    /// A small default suitable for tests and CI benchmarks.
    pub fn new(sensors: usize, bins: usize, days: usize) -> Self {
        TrafficConfig {
            sensors,
            bins,
            days,
            latent: 4,
            noise_sigma: 0.05,
            burst_rate: 0.01,
        }
    }
}

/// Generates the traffic tensor (shape `[sensors, bins, days]`).
pub fn traffic(cfg: &TrafficConfig, seed: u64) -> Result<DenseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (s_n, b_n, d_n) = (cfg.sensors, cfg.bins, cfg.days);

    // Daily profiles: morning rush, evening rush, flat night.
    let morning = bump_profile(b_n, 0.33, 0.06);
    let evening = bump_profile(b_n, 0.72, 0.08);
    let baseline: Vec<f64> = vec![0.2; b_n];
    let profiles = [morning, evening, baseline];

    // Per-latent-component sensor loadings and weekday factors.
    let mut terms: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = Vec::new();
    for r in 0..cfg.latent {
        let sensors: Vec<f64> = smooth_profile(s_n, 2 + r, &mut rng)
            .iter()
            .map(|v| 0.5 + 0.5 * v.abs())
            .collect();
        let profile = profiles[r % profiles.len()].clone();
        // Day factor: weekday high, weekend low, mild seasonal drift.
        let weekday_amp = rng.gen_range(0.7..1.0);
        let weekend_amp = rng.gen_range(0.2..0.5);
        let days: Vec<f64> = (0..d_n)
            .map(|d| {
                let dow = d % 7;
                let base = if dow < 5 { weekday_amp } else { weekend_amp };
                base * (1.0 + 0.1 * (d as f64 / 30.0).sin())
            })
            .collect();
        terms.push((sensors, profile, days));
    }

    let mut x = DenseTensor::zeros(&[s_n, b_n, d_n])?;
    let data = x.as_mut_slice();
    for d in 0..d_n {
        for b in 0..b_n {
            let off = d * s_n * b_n + b * s_n;
            for s in 0..s_n {
                let mut acc = 0.0;
                for (sv, pv, dv) in &terms {
                    acc += sv[s] * pv[b] * dv[d];
                }
                data[off + s] = acc + cfg.noise_sigma * gaussian(&mut rng);
            }
        }
    }

    // Sparse incident bursts: a localized spike in one sensor's day.
    let n_bursts = ((s_n * d_n) as f64 * cfg.burst_rate) as usize;
    for _ in 0..n_bursts {
        let s = rng.gen_range(0..s_n);
        let d = rng.gen_range(0..d_n);
        let b0 = rng.gen_range(0..b_n);
        let amp = rng.gen_range(0.5..1.5);
        for db in 0..(b_n / 12).max(1) {
            let b = (b0 + db) % b_n;
            data[d * s_n * b_n + b * s_n + s] += amp;
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = TrafficConfig::new(30, 24, 14);
        let a = traffic(&cfg, 1).unwrap();
        assert_eq!(a.shape(), &[30, 24, 14]);
        assert_eq!(a, traffic(&cfg, 1).unwrap());
    }

    #[test]
    fn weekday_weekend_difference() {
        let mut cfg = TrafficConfig::new(20, 24, 14);
        cfg.noise_sigma = 0.0;
        cfg.burst_rate = 0.0;
        let x = traffic(&cfg, 2).unwrap();
        // Day 2 (weekday) mean volume > day 5 (weekend).
        let mean_day = |d: usize| -> f64 {
            let mut acc = 0.0;
            for b in 0..24 {
                for s in 0..20 {
                    acc += x.get(&[s, b, d]);
                }
            }
            acc / (24.0 * 20.0)
        };
        assert!(
            mean_day(2) > mean_day(5),
            "{} vs {}",
            mean_day(2),
            mean_day(5)
        );
    }

    #[test]
    fn noiseless_is_low_rank() {
        let mut cfg = TrafficConfig::new(24, 24, 14);
        cfg.noise_sigma = 0.0;
        cfg.burst_rate = 0.0;
        let x = traffic(&cfg, 3).unwrap();
        let unf = dtucker_tensor::unfold::unfold(&x, 0).unwrap();
        let svd = dtucker_linalg::svd::svd(&unf).unwrap();
        let idx = cfg.latent.min(svd.s.len() - 1);
        assert!(svd.s[idx] < 1e-8 * svd.s[0], "σ = {:?}", &svd.s[..idx + 1]);
    }

    #[test]
    fn bursts_add_outliers() {
        let mut cfg = TrafficConfig::new(20, 24, 10);
        cfg.noise_sigma = 0.0;
        cfg.burst_rate = 0.0;
        let clean = traffic(&cfg, 4).unwrap();
        cfg.burst_rate = 0.05;
        let bursty = traffic(&cfg, 4).unwrap();
        assert!(bursty.sub(&clean).unwrap().fro_norm() > 0.0);
    }
}
