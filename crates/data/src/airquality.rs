//! Air-quality analog: shape `(station, pollutant, time)` — seasonal and
//! diurnal pollutant cycles with station-correlated loadings. The key
//! structural trait of the real dataset: one tiny mode (a handful of
//! pollutants) next to a long time mode.

use crate::synthetic::{periodic_profile, separable_sum, smooth_profile};
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Air-quality generator parameters.
#[derive(Debug, Clone)]
pub struct AirQualityConfig {
    /// Number of monitoring stations `I₁`.
    pub stations: usize,
    /// Number of pollutant channels `I₂` (small, e.g. 6).
    pub pollutants: usize,
    /// Number of (daily) timesteps `I₃`.
    pub timesteps: usize,
    /// Latent factor count (effective multilinear rank of the signal).
    pub latent: usize,
    /// Noise standard deviation.
    pub noise_sigma: f64,
}

impl AirQualityConfig {
    /// A small default suitable for tests and CI benchmarks.
    pub fn new(stations: usize, pollutants: usize, timesteps: usize) -> Self {
        AirQualityConfig {
            stations,
            pollutants,
            timesteps,
            latent: 4,
            noise_sigma: 0.05,
        }
    }
}

/// Generates the air-quality tensor (shape `[stations, pollutants, time]`).
pub fn airquality(cfg: &AirQualityConfig, seed: u64) -> Result<DenseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut terms = Vec::with_capacity(cfg.latent);
    for r in 0..cfg.latent {
        // Station loadings: smooth over the (implicitly ordered) station
        // index — nearby stations see similar air.
        let stations = smooth_profile(cfg.stations, 2 + r % 2, &mut rng);
        // Pollutant weights: arbitrary signs, pollutants co-vary.
        let pollutants: Vec<f64> = (0..cfg.pollutants)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        // Temporal factor: annual season + weekly cycle + slow trend.
        let annual = periodic_profile(cfg.timesteps, 365.25, &mut rng);
        let weekly = periodic_profile(cfg.timesteps, 7.0, &mut rng);
        let trend_slope = rng.gen_range(-0.3..0.3);
        let time: Vec<f64> = (0..cfg.timesteps)
            .map(|t| {
                let frac = t as f64 / cfg.timesteps.max(1) as f64;
                1.0 + annual[t] + 0.3 * weekly[t] + trend_slope * frac
            })
            .collect();
        terms.push(vec![stations, pollutants, time]);
    }
    separable_sum(
        &[cfg.stations, cfg.pollutants, cfg.timesteps],
        &terms,
        cfg.noise_sigma,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = AirQualityConfig::new(20, 6, 50);
        let a = airquality(&cfg, 1).unwrap();
        assert_eq!(a.shape(), &[20, 6, 50]);
        assert_eq!(a, airquality(&cfg, 1).unwrap());
    }

    #[test]
    fn signal_is_low_multilinear_rank() {
        let mut cfg = AirQualityConfig::new(24, 6, 80);
        cfg.noise_sigma = 0.0;
        let x = airquality(&cfg, 2).unwrap();
        // Rank ≤ latent (4) in every mode.
        for mode in 0..3 {
            let unf = dtucker_tensor::unfold::unfold(&x, mode).unwrap();
            let svd = dtucker_linalg::svd::svd(&unf).unwrap();
            let idx = 4.min(svd.s.len() - 1);
            assert!(
                svd.s[idx] < 1e-8 * svd.s[0].max(1e-300),
                "mode {mode}: σ₅/σ₁ = {}",
                svd.s[idx] / svd.s[0]
            );
        }
    }

    #[test]
    fn dtucker_recovers_it_well() {
        use dtucker_core::{DTucker, DTuckerConfig};
        let cfg = AirQualityConfig::new(30, 6, 60);
        let x = airquality(&cfg, 3).unwrap();
        let out = DTucker::new(DTuckerConfig::new(&[4, 4, 4]).with_seed(4))
            .decompose(&x)
            .unwrap();
        let err = out.decomposition.relative_error_sq(&x).unwrap();
        assert!(err < 0.05, "error {err}");
    }
}
