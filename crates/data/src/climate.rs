//! Absorb-analog: an order-4 climate tensor of shape
//! `(latitude, longitude, altitude, time)` — smooth geographic fields with
//! altitude attenuation profiles and a slow seasonal drift. Its purpose in
//! the suite is to exercise all N > 3 code paths (the frontal-slice count
//! becomes `L = I₃·I₄`).

use crate::synthetic::{separable_sum, smooth_profile};
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Climate generator parameters.
#[derive(Debug, Clone)]
pub struct ClimateConfig {
    /// Latitude grid size `I₁`.
    pub lat: usize,
    /// Longitude grid size `I₂`.
    pub lon: usize,
    /// Altitude levels `I₃`.
    pub alt: usize,
    /// Timesteps `I₄` (the temporal mode).
    pub timesteps: usize,
    /// Latent components.
    pub latent: usize,
    /// Noise standard deviation.
    pub noise_sigma: f64,
}

impl ClimateConfig {
    /// A small default suitable for tests and CI benchmarks.
    pub fn new(lat: usize, lon: usize, alt: usize, timesteps: usize) -> Self {
        ClimateConfig {
            lat,
            lon,
            alt,
            timesteps,
            latent: 3,
            noise_sigma: 0.03,
        }
    }
}

/// Generates the climate tensor (shape `[lat, lon, alt, time]`).
pub fn climate(cfg: &ClimateConfig, seed: u64) -> Result<DenseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut terms = Vec::with_capacity(cfg.latent);
    for _ in 0..cfg.latent {
        let lat = smooth_profile(cfg.lat, 2, &mut rng);
        let lon = smooth_profile(cfg.lon, 3, &mut rng);
        // Aerosol absorption decays with altitude, with a random scale
        // height.
        let scale_h = rng.gen_range(0.2..0.6);
        let alt: Vec<f64> = (0..cfg.alt)
            .map(|a| (-(a as f64) / (scale_h * cfg.alt.max(1) as f64)).exp())
            .collect();
        // Seasonal cycle plus slow drift.
        let season_phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let drift = rng.gen_range(-0.2..0.2);
        let time: Vec<f64> = (0..cfg.timesteps)
            .map(|t| {
                let frac = t as f64 / cfg.timesteps.max(1) as f64;
                1.0 + 0.5 * (std::f64::consts::TAU * frac * 4.0 + season_phase).sin() + drift * frac
            })
            .collect();
        terms.push(vec![lat, lon, alt, time]);
    }
    separable_sum(
        &[cfg.lat, cfg.lon, cfg.alt, cfg.timesteps],
        &terms,
        cfg.noise_sigma,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = ClimateConfig::new(10, 12, 5, 8);
        let a = climate(&cfg, 1).unwrap();
        assert_eq!(a.shape(), &[10, 12, 5, 8]);
        assert_eq!(a, climate(&cfg, 1).unwrap());
        assert_eq!(a.order(), 4);
    }

    #[test]
    fn absorption_decays_with_altitude() {
        let mut cfg = ClimateConfig::new(8, 8, 10, 4);
        cfg.noise_sigma = 0.0;
        let x = climate(&cfg, 2).unwrap();
        // Mean |value| at the bottom level should exceed the top level.
        let level_energy = |a: usize| -> f64 {
            let mut acc = 0.0;
            for t in 0..4 {
                for j in 0..8 {
                    for i in 0..8 {
                        acc += x.get(&[i, j, a, t]).abs();
                    }
                }
            }
            acc
        };
        assert!(level_energy(0) > level_energy(9));
    }

    #[test]
    fn noiseless_is_low_rank() {
        let mut cfg = ClimateConfig::new(10, 10, 6, 8);
        cfg.noise_sigma = 0.0;
        let x = climate(&cfg, 3).unwrap();
        for mode in 0..4 {
            let unf = dtucker_tensor::unfold::unfold(&x, mode).unwrap();
            let svd = dtucker_linalg::svd::svd(&unf).unwrap();
            let idx = cfg.latent.min(svd.s.len() - 1);
            assert!(svd.s[idx] < 1e-8 * svd.s[0], "mode {mode}");
        }
    }
}
