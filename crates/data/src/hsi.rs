//! Hyperspectral-image analog: shape `(height, width, band)` — a linear
//! mixing model: spatially smooth endmember abundance maps × smooth
//! spectral signatures, plus sensor noise. The trait that matters: a very
//! large `I₁×I₂` slice with a modest number of slices (bands).

use dtucker_linalg::random::gaussian;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// HSI generator parameters.
#[derive(Debug, Clone)]
pub struct HsiConfig {
    /// Image height `I₁`.
    pub height: usize,
    /// Image width `I₂`.
    pub width: usize,
    /// Spectral bands `I₃`.
    pub bands: usize,
    /// Number of endmembers (materials).
    pub endmembers: usize,
    /// Noise standard deviation.
    pub noise_sigma: f64,
}

impl HsiConfig {
    /// A small default suitable for tests and CI benchmarks.
    pub fn new(height: usize, width: usize, bands: usize) -> Self {
        HsiConfig {
            height,
            width,
            bands,
            endmembers: 4,
            noise_sigma: 0.02,
        }
    }
}

/// Generates the hyperspectral tensor (shape `[height, width, bands]`).
pub fn hsi(cfg: &HsiConfig, seed: u64) -> Result<DenseTensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let (h, w, b_n) = (cfg.height, cfg.width, cfg.bands);

    // Endmember abundance maps: Gaussian patches over the scene (separable
    // per endmember ⇒ overall multilinear rank ≤ endmembers).
    let mut maps: Vec<(Vec<f64>, Vec<f64>)> = Vec::with_capacity(cfg.endmembers);
    for _ in 0..cfg.endmembers {
        let cy = rng.gen_range(0.2..0.8);
        let cx = rng.gen_range(0.2..0.8);
        let sy = rng.gen_range(0.1..0.3);
        let sx = rng.gen_range(0.1..0.3);
        let col: Vec<f64> = (0..h)
            .map(|i| {
                let t = i as f64 / h.max(1) as f64;
                (-(t - cy) * (t - cy) / (2.0 * sy * sy)).exp()
            })
            .collect();
        let row: Vec<f64> = (0..w)
            .map(|j| {
                let t = j as f64 / w.max(1) as f64;
                (-(t - cx) * (t - cx) / (2.0 * sx * sx)).exp()
            })
            .collect();
        maps.push((col, row));
    }

    // Smooth spectral signatures: Gaussian absorption features on a ramp.
    let mut spectra: Vec<Vec<f64>> = Vec::with_capacity(cfg.endmembers);
    for _ in 0..cfg.endmembers {
        let ramp = rng.gen_range(0.2..0.8);
        let c1 = rng.gen_range(0.1..0.9);
        let w1 = rng.gen_range(0.03..0.1);
        let a1 = rng.gen_range(0.2..0.6);
        spectra.push(
            (0..b_n)
                .map(|b| {
                    let t = b as f64 / b_n.max(1) as f64;
                    ramp + 0.4 * t - a1 * (-(t - c1) * (t - c1) / (2.0 * w1 * w1)).exp()
                })
                .collect(),
        );
    }

    let mut x = DenseTensor::zeros(&[h, w, b_n])?;
    let data = x.as_mut_slice();
    for b in 0..b_n {
        let frame = &mut data[b * h * w..(b + 1) * h * w];
        for (e, (col, row)) in maps.iter().enumerate() {
            let sval = spectra[e][b];
            for j in 0..w {
                let rj = row[j] * sval;
                if rj == 0.0 {
                    continue;
                }
                let seg = &mut frame[j * h..(j + 1) * h];
                for (v, &cv) in seg.iter_mut().zip(col.iter()) {
                    *v += rj * cv;
                }
            }
        }
        if cfg.noise_sigma > 0.0 {
            for v in frame.iter_mut() {
                *v += cfg.noise_sigma * gaussian(&mut rng);
            }
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = HsiConfig::new(20, 18, 12);
        let a = hsi(&cfg, 1).unwrap();
        assert_eq!(a.shape(), &[20, 18, 12]);
        assert_eq!(a, hsi(&cfg, 1).unwrap());
    }

    #[test]
    fn noiseless_rank_bounded_by_endmembers() {
        let mut cfg = HsiConfig::new(24, 20, 16);
        cfg.noise_sigma = 0.0;
        let x = hsi(&cfg, 2).unwrap();
        for mode in 0..3 {
            let unf = dtucker_tensor::unfold::unfold(&x, mode).unwrap();
            let svd = dtucker_linalg::svd::svd(&unf).unwrap();
            let idx = cfg.endmembers.min(svd.s.len() - 1);
            assert!(
                svd.s[idx] < 1e-8 * svd.s[0],
                "mode {mode}: σ = {:?}",
                &svd.s[..idx + 1]
            );
        }
    }

    #[test]
    fn spectra_vary_across_bands() {
        let mut cfg = HsiConfig::new(16, 16, 20);
        cfg.noise_sigma = 0.0;
        let x = hsi(&cfg, 3).unwrap();
        let b0 = x.frontal_slice(0).unwrap();
        let b10 = x.frontal_slice(10).unwrap();
        assert!(b0.max_abs_diff(&b10) > 1e-3);
    }
}
