//! Generic building blocks shared by the domain-specific generators.

use dtucker_linalg::random::gaussian;
use dtucker_tensor::dense::DenseTensor;
use dtucker_tensor::error::Result;
use rand::Rng;

/// A sum of `R` separable (rank-1) terms plus i.i.d. Gaussian noise:
///
/// `X[i₁,…,i_N] = Σ_r Π_k terms[r][k][i_k] + noise_sigma · ε`.
///
/// Every domain generator in this crate reduces to this shape with
/// hand-crafted mode vectors, which guarantees the analogs have the
/// approximate-low-multilinear-rank structure the real datasets exhibit.
pub fn separable_sum<R: Rng + ?Sized>(
    shape: &[usize],
    terms: &[Vec<Vec<f64>>],
    noise_sigma: f64,
    rng: &mut R,
) -> Result<DenseTensor> {
    for (r, term) in terms.iter().enumerate() {
        assert_eq!(term.len(), shape.len(), "term {r} has wrong mode count");
        for (k, v) in term.iter().enumerate() {
            assert_eq!(v.len(), shape[k], "term {r} mode {k} has wrong length");
        }
    }
    let mut t = DenseTensor::zeros(shape)?;
    let n_modes = shape.len();
    let data = t.as_mut_slice();
    let mut idx = vec![0usize; n_modes];
    for v in data.iter_mut() {
        let mut acc = 0.0;
        for term in terms {
            let mut p = 1.0;
            for (k, &i) in idx.iter().enumerate() {
                p *= term[k][i];
            }
            acc += p;
        }
        if noise_sigma > 0.0 {
            acc += noise_sigma * gaussian(rng);
        }
        *v = acc;
        dtucker_tensor::dense::increment_index(&mut idx, shape);
    }
    Ok(t)
}

/// A smooth 1-D profile: a random mixture of low-frequency sinusoids.
pub fn smooth_profile<R: Rng + ?Sized>(len: usize, waves: usize, rng: &mut R) -> Vec<f64> {
    let mut amp = Vec::with_capacity(waves);
    for _ in 0..waves {
        amp.push((
            rng.gen_range(0.3..1.0),                   // amplitude
            rng.gen_range(0.5..3.0),                   // frequency (cycles over len)
            rng.gen_range(0.0..std::f64::consts::TAU), // phase
        ));
    }
    (0..len)
        .map(|i| {
            let t = i as f64 / len.max(1) as f64;
            amp.iter()
                .map(|&(a, f, p)| a * (std::f64::consts::TAU * f * t + p).sin())
                .sum::<f64>()
        })
        .collect()
}

/// A periodic 1-D profile with the given period (e.g. a daily cycle),
/// plus a small random harmonic mix.
pub fn periodic_profile<R: Rng + ?Sized>(len: usize, period: f64, rng: &mut R) -> Vec<f64> {
    let a1 = rng.gen_range(0.5..1.0);
    let a2 = rng.gen_range(0.1..0.4);
    let p1 = rng.gen_range(0.0..std::f64::consts::TAU);
    let p2 = rng.gen_range(0.0..std::f64::consts::TAU);
    (0..len)
        .map(|i| {
            let t = i as f64 / period;
            a1 * (std::f64::consts::TAU * t + p1).sin()
                + a2 * (2.0 * std::f64::consts::TAU * t + p2).sin()
        })
        .collect()
}

/// A non-negative unimodal bump centered at `center` (fraction of `len`)
/// with width `width` (fraction of `len`).
pub fn bump_profile(len: usize, center: f64, width: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = i as f64 / len.max(1) as f64;
            (-(t - center) * (t - center) / (2.0 * width * width)).exp()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn separable_sum_matches_manual() {
        let mut rng = StdRng::seed_from_u64(1);
        let terms = vec![vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]]];
        let t = separable_sum(&[2, 3], &terms, 0.0, &mut rng).unwrap();
        assert_eq!(t.get(&[0, 0]), 3.0);
        assert_eq!(t.get(&[1, 2]), 10.0);
    }

    #[test]
    fn separable_sum_is_low_rank() {
        // A sum of two rank-1 terms has multilinear rank ≤ 2 in every mode.
        let mut rng = StdRng::seed_from_u64(2);
        let mk = |len: usize, rng: &mut StdRng| smooth_profile(len, 3, rng);
        let terms: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|_| vec![mk(12, &mut rng), mk(10, &mut rng), mk(8, &mut rng)])
            .collect();
        let x = separable_sum(&[12, 10, 8], &terms, 0.0, &mut rng).unwrap();
        for mode in 0..3 {
            let unf = dtucker_tensor::unfold::unfold(&x, mode).unwrap();
            let svd = dtucker_linalg::svd::svd(&unf).unwrap();
            assert!(
                svd.s[2] < 1e-9 * svd.s[0].max(1e-300),
                "mode {mode}: {:?}",
                &svd.s[..3]
            );
        }
    }

    #[test]
    fn noise_level_controls_residual() {
        let mut rng = StdRng::seed_from_u64(3);
        let terms = vec![vec![vec![1.0; 20], vec![1.0; 20], vec![1.0; 10]]];
        let clean = separable_sum(&[20, 20, 10], &terms, 0.0, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = separable_sum(&[20, 20, 10], &terms, 0.5, &mut rng).unwrap();
        let resid = noisy.sub(&clean).unwrap();
        let sigma_hat = (resid.fro_norm_sq() / resid.numel() as f64).sqrt();
        assert!((sigma_hat - 0.5).abs() < 0.05, "sigma {sigma_hat}");
    }

    #[test]
    fn profiles_have_expected_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(smooth_profile(50, 3, &mut rng).len(), 50);
        assert_eq!(periodic_profile(96, 24.0, &mut rng).len(), 96);
        let b = bump_profile(100, 0.5, 0.1);
        assert_eq!(b.len(), 100);
        // Bump peaks at the center and is non-negative.
        let max = b.iter().cloned().fold(0.0f64, f64::max);
        assert!((b[50] - max).abs() < 1e-12);
        assert!(b.iter().all(|&v| v >= 0.0));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn separable_sum_checks_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let terms = vec![vec![vec![1.0, 2.0], vec![3.0]]];
        let _ = separable_sum(&[2, 3], &terms, 0.0, &mut rng);
    }
}
