//! End-to-end method benchmarks on a CI-scale Boats analog: D-Tucker vs
//! every baseline at the paper protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use dtucker_bench::{run_method, Method};
use dtucker_data::{generate, Dataset, Scale};

fn bench_methods(c: &mut Criterion) {
    let x = generate(Dataset::Boats, Scale::Ci, 0).unwrap();
    let mut group = c.benchmark_group("tucker_methods_boats_ci");
    group.sample_size(10);
    for m in Method::COMPARISON {
        group.bench_function(m.name(), |bch| {
            bch.iter(|| run_method(m, &x, 5, 0).unwrap())
        });
    }
    group.bench_function(Method::DTuckerExact.name(), |bch| {
        bch.iter(|| run_method(Method::DTuckerExact, &x, 5, 0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
