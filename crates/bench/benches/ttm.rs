//! Microbenchmarks for n-mode products and unfolding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtucker_linalg::random::gaussian_matrix;
use dtucker_tensor::random::gaussian_tensor;
use dtucker_tensor::ttm::{multi_ttm_t, ttm_t};
use dtucker_tensor::unfold::unfold;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ttm(c: &mut Criterion) {
    let mut group = c.benchmark_group("ttm");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let x = gaussian_tensor(&[96, 80, 60], &mut rng).unwrap();
    let factors: Vec<_> = x
        .shape()
        .iter()
        .map(|&i| gaussian_matrix(i, 10, &mut rng))
        .collect();
    for mode in 0..3 {
        group.bench_with_input(BenchmarkId::new("ttm_t", mode), &mode, |bch, &m| {
            bch.iter(|| ttm_t(&x, &factors[m], m).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("unfold", mode), &mode, |bch, &m| {
            bch.iter(|| unfold(&x, m).unwrap())
        });
    }
    group.bench_function("multi_ttm_t_skip0", |bch| {
        bch.iter(|| multi_ttm_t(&x, &factors, 0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ttm);
criterion_main!(benches);
