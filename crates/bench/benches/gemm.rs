//! Microbenchmarks for the GEMM kernels (the workhorse of every method).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtucker_linalg::gemm::{gram, matmul, matmul_t, t_matmul};
use dtucker_linalg::random::gaussian_matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[64usize, 128, 256] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = gaussian_matrix(n, n, &mut rng);
        let b = gaussian_matrix(n, n, &mut rng);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| matmul(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("t_matmul", n), &n, |bch, _| {
            bch.iter(|| t_matmul(&a, &b))
        });
        group.bench_with_input(BenchmarkId::new("matmul_t", n), &n, |bch, _| {
            bch.iter(|| matmul_t(&a, &b))
        });
    }
    // The tall-skinny products D-Tucker actually issues (I × k times k × J).
    let mut rng = StdRng::seed_from_u64(2);
    let tall = gaussian_matrix(1024, 15, &mut rng);
    let small = gaussian_matrix(15, 10, &mut rng);
    group.bench_function("tall_skinny_1024x15x10", |bch| {
        bch.iter(|| matmul(&tall, &small))
    });
    group.bench_function("gram_1024x15", |bch| bch.iter(|| gram(&tall)));
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
