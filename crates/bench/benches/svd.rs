//! Microbenchmarks for the SVD routes used by the phases: exact Jacobi,
//! Gram-route truncation, and the randomized SVD of the approximation phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dtucker_linalg::random::gaussian_matrix;
use dtucker_linalg::rsvd::{rsvd, RsvdConfig};
use dtucker_linalg::svd::{leading_left_singular_vectors, svd, truncated_svd_gram};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd");
    group.sample_size(20);
    for &(m, n) in &[(64usize, 48usize), (160, 120), (320, 240)] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = gaussian_matrix(m, n, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("exact", format!("{m}x{n}")),
            &a,
            |bch, a| bch.iter(|| svd(a).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("gram_trunc_k15", format!("{m}x{n}")),
            &a,
            |bch, a| bch.iter(|| truncated_svd_gram(a, 15).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("rsvd_k15", format!("{m}x{n}")),
            &a,
            |bch, a| {
                bch.iter(|| {
                    let mut rng = StdRng::seed_from_u64(4);
                    rsvd(a, RsvdConfig::new(15), &mut rng).unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("leading_lsv_k10", format!("{m}x{n}")),
            &a,
            |bch, a| bch.iter(|| leading_left_singular_vectors(a, 10).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_svd);
criterion_main!(benches);
