//! Experiment E1 — running time vs reconstruction error trade-off
//! (the paper's headline figure).
//!
//! For every dataset analog, runs D-Tucker and every competitor at the
//! paper's protocol (uniform rank, tol 1e-4, single thread) and prints one
//! row per (dataset, method) with wall-clock time, relative error, and the
//! speedup over Tucker-ALS.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_tradeoff --
//!         [--scale ci|bench|paper] [--rank J] [--seed S]
//!         [--dataset boats|airquality|traffic|hsi|absorb]`

use dtucker_bench::{run_method, secs, Args, Method, Table};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let datasets: Vec<Dataset> = match args.get("dataset") {
        Some(name) => vec![Dataset::parse(name).expect("unknown --dataset")],
        None => Dataset::ALL.to_vec(),
    };

    println!("## E1: query-time vs reconstruction-error trade-off");
    println!("(scale {scale:?}, rank {rank}, seed {seed}; times are single-run wall clock)\n");

    let mut table = Table::new(&[
        "dataset",
        "method",
        "time_s",
        "rel_error",
        "iters",
        "speedup_vs_ALS",
    ])
    .with_csv("e1_tradeoff");

    for ds in datasets {
        let x = generate(ds, scale, seed).expect("dataset generation failed");
        let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
        eprintln!("[{}] shape {:?}, rank {rank}", ds.name(), x.shape());
        let mut als_time = None;
        let mut rows = Vec::new();
        let mut oot: Vec<Method> = Vec::new();
        for method in Method::COMPARISON {
            if dtucker_bench::likely_oot(method, &x, rank) {
                eprintln!(
                    "  {} skipped: estimated cost exceeds budget (o.o.t.)",
                    method.name()
                );
                oot.push(method);
                continue;
            }
            match run_method(method, &x, rank, seed) {
                Ok(r) => {
                    if method == Method::Hooi {
                        als_time = Some(r.elapsed);
                    }
                    rows.push(r);
                }
                Err(e) => eprintln!("  {} failed: {e}", method.name()),
            }
        }
        for m in oot {
            table.row(&[
                ds.name().into(),
                m.name().into(),
                "o.o.t.".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
        for r in rows {
            let speedup = als_time
                .map(|t| {
                    format!(
                        "{:.1}x",
                        t.as_secs_f64() / r.elapsed.as_secs_f64().max(1e-9)
                    )
                })
                .unwrap_or_else(|| "-".into());
            table.row(&[
                ds.name().into(),
                r.method.name().into(),
                secs(r.elapsed),
                format!("{:.4}", r.error_sq),
                r.iterations.to_string(),
                speedup,
            ]);
        }
    }
    table.print();
    println!("\nExpected shape (paper): D-Tucker is the fastest method with error on par");
    println!("with Tucker-ALS; sketched methods (Tucker-ts/ttmts) and MACH trade accuracy");
    println!("for speed; HOSVD-family is one-shot but touches the full tensor.");
}
