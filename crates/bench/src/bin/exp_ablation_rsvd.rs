//! Experiment E8 — approximation-phase ablation: exact vs randomized slice
//! SVDs, and the effect of oversampling / power iterations on the
//! randomized route.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_ablation_rsvd --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]`

use dtucker_bench::{secs, time, Args, Table};
use dtucker_core::{DTucker, DTuckerConfig, SliceSvdKind};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Hsi);

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    println!(
        "## E8: approximation-phase ablation on '{}' (shape {:?})",
        ds.name(),
        x.shape()
    );
    println!("(rank {rank}, seed {seed})\n");

    let mut table = Table::new(&[
        "variant",
        "oversample",
        "power_iters",
        "approx_s",
        "total_s",
        "rel_error",
    ])
    .with_csv("e8_ablation_rsvd");

    let mut run = |label: &str, kind: SliceSvdKind, oversample: usize, power: usize| {
        let mut cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
        cfg.slice_svd = kind;
        cfg.oversample = oversample;
        cfg.power_iters = power;
        let (out, total) = time(|| DTucker::new(cfg).decompose(&x));
        let out = out.expect("run failed");
        let err = out.decomposition.relative_error_sq(&x).expect("error eval");
        table.row(&[
            label.into(),
            oversample.to_string(),
            power.to_string(),
            secs(out.timings.approximation),
            secs(total),
            format!("{err:.5}"),
        ]);
    };

    run("exact-svd", SliceSvdKind::Exact, 0, 0);
    for &(os, p) in &[(0usize, 0usize), (5, 0), (5, 1), (5, 2), (10, 1), (10, 2)] {
        run("randomized", SliceSvdKind::Randomized, os, p);
    }
    table.print();
    println!("\nExpected shape: randomized slice SVDs approach exact-SVD accuracy once");
    println!("oversampling ≥ 5 and one power iteration are used, at a fraction of the");
    println!("approximation-phase cost on large slices.");
}
