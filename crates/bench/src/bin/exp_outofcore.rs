//! Experiment E10 — out-of-core compression through `DtenSliceSource`.
//!
//! Writes the dataset to a `.dten` file, then re-compresses it straight
//! from disk at several chunk sizes, comparing against the in-memory
//! baseline. The compressed result must be **bit-identical** at every
//! chunk size (per-slice seeds make the work partition-invariant), while
//! peak working memory scales with `chunk × I₁ × I₂` instead of the full
//! tensor. Raw numbers go to `BENCH_outofcore.json` at the repo root.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_outofcore --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]
//!         [--json PATH]`

use dtucker_bench::{secs, time, Args, Table};
use dtucker_core::{DTuckerConfig, SliceSource, SlicedTensor};
use dtucker_data::{generate, parse_scale, Dataset, Scale};
use dtucker_store::{encode_sliced, DtenSliceSource};
use dtucker_tensor::io;
use std::time::Duration;

struct Measurement {
    chunk: usize,
    compress: Duration,
    peak_bytes: usize,
    identical: bool,
}

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json_path = args
        .get("json")
        .unwrap_or("BENCH_outofcore.json")
        .to_string();
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Boats);

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    let dense_bytes = x.numel() * 8;

    let dir = std::env::temp_dir().join(format!("dtucker_outofcore_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let dten = dir.join("input.dten");
    io::save(&x, &dten).expect("writing .dten");

    println!(
        "## E10: out-of-core compression on '{}' ({:?}, {:.1} MB dense)",
        ds.name(),
        x.shape(),
        dense_bytes as f64 / 1e6
    );
    println!(
        "(rank {rank}, seed {seed}; slices stream from {})\n",
        dten.display()
    );

    // In-memory baseline: the reference bit pattern every chunked run
    // must reproduce.
    let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
    let (baseline, base_time) = time(|| SlicedTensor::compress(&x, &cfg).expect("compression"));
    let baseline_bytes = encode_sliced(&baseline);
    let num_slices = baseline.num_slices();
    let compressed = baseline.memory_bytes();

    let mut table = Table::new(&["chunk", "compress_s", "peak_mb", "vs_dense", "identical"])
        .with_csv("e10_outofcore");
    table.row(&[
        "in-mem".into(),
        secs(base_time),
        format!("{:.2}", (dense_bytes + compressed) as f64 / 1e6),
        "1.0x".into(),
        "true".into(),
    ]);

    let mut runs: Vec<Measurement> = Vec::new();
    let mut chunk = 1usize;
    loop {
        let cfg = DTuckerConfig::uniform(rank, x.order())
            .with_seed(seed)
            .with_chunk_slices(chunk);
        let mut src = DtenSliceSource::open(&dten).expect("opening .dten source");
        let slice_bytes = src.slice_bytes();
        let (st, compress) =
            time(|| SlicedTensor::compress_source(&mut src, &cfg).expect("compression"));
        let identical = encode_sliced(&st) == baseline_bytes;
        // Peak working set: the chunk of dense slices in flight plus the
        // growing compressed output (the dense tensor is never resident).
        let peak_bytes = chunk.min(num_slices) * slice_bytes + st.memory_bytes();
        table.row(&[
            chunk.to_string(),
            secs(compress),
            format!("{:.2}", peak_bytes as f64 / 1e6),
            format!("{:.1}x", dense_bytes as f64 / peak_bytes.max(1) as f64),
            identical.to_string(),
        ]);
        runs.push(Measurement {
            chunk,
            compress,
            peak_bytes,
            identical,
        });
        if chunk >= num_slices {
            break;
        }
        chunk = (chunk * 4).min(num_slices);
    }
    table.print();

    let all_identical = runs.iter().all(|m| m.identical);
    write_json(
        &json_path,
        ds.name(),
        x.shape(),
        rank,
        seed,
        cores,
        compressed,
        dense_bytes,
        &runs,
    );
    println!("\nWrote {json_path}");
    println!("Expected shape: bit-identical output at every chunk size, with peak");
    println!("memory shrinking toward 'compressed + one chunk of slices'.");
    std::fs::remove_dir_all(&dir).ok();
    assert!(all_identical, "chunked compression diverged from in-memory");
}

/// Hand-rolled JSON (the offline crate set has no serde), matching the
/// `BENCH_threads.json` top-level schema.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    dataset: &str,
    shape: &[usize],
    rank: usize,
    seed: u64,
    cores: usize,
    compressed_bytes: usize,
    dense_bytes: usize,
    runs: &[Measurement],
) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"e10_outofcore\",\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!(
        "  \"shape\": [{}],\n",
        shape
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"rank\": {rank},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    s.push_str(&format!("  \"dense_bytes\": {dense_bytes},\n"));
    s.push_str(&format!("  \"compressed_bytes\": {compressed_bytes},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"chunk_slices\": {}, \"compress_s\": {:.6}, \"peak_bytes\": {}, \
             \"identical_to_inmemory\": {}}}{}\n",
            m.chunk,
            m.compress.as_secs_f64(),
            m.peak_bytes,
            m.identical,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    dtucker_core::fsutil::atomic_write_str(path, &s).expect("writing BENCH_outofcore.json");
}
