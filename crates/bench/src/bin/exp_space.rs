//! Experiment E2 — space for preprocessed results (the paper's memory
//! figure).
//!
//! Compares the bytes each method retains after its preprocessing phase:
//! D-Tucker's slice SVDs, MACH's sparse sample, Tucker-ts's sketches, and
//! the raw tensor (what Tucker-ALS / HOSVD / RTD must keep).
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_space --
//!         [--scale ci|bench|paper] [--rank J] [--seed S]`

use dtucker_baselines::mach::{mach_sample, MachConfig};
use dtucker_baselines::tucker_ts::{preprocess, TuckerTsConfig};
use dtucker_bench::{human_bytes, Args, Table};
use dtucker_core::{DTuckerConfig, SlicedTensor};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);

    println!("## E2: space for preprocessed results");
    println!("(scale {scale:?}, rank {rank}; 'input tensor' is what ALS/HOSVD/RTD keep)\n");

    let mut table = Table::new(&[
        "dataset",
        "input_tensor",
        "dtucker_slices",
        "mach_sample",
        "ts_sketches",
        "dtucker_ratio",
    ])
    .with_csv("e2_space");

    for ds in Dataset::ALL {
        let x = generate(ds, scale, seed).expect("dataset generation failed");
        let n = x.order();
        let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
        let dense = x.numel() * std::mem::size_of::<f64>();

        let cfg = DTuckerConfig::uniform(rank, n).with_seed(seed);
        let sliced = SlicedTensor::compress(&x, &cfg).expect("compression failed");

        let mut mcfg = MachConfig::new(&vec![rank; n]);
        mcfg.seed = seed;
        let sample = mach_sample(&x, &mcfg).expect("mach sampling failed");

        let mut tscfg = TuckerTsConfig::new(&vec![rank; n]);
        tscfg.seed = seed;
        let sketched = preprocess(&x, &tscfg).expect("ts preprocessing failed");

        table.row(&[
            ds.name().into(),
            human_bytes(dense),
            human_bytes(sliced.memory_bytes()),
            human_bytes(sample.memory_bytes()),
            human_bytes(sketched.memory_bytes()),
            format!("{:.1}x", sliced.compression_ratio()),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): D-Tucker's slice store is 1-2 orders of magnitude");
    println!("smaller than the raw tensor, with the largest ratio on the 4-order tensor.");
}
