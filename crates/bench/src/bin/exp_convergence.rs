//! Experiment E6 — initialization-quality ablation: fit trajectory per ALS
//! sweep with the paper's SVD-based initialization vs random orthonormal
//! init (what vanilla HOOI starts from) vs HOSVD-initialized Tucker-ALS.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_convergence --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]`

use dtucker_baselines::{hooi, HooiConfig, HooiInit};
use dtucker_bench::{Args, Table};
use dtucker_core::{DTucker, DTuckerConfig, InitStrategy};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Boats);

    println!(
        "## E6: convergence / initialization ablation on '{}'",
        ds.name()
    );
    println!("(scale {scale:?}, rank {rank}, seed {seed}; fit = sqrt(1 - |G|^2/|X|^2))\n");

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    let solver = DTucker::new(DTuckerConfig::uniform(rank, x.order()).with_seed(seed));
    let smart = solver
        .decompose_with_init(&x, InitStrategy::DTucker)
        .expect("run failed");
    let random = solver
        .decompose_with_init(&x, InitStrategy::Random)
        .expect("run failed");

    let mut als_cfg = HooiConfig::new(&vec![rank; x.order()]);
    als_cfg.seed = seed;
    als_cfg.init = HooiInit::Random;
    let als = hooi(&x, &als_cfg).expect("hooi failed");

    let max_len = smart
        .trace
        .sweep_fits
        .len()
        .max(random.trace.sweep_fits.len())
        .max(als.trace.sweep_fits.len());

    let mut table = Table::new(&["sweep", "dtucker_init", "random_init", "als_random_init"])
        .with_csv("e6_convergence");
    let cell = |fits: &[f64], i: usize| {
        fits.get(i)
            .map(|f| format!("{f:.5}"))
            .unwrap_or_else(|| "(done)".into())
    };
    for i in 0..max_len {
        table.row(&[
            (i + 1).to_string(),
            cell(&smart.trace.sweep_fits, i),
            cell(&random.trace.sweep_fits, i),
            cell(&als.trace.sweep_fits, i),
        ]);
    }
    table.print();
    println!(
        "\nsweeps to converge: dtucker-init {} vs random-init {} (ALS: {})",
        smart.trace.iterations(),
        random.trace.iterations(),
        als.trace.iterations()
    );
    println!("Expected shape (paper): the SVD-based initialization starts near the fixed");
    println!("point, so it converges in (often several times) fewer sweeps than random init.");
}
