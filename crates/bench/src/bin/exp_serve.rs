//! Experiment E12 — closed-loop load test of the HTTP serving subsystem.
//!
//! Decomposes a dataset, then starts `dtucker-serve` in-process and
//! drives it with N closed-loop clients (each client sends one request
//! over a keep-alive connection, waits for the full response, repeats)
//! for a fixed window per configuration. Sweeps worker thread counts at a
//! fixed admission cap, then admission caps at a fixed thread count, and
//! reports throughput, p50/p99 latency, and the shed rate for each
//! combination. Every response body is checked against the expected
//! prefix from the shared JSON encoder, so correctness rides along with
//! the numbers. Raw results go to `BENCH_serve.json` at the repo root.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_serve --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]
//!         [--clients N] [--duration-ms MS] [--json PATH]`

use dtucker_bench::{Args, Table};
use dtucker_core::{DTucker, DTuckerConfig, TuckerDecomp};
use dtucker_data::{generate, parse_scale, Dataset, Scale};
use dtucker_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

struct Measurement {
    threads: usize,
    max_inflight: usize,
    clients: usize,
    requests: u64,
    shed: u64,
    throughput_rps: f64,
    p50: Duration,
    p99: Duration,
}

/// Reads one HTTP response frame (headers + Content-Length body) off a
/// keep-alive connection. Returns the body, or None if the peer closed.
fn read_response(s: &mut TcpStream) -> Option<(u16, String)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        match s.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))?
        .trim()
        .parse()
        .ok()?;
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8_lossy(&body).to_string()))
}

/// One closed-loop client: request, wait, repeat until the deadline.
/// Returns per-request latencies and the number of shed (503) answers.
fn client_loop(addr: SocketAddr, specs: &[String], deadline: Instant) -> (Vec<Duration>, u64) {
    let mut latencies = Vec::new();
    let mut shed = 0u64;
    let mut conn: Option<TcpStream> = None;
    let mut i = 0usize;
    while Instant::now() < deadline {
        let s = match &mut conn {
            Some(s) => s,
            None => match TcpStream::connect(addr) {
                Ok(s) => {
                    s.set_read_timeout(Some(Duration::from_secs(10))).ok();
                    s.set_nodelay(true).ok();
                    conn.insert(s)
                }
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            },
        };
        let spec = &specs[i % specs.len()];
        i += 1;
        let t0 = Instant::now();
        let req = format!("GET /q/demo?range={spec} HTTP/1.1\r\n\r\n");
        if s.write_all(req.as_bytes()).is_err() {
            conn = None;
            continue;
        }
        match read_response(s) {
            Some((200, body)) => {
                latencies.push(t0.elapsed());
                assert!(
                    body.starts_with(&format!("{{\"spec\":\"{spec}\"")),
                    "unexpected body for '{spec}': {body}"
                );
            }
            Some((503, _)) => {
                shed += 1;
                conn = None;
                std::thread::sleep(Duration::from_millis(1));
            }
            _ => conn = None,
        }
    }
    (latencies, shed)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one (threads, max_inflight) configuration for `window`.
fn run_combo(
    d: &TuckerDecomp,
    threads: usize,
    max_inflight: usize,
    clients: usize,
    window: Duration,
    specs: &[String],
) -> Measurement {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        max_inflight,
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, vec![("demo".to_string(), d.clone())]).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let app = server.app();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let deadline = Instant::now() + window;
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let specs: Vec<String> = specs
                .iter()
                .cloned()
                .cycle()
                .skip(c)
                .take(specs.len())
                .collect();
            std::thread::spawn(move || client_loop(addr, &specs, deadline))
        })
        .collect();
    let mut latencies = Vec::new();
    let mut shed = 0u64;
    for w in workers {
        let (l, s) = w.join().expect("client thread");
        latencies.extend(l);
        shed += s;
    }
    let elapsed = t0.elapsed();
    app.begin_drain();
    let stats = handle.join().expect("server thread");

    latencies.sort();
    Measurement {
        threads,
        max_inflight,
        clients,
        requests: latencies.len() as u64,
        shed: shed.max(stats.shed),
        throughput_rps: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
    }
}

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let clients: usize = args.get_or("clients", 4);
    let duration_ms: u64 = args.get_or(
        "duration-ms",
        if matches!(scale, Scale::Ci) {
            250
        } else {
            2000
        },
    );
    let json_path = args.get("json").unwrap_or("BENCH_serve.json").to_string();
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Boats);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
    let d = DTucker::new(cfg)
        .decompose(&x)
        .expect("decomposition failed")
        .decomposition;
    let shape = d.full_shape();

    // A mix of range sizes, all safely inside the tensor.
    let specs: Vec<String> = vec![
        shape
            .iter()
            .map(|_| "0".to_string())
            .collect::<Vec<_>>()
            .join(","),
        shape
            .iter()
            .map(|&n| format!("0:{}", (n / 4).max(1)))
            .collect::<Vec<_>>()
            .join(","),
        shape
            .iter()
            .map(|&n| format!("{}:{}", n / 4, (n / 4 + (n / 2).max(1)).min(n)))
            .collect::<Vec<_>>()
            .join(","),
    ];

    println!(
        "## E12: closed-loop serving on '{}' ({shape:?}, ranks {:?}; {clients} clients, {duration_ms} ms per combo)",
        ds.name(),
        d.ranks()
    );
    println!();

    // Thread sweep at a roomy admission cap, then cap sweep at a fixed
    // thread count (a cap of 1 forces visible shedding under 4 clients).
    let combos: Vec<(usize, usize)> = vec![(1, 64), (2, 64), (4, 64), (2, 8), (2, 1)];
    let window = Duration::from_millis(duration_ms);

    let mut table = Table::new(&[
        "threads",
        "inflight",
        "requests",
        "rps",
        "p50_ms",
        "p99_ms",
        "shed",
        "shed_rate",
    ])
    .with_csv("e12_serve");
    let mut runs = Vec::new();
    for (threads, max_inflight) in combos {
        let m = run_combo(&d, threads, max_inflight, clients, window, &specs);
        table.row(&[
            m.threads.to_string(),
            m.max_inflight.to_string(),
            m.requests.to_string(),
            format!("{:.0}", m.throughput_rps),
            format!("{:.3}", m.p50.as_secs_f64() * 1e3),
            format!("{:.3}", m.p99.as_secs_f64() * 1e3),
            m.shed.to_string(),
            format!("{:.4}", m.shed as f64 / (m.requests + m.shed).max(1) as f64),
        ]);
        runs.push(m);
    }
    table.print();

    write_json(
        &json_path,
        ds.name(),
        &shape,
        d.ranks(),
        seed,
        cores,
        clients,
        window,
        &runs,
    );
    println!("\nWrote {json_path}");
    println!("Expected shape: throughput flat or rising with threads (on multi-core");
    println!("hardware), p99 bounded by the read/write timeouts, and the inflight=1");
    println!("column shedding instead of queueing without bound.");

    // The serving claims this experiment pins: the server answers under
    // load, and a tight admission cap sheds rather than stalls.
    assert!(
        runs.iter().all(|m| m.requests > 0),
        "every configuration must serve requests"
    );
}

/// Hand-rolled JSON (the offline crate set has no serde), matching the
/// other `BENCH_*.json` top-level schemas.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    dataset: &str,
    shape: &[usize],
    ranks: &[usize],
    seed: u64,
    cores: usize,
    clients: usize,
    window: Duration,
    runs: &[Measurement],
) {
    let fmt_list = |v: &[usize]| {
        v.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"e12_serve\",\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"shape\": [{}],\n", fmt_list(shape)));
    s.push_str(&format!("  \"ranks\": [{}],\n", fmt_list(ranks)));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    s.push_str(&format!("  \"clients\": {clients},\n"));
    s.push_str(&format!("  \"window_s\": {:.3},\n", window.as_secs_f64()));
    s.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"max_inflight\": {}, \"clients\": {}, \"requests\": {}, \
             \"throughput_rps\": {:.1}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"shed\": {}, \"shed_rate\": {:.4}}}{}\n",
            m.threads,
            m.max_inflight,
            m.clients,
            m.requests,
            m.throughput_rps,
            m.p50.as_secs_f64() * 1e3,
            m.p99.as_secs_f64() * 1e3,
            m.shed,
            m.shed as f64 / (m.requests + m.shed).max(1) as f64,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    dtucker_core::fsutil::atomic_write_str(path, &s).expect("writing BENCH_serve.json");
}
