//! Experiment E9 — thread scaling of the **whole** D-Tucker pipeline.
//!
//! All three phases fan their per-slice work out over the shared worker
//! pool (`dtucker_linalg::pool`), so this sweep times approximation,
//! initialization, and iteration separately at each thread count, checks
//! that the final decomposition is bit-identical to the serial run, and
//! writes the raw numbers to `BENCH_threads.json` at the repo root.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_threads --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]
//!         [--max-threads T] [--json PATH]`

use dtucker_bench::{secs, time, Args, Table};
use dtucker_core::init::initialize_threaded;
use dtucker_core::iterate::iterate;
use dtucker_core::{DTuckerConfig, SlicedTensor};
use dtucker_data::{generate, parse_scale, Dataset, Scale};
use std::time::Duration;

struct Measurement {
    threads: usize,
    approx: Duration,
    init: Duration,
    iter: Duration,
    identical: bool,
}

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads: usize = args.get_or("max-threads", cores.max(4));
    let json_path = args.get("json").unwrap_or("BENCH_threads.json").to_string();
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Boats);

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    println!(
        "## E9: full-pipeline thread scaling on '{}' ({:?}, {} hardware threads)",
        ds.name(),
        x.shape(),
        cores
    );
    println!("(rank {rank}, seed {seed}; per-slice seeds make results thread-count independent)\n");

    let mut table = Table::new(&[
        "threads",
        "approx_s",
        "init_s",
        "iter_s",
        "total_s",
        "speedup",
        "identical",
    ])
    .with_csv("e9_threads");

    // Untimed warm-up: fault in the dataset pages and JIT the CPU up to
    // speed so the serial baseline isn't inflated by first-touch costs.
    {
        let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
        let _ = SlicedTensor::compress(&x, &cfg).expect("warm-up compression");
    }

    let mut runs: Vec<Measurement> = Vec::new();
    let mut serial_bits: Option<Vec<u64>> = None;
    let mut t = 1usize;
    while t <= max_threads.max(1) {
        let cfg = DTuckerConfig::uniform(rank, x.order())
            .with_seed(seed)
            .with_threads(t);
        let (st, approx) = time(|| SlicedTensor::compress(&x, &cfg).expect("compression"));
        let ranks_int: Vec<usize> = st.perm().iter().map(|&p| cfg.ranks[p]).collect();
        let (init, init_t) =
            time(|| initialize_threaded(&st, &ranks_int, t).expect("initialization"));
        let (out, iter_t) = time(|| iterate(&st, &ranks_int, init.factors, &cfg).expect("sweeps"));

        let mut bits: Vec<u64> = out.core.as_slice().iter().map(|v| v.to_bits()).collect();
        for f in &out.factors {
            bits.extend(f.as_slice().iter().map(|v| v.to_bits()));
        }
        let identical = match &serial_bits {
            Some(b0) => *b0 == bits,
            None => {
                serial_bits = Some(bits);
                true
            }
        };
        runs.push(Measurement {
            threads: t,
            approx,
            init: init_t,
            iter: iter_t,
            identical,
        });
        t *= 2;
    }

    let total0 = total(&runs[0]);
    for m in &runs {
        table.row(&[
            m.threads.to_string(),
            secs(m.approx),
            secs(m.init),
            secs(m.iter),
            secs(total(m)),
            format!(
                "{:.2}x",
                total0.as_secs_f64() / total(m).as_secs_f64().max(1e-9)
            ),
            m.identical.to_string(),
        ]);
    }
    table.print();

    write_json(&json_path, ds.name(), x.shape(), rank, seed, cores, &runs);
    println!("\nWrote {json_path}");
    println!("Expected shape: near-linear speedup until the core count is exhausted,");
    println!("with a bit-identical decomposition at every thread count.");
}

fn total(m: &Measurement) -> Duration {
    m.approx + m.init + m.iter
}

/// Hand-rolled JSON (the offline crate set has no serde).
fn write_json(
    path: &str,
    dataset: &str,
    shape: &[usize],
    rank: usize,
    seed: u64,
    cores: usize,
    runs: &[Measurement],
) {
    let total0 = total(&runs[0]).as_secs_f64();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"e9_threads\",\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!(
        "  \"shape\": [{}],\n",
        shape
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"rank\": {rank},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let tot = total(m).as_secs_f64();
        s.push_str(&format!(
            "    {{\"threads\": {}, \"approx_s\": {:.6}, \"init_s\": {:.6}, \"iter_s\": {:.6}, \
             \"total_s\": {:.6}, \"speedup\": {:.3}, \"identical_to_serial\": {}}}{}\n",
            m.threads,
            m.approx.as_secs_f64(),
            m.init.as_secs_f64(),
            m.iter.as_secs_f64(),
            tot,
            total0 / tot.max(1e-9),
            m.identical,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    dtucker_core::fsutil::atomic_write_str(path, &s).expect("writing BENCH_threads.json");
}
