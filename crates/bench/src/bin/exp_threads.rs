//! Experiment E9 (extension) — thread scaling of the approximation phase.
//!
//! D-Tucker's slice compressions are embarrassingly parallel; this sweep
//! measures the approximation-phase wall clock vs worker count and checks
//! that the results are bit-identical at every thread count (per-slice
//! derived seeds).
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_threads --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]
//!         [--max-threads T]`

use dtucker_bench::{secs, time, Args, Table};
use dtucker_core::{DTuckerConfig, SlicedTensor};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let max_threads: usize = args.get_or(
        "max-threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Boats);

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    println!(
        "## E9: approximation-phase thread scaling on '{}' ({:?})",
        ds.name(),
        x.shape()
    );
    println!("(rank {rank}, seed {seed}; per-slice seeds make results thread-count independent)\n");

    let mut table = Table::new(&["threads", "approx_s", "speedup", "identical_to_serial"])
        .with_csv("e9_threads");

    let mut serial_time = None;
    let mut serial_sig: Option<Vec<f64>> = None;
    let mut t = 1usize;
    while t <= max_threads.max(1) {
        let cfg = DTuckerConfig::uniform(rank, x.order())
            .with_seed(seed)
            .with_threads(t);
        let (st, elapsed) = time(|| SlicedTensor::compress(&x, &cfg).expect("compression"));
        let sig: Vec<f64> = st
            .slices()
            .iter()
            .flat_map(|s| s.s.iter().copied())
            .collect();
        let (speedup, same) = match (&serial_time, &serial_sig) {
            (Some(st0), Some(s0)) => {
                let identical =
                    s0.len() == sig.len() && s0.iter().zip(sig.iter()).all(|(a, b)| a == b);
                (
                    format!("{:.2}x", duration_ratio(*st0, elapsed)),
                    identical.to_string(),
                )
            }
            _ => {
                serial_time = Some(elapsed);
                serial_sig = Some(sig.clone());
                ("1.00x".into(), "true".into())
            }
        };
        table.row(&[t.to_string(), secs(elapsed), speedup, same]);
        t *= 2;
    }
    table.print();
    println!("\nExpected shape: near-linear speedup until the core count is exhausted,");
    println!("with bit-identical slice SVDs at every thread count.");
}

fn duration_ratio(a: std::time::Duration, b: std::time::Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-9)
}
