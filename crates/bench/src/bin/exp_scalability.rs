//! Experiment E3 — scalability of D-Tucker vs Tucker-ALS (and ST-HOSVD) on
//! synthetic cubes, along three axes:
//!
//! * `--axis dim`    : slice dimensionality `I` grows, slice count fixed;
//! * `--axis slices` : slice count `L` grows, `I` fixed;
//! * `--axis order`  : tensor order `N` grows at (roughly) constant volume.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_scalability --
//!         [--axis dim|slices|order] [--rank J] [--seed S] [--big 1]`

use dtucker_bench::{run_method, secs, Args, Method, Table};
use dtucker_tensor::random::low_rank_plus_noise;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_point(shape: &[usize], rank: usize, seed: u64, table: &mut Table, label: String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ranks = vec![rank.min(*shape.iter().min().unwrap()); shape.len()];
    let x = low_rank_plus_noise(shape, &ranks, 0.05, &mut rng).expect("generation failed");
    let methods = [Method::DTucker, Method::Hooi, Method::StHosvd, Method::Rtd];
    let mut cells = vec![label, format!("{:?}", shape)];
    for m in methods {
        match run_method(m, &x, ranks[0], seed) {
            Ok(r) => cells.push(format!("{} ({:.3})", secs(r.elapsed), r.error_sq)),
            Err(e) => cells.push(format!("err: {e}")),
        }
    }
    table.row(&cells);
}

fn main() {
    let args = Args::capture();
    let axis = args.get("axis").unwrap_or("dim").to_string();
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let big: usize = args.get_or("big", 0);

    println!("## E3: scalability along axis '{axis}'");
    println!("(cells are time_s (rel_error); rank {rank}, noise 0.05, seed {seed})\n");

    let mut table = Table::new(&[
        "point",
        "shape",
        "D-Tucker",
        "Tucker-ALS",
        "ST-HOSVD",
        "RTD",
    ])
    .with_csv(&format!("e3_scalability_{axis}"));

    match axis.as_str() {
        "dim" => {
            let dims: &[usize] = if big > 0 {
                &[100, 200, 400, 800]
            } else {
                &[40, 60, 90, 130]
            };
            let l = if big > 0 { 50 } else { 20 };
            for &i in dims {
                run_point(&[i, i, l], rank, seed, &mut table, format!("I={i}"));
            }
        }
        "slices" => {
            let ls: &[usize] = if big > 0 {
                &[50, 100, 200, 400, 800]
            } else {
                &[10, 20, 40, 80]
            };
            let i = if big > 0 { 200 } else { 60 };
            for &l in ls {
                run_point(&[i, i, l], rank, seed, &mut table, format!("L={l}"));
            }
        }
        "order" => {
            // Roughly constant volume ≈ 10⁵ (CI) or 10⁷ (big).
            let shapes: Vec<Vec<usize>> = if big > 0 {
                vec![
                    vec![400, 400, 64],
                    vec![200, 200, 16, 16],
                    vec![100, 100, 10, 10, 10],
                ]
            } else {
                vec![vec![64, 64, 24], vec![48, 48, 8, 6], vec![32, 32, 5, 5, 4]]
            };
            for shape in shapes {
                let n = shape.len();
                run_point(&shape, rank, seed, &mut table, format!("N={n}"));
            }
        }
        other => {
            eprintln!("unknown --axis '{other}' (dim|slices|order)");
            std::process::exit(2);
        }
    }
    table.print();
    println!("\nExpected shape (paper): D-Tucker grows ~linearly in I and L with a much");
    println!("smaller slope than Tucker-ALS (which pays O(I^2) per slice-equivalent).");
}
