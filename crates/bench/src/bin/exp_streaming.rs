//! Experiment E7 — streaming extension (D-TuckerO-style): per-append update
//! time and accuracy of `DTuckerStream` vs recomputing D-Tucker from
//! scratch at every step.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_streaming --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--steps K]`

use dtucker_bench::{secs, time, Args, Table};
use dtucker_core::{DTucker, DTuckerConfig, DTuckerStream};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 4);
    let seed: u64 = args.get_or("seed", 0);
    let steps: usize = args.get_or("steps", 5);
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Traffic);

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    let t_total = *x.shape().last().unwrap();
    let t0 = t_total / 2;
    let block = ((t_total - t0) / steps).max(1);

    println!(
        "## E7: streaming appends on '{}' (shape {:?})",
        ds.name(),
        x.shape()
    );
    println!("(start with {t0} timesteps, then {steps} appends of {block}; rank {rank})\n");

    let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
    let head = x.subtensor_last(0, t0).expect("subtensor");
    let (stream, init_time) =
        time(|| DTuckerStream::new(&head, cfg.clone()).expect("stream init failed"));
    let mut stream = stream;
    println!("initial build on {t0} steps: {} s\n", secs(init_time));

    let mut table = Table::new(&[
        "append",
        "timesteps",
        "stream_update_s",
        "stream_err",
        "batch_recompute_s",
        "batch_err",
        "speedup",
    ])
    .with_csv("e7_streaming");

    let mut t_end = t0;
    for a in 0..steps {
        let next = (t_end + block).min(t_total);
        if next == t_end {
            break;
        }
        let blk = x.subtensor_last(t_end, next).expect("subtensor");
        let (_, update_time) = time(|| stream.append(&blk).expect("append failed"));
        t_end = next;

        let seen = x.subtensor_last(0, t_end).expect("subtensor");
        let stream_err = stream
            .decomposition()
            .expect("decomposition")
            .relative_error_sq(&seen)
            .expect("error eval");

        // Batch reference: full D-Tucker on everything seen so far.
        let (batch, batch_time) = time(|| DTucker::new(cfg.clone()).decompose(&seen));
        let batch = batch.expect("batch run failed");
        let batch_err = batch
            .decomposition
            .relative_error_sq(&seen)
            .expect("error eval");

        table.row(&[
            (a + 1).to_string(),
            t_end.to_string(),
            secs(update_time),
            format!("{stream_err:.4}"),
            secs(batch_time),
            format!("{batch_err:.4}"),
            format!(
                "{:.1}x",
                batch_time.as_secs_f64() / update_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.print();
    println!("\nExpected shape: streaming updates cost a small fraction of a batch");
    println!("recompute (only the new slices are compressed + a few warm sweeps) at");
    println!("near-identical error.");
}
