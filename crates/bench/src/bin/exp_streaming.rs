//! Experiment E7 — streaming extension (D-TuckerO-style): per-append update
//! time and accuracy of `DTuckerStream` vs recomputing D-Tucker from
//! scratch at every step.
//!
//! Raw numbers also go to `BENCH_streaming.json` at the repo root, in the
//! same top-level schema as `BENCH_threads.json`.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_streaming --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--steps K]
//!         [--json PATH]`

use dtucker_bench::{secs, time, Args, Table};
use dtucker_core::{DTucker, DTuckerConfig, DTuckerStream};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

struct Measurement {
    append: usize,
    timesteps: usize,
    stream_update_s: f64,
    stream_err: f64,
    batch_recompute_s: f64,
    batch_err: f64,
}

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 4);
    let seed: u64 = args.get_or("seed", 0);
    let steps: usize = args.get_or("steps", 5);
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Traffic);
    let json_path = args
        .get("json")
        .unwrap_or("BENCH_streaming.json")
        .to_string();

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    let t_total = *x.shape().last().unwrap();
    let t0 = t_total / 2;
    let block = ((t_total - t0) / steps).max(1);

    println!(
        "## E7: streaming appends on '{}' (shape {:?})",
        ds.name(),
        x.shape()
    );
    println!("(start with {t0} timesteps, then {steps} appends of {block}; rank {rank})\n");

    let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
    let head = x.subtensor_last(0, t0).expect("subtensor");
    let (stream, init_time) =
        time(|| DTuckerStream::new(&head, cfg.clone()).expect("stream init failed"));
    let mut stream = stream;
    println!("initial build on {t0} steps: {} s\n", secs(init_time));

    let mut table = Table::new(&[
        "append",
        "timesteps",
        "stream_update_s",
        "stream_err",
        "batch_recompute_s",
        "batch_err",
        "speedup",
    ])
    .with_csv("e7_streaming");

    let mut runs: Vec<Measurement> = Vec::new();
    let mut t_end = t0;
    for a in 0..steps {
        let next = (t_end + block).min(t_total);
        if next == t_end {
            break;
        }
        let blk = x.subtensor_last(t_end, next).expect("subtensor");
        let (_, update_time) = time(|| stream.append(&blk).expect("append failed"));
        t_end = next;

        let seen = x.subtensor_last(0, t_end).expect("subtensor");
        let stream_err = stream
            .decomposition()
            .expect("decomposition")
            .relative_error_sq(&seen)
            .expect("error eval");

        // Batch reference: full D-Tucker on everything seen so far.
        let (batch, batch_time) = time(|| DTucker::new(cfg.clone()).decompose(&seen));
        let batch = batch.expect("batch run failed");
        let batch_err = batch
            .decomposition
            .relative_error_sq(&seen)
            .expect("error eval");

        table.row(&[
            (a + 1).to_string(),
            t_end.to_string(),
            secs(update_time),
            format!("{stream_err:.4}"),
            secs(batch_time),
            format!("{batch_err:.4}"),
            format!(
                "{:.1}x",
                batch_time.as_secs_f64() / update_time.as_secs_f64().max(1e-9)
            ),
        ]);
        runs.push(Measurement {
            append: a + 1,
            timesteps: t_end,
            stream_update_s: update_time.as_secs_f64(),
            stream_err,
            batch_recompute_s: batch_time.as_secs_f64(),
            batch_err,
        });
    }
    table.print();

    write_json(&json_path, ds.name(), x.shape(), rank, seed, &runs);
    println!("\nWrote {json_path}");
    println!("Expected shape: streaming updates cost a small fraction of a batch");
    println!("recompute (only the new slices are compressed + a few warm sweeps) at");
    println!("near-identical error.");
}

/// Hand-rolled JSON (the offline crate set has no serde), matching the
/// `BENCH_threads.json` top-level schema.
fn write_json(
    path: &str,
    dataset: &str,
    shape: &[usize],
    rank: usize,
    seed: u64,
    runs: &[Measurement],
) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"e7_streaming\",\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!(
        "  \"shape\": [{}],\n",
        shape
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!("  \"rank\": {rank},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    s.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"append\": {}, \"timesteps\": {}, \"stream_update_s\": {:.6}, \
             \"stream_err\": {:.6}, \"batch_recompute_s\": {:.6}, \"batch_err\": {:.6}, \
             \"speedup\": {:.3}}}{}\n",
            m.append,
            m.timesteps,
            m.stream_update_s,
            m.stream_err,
            m.batch_recompute_s,
            m.batch_err,
            m.batch_recompute_s / m.stream_update_s.max(1e-9),
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    dtucker_core::fsutil::atomic_write_str(path, &s).expect("writing BENCH_streaming.json");
}
