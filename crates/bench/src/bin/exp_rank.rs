//! Experiment E4 — rank sensitivity: running time and error of D-Tucker vs
//! Tucker-ALS as the target rank J grows.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_rank --
//!         [--scale ci|bench|paper] [--seed S] [--dataset NAME]`

use dtucker_bench::{run_method, secs, Args, Method, Table};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let seed: u64 = args.get_or("seed", 0);
    let datasets: Vec<Dataset> = match args.get("dataset") {
        Some(name) => vec![Dataset::parse(name).expect("unknown --dataset")],
        None => vec![Dataset::Boats, Dataset::Traffic],
    };
    let ranks: Vec<usize> = vec![2, 4, 6, 8, 10];

    println!("## E4: rank sensitivity");
    println!("(scale {scale:?}, seed {seed}; J clamped to the smallest mode)\n");

    let mut table = Table::new(&[
        "dataset",
        "J",
        "dtucker_time_s",
        "dtucker_err",
        "als_time_s",
        "als_err",
        "speedup",
    ])
    .with_csv("e4_rank");

    for ds in datasets {
        let x = generate(ds, scale, seed).expect("dataset generation failed");
        let min_dim = *x.shape().iter().min().unwrap();
        for &j in &ranks {
            let j = j.min(min_dim);
            let dt = run_method(Method::DTucker, &x, j, seed).expect("dtucker failed");
            let als = run_method(Method::Hooi, &x, j, seed).expect("hooi failed");
            table.row(&[
                ds.name().into(),
                j.to_string(),
                secs(dt.elapsed),
                format!("{:.4}", dt.error_sq),
                secs(als.elapsed),
                format!("{:.4}", als.error_sq),
                format!(
                    "{:.1}x",
                    als.elapsed.as_secs_f64() / dt.elapsed.as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    table.print();
    println!("\nExpected shape (paper): D-Tucker's advantage persists across J; both");
    println!("errors fall as J grows, and D-Tucker stays within a small factor of ALS error.");
}
