//! Experiment E5 — per-phase breakdown of D-Tucker: approximation vs
//! initialization vs iteration wall-clock time, per-sweep time, and the
//! sweep counts. Demonstrates the paper's claim that the one-off
//! approximation phase dominates while iterations are cheap.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_phases --
//!         [--scale ci|bench|paper] [--rank J] [--seed S]`

use dtucker_bench::{secs, Args, Table};
use dtucker_core::{DTucker, DTuckerConfig};
use dtucker_data::{generate, parse_scale, Dataset, Scale};

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let datasets: Vec<Dataset> = match args.get("dataset") {
        Some(name) => vec![Dataset::parse(name).expect("unknown --dataset")],
        None => Dataset::ALL.to_vec(),
    };

    println!("## E5: D-Tucker per-phase breakdown");
    println!("(scale {scale:?}, rank {rank}, seed {seed})\n");

    let mut table = Table::new(&[
        "dataset",
        "approx_s",
        "init_s",
        "iter_s",
        "sweeps",
        "per_sweep_s",
        "total_s",
        "rel_error",
    ])
    .with_csv("e5_phases");

    for ds in datasets {
        let x = generate(ds, scale, seed).expect("dataset generation failed");
        let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
        let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
        let out = DTucker::new(cfg).decompose(&x).expect("dtucker failed");
        let sweeps = out.trace.iterations().max(1);
        let err = out
            .decomposition
            .relative_error_sq(&x)
            .expect("error eval failed");
        table.row(&[
            ds.name().into(),
            secs(out.timings.approximation),
            secs(out.timings.initialization),
            secs(out.timings.iteration),
            sweeps.to_string(),
            format!("{:.4}", out.timings.iteration.as_secs_f64() / sweeps as f64),
            secs(out.timings.total()),
            format!("{:.4}", err),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): the approximation phase (one pass of slice rSVDs)");
    println!("dominates total time; each ALS sweep on the compressed slices is far");
    println!("cheaper, so answering further decompositions at other ranks is nearly free.");
}
