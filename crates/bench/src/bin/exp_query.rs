//! Experiment E11 — factored range queries against a stored artifact.
//!
//! Decomposes a dataset, persists the decomposition as a `.dts` artifact,
//! and serves batches of random hyper-rectangle queries through
//! `dtucker-query` at several range sizes — from single elements up to
//! the full tensor — comparing against the naive baseline (materialize
//! the whole reconstruction, then slice). Each batch runs twice through
//! one engine: cold (empty partial-contraction cache) and warm (the same
//! queries again), so the cache-hit payoff is measured directly. Raw
//! numbers go to `BENCH_query.json` at the repo root.
//!
//! Usage: `cargo run -p dtucker-bench --release --bin exp_query --
//!         [--scale ci|bench|paper] [--rank J] [--seed S] [--dataset NAME]
//!         [--queries Q] [--cache-mb MB] [--json PATH]`

use dtucker_bench::{time, Args, Table};
use dtucker_core::{DTucker, DTuckerConfig};
use dtucker_data::{generate, parse_scale, Dataset, Scale};
use dtucker_query::{QueryEngine, Range};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

struct Measurement {
    label: &'static str,
    extents: Vec<usize>,
    numel: usize,
    queries: usize,
    cold_avg: Duration,
    warm_avg: Duration,
    naive_avg: Duration,
    hit_rate: f64,
    max_err: f64,
}

/// Mode extents covering `frac` of each mode (at least one index).
fn extents_for(shape: &[usize], frac: f64) -> Vec<usize> {
    shape
        .iter()
        .map(|&d| (((d as f64) * frac).round() as usize).clamp(1, d))
        .collect()
}

/// `n` random ranges with the given extents, placed by a deterministic rng.
fn random_ranges(shape: &[usize], extents: &[usize], n: usize, rng: &mut StdRng) -> Vec<Range> {
    (0..n)
        .map(|_| {
            Range::new(
                shape
                    .iter()
                    .zip(extents)
                    .map(|(&d, &e)| {
                        let lo = rng.gen_range(0..=d - e);
                        (lo, lo + e)
                    })
                    .collect(),
            )
        })
        .collect()
}

fn main() {
    let args = Args::capture();
    let scale = args
        .get("scale")
        .map(|s| parse_scale(s).expect("bad --scale"))
        .unwrap_or(Scale::Ci);
    let rank: usize = args.get_or("rank", 5);
    let seed: u64 = args.get_or("seed", 0);
    let queries: usize = args.get_or("queries", 16);
    let cache_mb: usize = args.get_or("cache-mb", 64);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json_path = args.get("json").unwrap_or("BENCH_query.json").to_string();
    let ds = args
        .get("dataset")
        .map(|n| Dataset::parse(n).expect("unknown --dataset"))
        .unwrap_or(Dataset::Boats);

    let x = generate(ds, scale, seed).expect("dataset generation failed");
    let rank = rank.min(*x.shape().iter().min().expect("non-empty shape"));
    let cfg = DTuckerConfig::uniform(rank, x.order()).with_seed(seed);
    let d = DTucker::new(cfg)
        .decompose(&x)
        .expect("decomposition failed")
        .decomposition;
    let shape = d.full_shape();
    let dense_bytes = x.numel() * 8;

    // Serve from a stored artifact — the whole point of the subsystem.
    let dir = std::env::temp_dir().join(format!("dtucker_query_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let artifact = dir.join("decomp.dts");
    dtucker_store::write_decomposition(&artifact, &d).expect("writing artifact");

    println!(
        "## E11: factored queries on '{}' ({shape:?}, {:.1} MB dense, ranks {:?})",
        ds.name(),
        dense_bytes as f64 / 1e6,
        d.ranks()
    );

    // Naive baseline: materialize the full reconstruction. Every naive
    // range query pays this plus the slice copy.
    let (full, naive_recon) = time(|| d.reconstruct().expect("naive reconstruction"));
    println!(
        "(naive full reconstruction: {:.4}s, model {:.2} MB; {queries} queries per size, cache {cache_mb} MB)\n",
        naive_recon.as_secs_f64(),
        d.memory_bytes() as f64 / 1e6
    );

    let sizes: [(&'static str, f64); 5] = [
        ("element", 0.0),
        ("1%", 0.01),
        ("10%", 0.10),
        ("50%", 0.50),
        ("full", 1.0),
    ];
    let mut table = Table::new(&[
        "range", "numel", "cold_ms", "warm_ms", "naive_ms", "speedup", "hit_rate",
    ])
    .with_csv("e11_query");
    let mut runs: Vec<Measurement> = Vec::new();

    for (label, frac) in sizes {
        let extents = extents_for(&shape, frac);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
        let ranges = random_ranges(&shape, &extents, queries, &mut rng);

        let mut engine = QueryEngine::open_with_cache_bytes(&artifact, cache_mb << 20)
            .expect("opening artifact");
        let (cold_results, cold_total) = time(|| engine.query_batch(&ranges).expect("cold batch"));
        let stats_cold = engine.cache_stats();
        let (_, warm_total) = time(|| engine.query_batch(&ranges).expect("warm batch"));
        let stats = engine.cache_stats();
        let warm_probes = (stats.hits + stats.misses) - (stats_cold.hits + stats_cold.misses);
        let warm_hits = stats.hits - stats_cold.hits;
        let hit_rate = if warm_probes == 0 {
            0.0
        } else {
            warm_hits as f64 / warm_probes as f64
        };

        // Naive: reconstruct-then-slice, per query (reconstruction is not
        // amortizable without keeping the dense tensor resident).
        let (naive_slice, slice_t) =
            time(|| full.subtensor(ranges[0].bounds()).expect("naive slice"));
        let naive_avg = naive_recon + slice_t;

        // Spot-check the served values against the naive slice.
        let max_err = cold_results[0]
            .as_slice()
            .iter()
            .zip(naive_slice.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_err < 1e-8 * (1.0 + full.max_abs()),
            "engine diverged from naive reconstruction: {max_err}"
        );

        let cold_avg = cold_total / queries as u32;
        let warm_avg = warm_total / queries as u32;
        table.row(&[
            label.into(),
            extents.iter().product::<usize>().to_string(),
            format!("{:.4}", cold_avg.as_secs_f64() * 1e3),
            format!("{:.4}", warm_avg.as_secs_f64() * 1e3),
            format!("{:.4}", naive_avg.as_secs_f64() * 1e3),
            format!(
                "{:.1}x",
                naive_avg.as_secs_f64() / cold_avg.as_secs_f64().max(1e-12)
            ),
            format!("{:.2}", hit_rate),
        ]);
        runs.push(Measurement {
            label,
            extents,
            numel: ranges[0].numel(),
            queries,
            cold_avg,
            warm_avg,
            naive_avg,
            hit_rate,
            max_err,
        });
    }
    table.print();

    write_json(
        &json_path,
        ds.name(),
        &shape,
        d.ranks(),
        seed,
        cores,
        cache_mb,
        naive_recon,
        &runs,
    );
    println!("\nWrote {json_path}");
    println!("Expected shape: small-range latency orders of magnitude below the naive");
    println!("reconstruct-then-slice baseline, warm repeats cheaper than cold via the");
    println!("partial-contraction cache, converging toward naive cost at full range.");
    std::fs::remove_dir_all(&dir).ok();

    // The paper-level claim this experiment pins: serving a small range
    // from the factors beats materializing the full tensor.
    let smallest = &runs[0];
    assert!(
        smallest.cold_avg < naive_recon,
        "element queries ({:?}) should beat a full reconstruction ({:?})",
        smallest.cold_avg,
        naive_recon
    );
}

/// Hand-rolled JSON (the offline crate set has no serde), matching the
/// other `BENCH_*.json` top-level schemas.
#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    dataset: &str,
    shape: &[usize],
    ranks: &[usize],
    seed: u64,
    cores: usize,
    cache_mb: usize,
    naive_recon: Duration,
    runs: &[Measurement],
) {
    let fmt_list = |v: &[usize]| {
        v.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"experiment\": \"e11_query\",\n");
    s.push_str(&format!("  \"dataset\": \"{dataset}\",\n"));
    s.push_str(&format!("  \"shape\": [{}],\n", fmt_list(shape)));
    s.push_str(&format!("  \"ranks\": [{}],\n", fmt_list(ranks)));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"hardware_threads\": {cores},\n"));
    s.push_str(&format!("  \"cache_mb\": {cache_mb},\n"));
    s.push_str(&format!(
        "  \"naive_reconstruct_s\": {:.6},\n",
        naive_recon.as_secs_f64()
    ));
    s.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"range\": \"{}\", \"extents\": [{}], \"numel\": {}, \"queries\": {}, \
             \"cold_avg_s\": {:.9}, \"warm_avg_s\": {:.9}, \"naive_avg_s\": {:.9}, \
             \"speedup_cold\": {:.3}, \"cache_hit_rate\": {:.4}, \"max_abs_err\": {:.3e}}}{}\n",
            m.label,
            fmt_list(&m.extents),
            m.numel,
            m.queries,
            m.cold_avg.as_secs_f64(),
            m.warm_avg.as_secs_f64(),
            m.naive_avg.as_secs_f64(),
            m.naive_avg.as_secs_f64() / m.cold_avg.as_secs_f64().max(1e-12),
            m.hit_rate,
            m.max_err,
            if i + 1 == runs.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    dtucker_core::fsutil::atomic_write_str(path, &s).expect("writing BENCH_query.json");
}
