//! # dtucker-bench
//!
//! Experiment harness regenerating the D-Tucker evaluation. Each binary in
//! `src/bin/` reproduces one table/figure (see `DESIGN.md` §4 for the
//! index); this library holds the shared runner, timing, and table-printing
//! plumbing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dtucker_baselines::{
    hooi, hosvd, mach, rtd, st_hosvd, tucker_ts, tucker_ttmts, HooiConfig, MachConfig, RtdConfig,
    TuckerTsConfig,
};
use dtucker_core::error::Result;
use dtucker_core::tucker::TuckerDecomp;
use dtucker_core::{DTucker, DTuckerConfig, SliceSvdKind};
use dtucker_tensor::dense::DenseTensor;
use std::time::{Duration, Instant};

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// The methods the experiments compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// D-Tucker (randomized slice SVDs).
    DTucker,
    /// D-Tucker ablation: exact slice SVDs.
    DTuckerExact,
    /// Tucker-ALS (HOOI) on the raw tensor.
    Hooi,
    /// Truncated HOSVD.
    Hosvd,
    /// Sequentially truncated HOSVD.
    StHosvd,
    /// MACH sampling + ALS.
    Mach,
    /// Randomized Tucker decomposition.
    Rtd,
    /// Tucker-ts (TensorSketch least squares).
    TuckerTs,
    /// Tucker-ttmts (TensorSketch TTM).
    TuckerTtmts,
}

impl Method {
    /// The comparison set used in the trade-off experiment (matches the
    /// paper's competitor list).
    pub const COMPARISON: [Method; 7] = [
        Method::DTucker,
        Method::Hooi,
        Method::StHosvd,
        Method::Mach,
        Method::Rtd,
        Method::TuckerTs,
        Method::TuckerTtmts,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::DTucker => "D-Tucker",
            Method::DTuckerExact => "D-Tucker(exact)",
            Method::Hooi => "Tucker-ALS",
            Method::Hosvd => "HOSVD",
            Method::StHosvd => "ST-HOSVD",
            Method::Mach => "MACH",
            Method::Rtd => "RTD",
            Method::TuckerTs => "Tucker-ts",
            Method::TuckerTtmts => "Tucker-ttmts",
        }
    }
}

/// Result of one method run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Which method ran.
    pub method: Method,
    /// Wall-clock time of the full run (preprocessing + iterations).
    pub elapsed: Duration,
    /// Relative squared reconstruction error against the input.
    pub error_sq: f64,
    /// ALS sweeps performed (1 for one-shot methods).
    pub iterations: usize,
    /// The decomposition (for downstream inspection).
    pub decomposition: TuckerDecomp,
}

/// Runs a method with uniform rank `j` and the paper's default protocol
/// (≤100 sweeps exact methods / ≤50 sketched, tol 1e-4, single thread).
pub fn run_method(method: Method, x: &DenseTensor, j: usize, seed: u64) -> Result<RunResult> {
    let n = x.order();
    let ranks = vec![j; n];
    let (output, elapsed) = match method {
        Method::DTucker => {
            let cfg = DTuckerConfig::uniform(j, n).with_seed(seed);
            let (out, el) = time(|| DTucker::new(cfg).decompose(x));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::DTuckerExact => {
            let mut cfg = DTuckerConfig::uniform(j, n).with_seed(seed);
            cfg.slice_svd = SliceSvdKind::Exact;
            let (out, el) = time(|| DTucker::new(cfg).decompose(x));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::Hooi => {
            let mut cfg = HooiConfig::new(&ranks);
            cfg.seed = seed;
            let (out, el) = time(|| hooi(x, &cfg));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::Hosvd => {
            let (out, el) = time(|| hosvd(x, &ranks));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::StHosvd => {
            let (out, el) = time(|| st_hosvd(x, &ranks));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::Mach => {
            let mut cfg = MachConfig::new(&ranks);
            cfg.seed = seed;
            let (out, el) = time(|| mach(x, &cfg));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::Rtd => {
            let mut cfg = RtdConfig::new(&ranks);
            cfg.seed = seed;
            let (out, el) = time(|| rtd(x, &cfg));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::TuckerTs => {
            let mut cfg = TuckerTsConfig::new(&ranks);
            cfg.seed = seed;
            let (out, el) = time(|| tucker_ts(x, &cfg));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
        Method::TuckerTtmts => {
            let mut cfg = TuckerTsConfig::new(&ranks);
            cfg.seed = seed;
            let (out, el) = time(|| tucker_ttmts(x, &cfg));
            let out = out?;
            ((out.decomposition, out.trace.iterations()), el)
        }
    };
    let (decomposition, iterations) = output;
    let error_sq = decomposition.relative_error_sq(x)?;
    Ok(RunResult {
        method,
        elapsed,
        error_sq,
        iterations,
        decomposition,
    })
}

/// Estimated dominant flop count of a sketched (Tucker-ts / Tucker-ttmts)
/// run: the core-update Gram product `2·m₂·(ΠJ)²` per sweep.
pub fn sketched_cost_estimate(j: usize, n_modes: usize, k_factor: usize, sweeps: usize) -> f64 {
    let p: f64 = (j as f64).powi(n_modes as i32);
    let m2 = ((k_factor as f64 * p) as usize)
        .next_power_of_two()
        .min(1 << 20) as f64;
    2.0 * m2 * p * p * (sweeps as f64 + 1.0)
}

/// Flop budget above which a method is reported as out-of-time ("o.o.t."),
/// mirroring the paper's markers for runs exceeding its wall-clock budget.
/// ~1e12 flops is a few minutes on the scalar kernels of this repo.
pub const OOT_FLOP_BUDGET: f64 = 1e12;

/// True when running `method` at rank `j` on `x` would exceed the
/// out-of-time budget (only the sketched methods have a super-linear
/// dependence on `J^N` that can explode).
pub fn likely_oot(method: Method, x: &DenseTensor, j: usize) -> bool {
    match method {
        Method::TuckerTs | Method::TuckerTtmts => {
            let cfg = TuckerTsConfig::new(&vec![j; x.order()]);
            sketched_cost_estimate(j, x.order(), cfg.k_factor, cfg.max_iters) > OOT_FLOP_BUDGET
        }
        _ => false,
    }
}

/// Minimal command-line option reader: `--key value` pairs.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// From an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// Value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        let flag = format!("--{key}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    /// Value of `--key` parsed, or a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Plain-text table printer (markdown-ish, aligned) that also mirrors rows
/// into a CSV file under `results/` when a path is given.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv_path: Option<std::path::PathBuf>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            csv_path: None,
        }
    }

    /// Also mirror the table into `results/<name>.csv`.
    pub fn with_csv(mut self, name: &str) -> Self {
        let dir = std::path::Path::new("results");
        std::fs::create_dir_all(dir).ok();
        self.csv_path = Some(dir.join(format!("{name}.csv")));
        self
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the aligned table and writes the CSV mirror.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            format!("| {} |", parts.join(" | "))
        };
        println!("{}", line(&self.headers));
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        println!("{}", line(&sep));
        for row in &self.rows {
            println!("{}", line(row));
        }
        if let Some(path) = &self.csv_path {
            let mut out = String::new();
            out.push_str(&self.headers.join(","));
            out.push('\n');
            for row in &self.rows {
                out.push_str(&row.join(","));
                out.push('\n');
            }
            if let Err(e) = dtucker_core::fsutil::atomic_write_str(path, &out) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("(csv mirrored to {})", path.display());
            }
        }
    }
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats bytes human-readably.
pub fn human_bytes(b: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.1} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_tensor::random::low_rank_plus_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn run_every_method_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = low_rank_plus_noise(&[16, 14, 10], &[2, 2, 2], 0.05, &mut rng).unwrap();
        for m in [
            Method::DTucker,
            Method::DTuckerExact,
            Method::Hooi,
            Method::Hosvd,
            Method::StHosvd,
            Method::Mach,
            Method::Rtd,
            Method::TuckerTs,
            Method::TuckerTtmts,
        ] {
            let r = run_method(m, &x, 2, 7).unwrap();
            assert!(r.error_sq.is_finite(), "{}", m.name());
            // MACH keeps 10% of a tiny tensor here, so its error is large by
            // design; everything else should approximate well.
            let bound = if m == Method::Mach { 20.0 } else { 1.0 };
            assert!(r.error_sq < bound, "{} error {}", m.name(), r.error_sq);
            assert!(r.iterations >= 1);
        }
    }

    #[test]
    fn args_parsing() {
        let a = Args::from_vec(vec![
            "--scale".into(),
            "ci".into(),
            "--seed".into(),
            "9".into(),
        ]);
        assert_eq!(a.get("scale"), Some("ci"));
        assert_eq!(a.get_or("seed", 0u64), 9);
        assert_eq!(a.get_or("rank", 5usize), 5);
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(human_bytes(512), "512.0 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn table_rows_align() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.print(); // smoke: must not panic
        assert_eq!(t.rows.len(), 1);
    }
}
