//! End-to-end tests over real sockets: bit-identity across thread
//! counts, metrics, load shedding, hostile inputs, and graceful drain.

use dtucker_core::TuckerDecomp;
use dtucker_query::{QueryEngine, Range};
use dtucker_serve::http::Limits;
use dtucker_serve::json::{render_result, JsonWriter};
use dtucker_serve::{App, ServeConfig, Server, ServerStats};
use dtucker_tensor::random::random_tucker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn decomp(seed: u64) -> TuckerDecomp {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = random_tucker(&[10, 8, 6], &[3, 2, 2], &mut rng).unwrap();
    TuckerDecomp {
        core: m.core,
        factors: m.factors,
    }
}

struct Running {
    addr: SocketAddr,
    app: Arc<App>,
    handle: JoinHandle<ServerStats>,
}

fn start(cfg: ServeConfig) -> Running {
    let mut cfg = cfg;
    cfg.addr = "127.0.0.1:0".to_string();
    let server = Server::bind(cfg, vec![("demo".to_string(), decomp(11))]).unwrap();
    let addr = server.local_addr().unwrap();
    let app = server.app();
    let handle = std::thread::spawn(move || server.run().unwrap());
    Running { addr, app, handle }
}

fn stop(r: Running) -> ServerStats {
    // Belt and braces: drain via the flag even if no /shutdown was sent.
    r.app.begin_drain();
    r.handle.join().unwrap()
}

/// Sends `raw` on a fresh connection and returns the full response
/// (headers + body) once the server closes it.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(raw).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn get_close(addr: SocketAddr, path: &str) -> String {
    roundtrip(
        addr,
        format!("GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes(),
    )
}

/// Reads exactly one response frame off a keep-alive connection: headers
/// up to the blank line, then `Content-Length` body bytes.
fn read_one_response(s: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        assert_eq!(s.read(&mut byte).unwrap(), 1, "EOF inside headers");
        buf.push(byte[0]);
    }
    let head = String::from_utf8(buf.clone()).unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
    buf.extend_from_slice(&body);
    String::from_utf8(buf).unwrap()
}

fn body_of(response: &str) -> &str {
    response.split("\r\n\r\n").nth(1).unwrap()
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap()
}

#[test]
fn responses_are_bit_identical_across_thread_counts() {
    let mut direct = QueryEngine::new(decomp(11)).unwrap();
    let specs = ["2:5,0:3,:", "7,4,5", ":,:,:", "0:10,3,1:4"];
    let want: Vec<String> = specs
        .iter()
        .map(|spec| {
            let r = Range::parse(spec, &[10, 8, 6]).unwrap();
            render_result(spec, &direct.query(&r).unwrap())
        })
        .collect();

    for threads in [1, 2, 8] {
        let running = start(ServeConfig {
            threads,
            ..ServeConfig::default()
        });
        for (spec, want_body) in specs.iter().zip(&want) {
            // Twice per spec: a cold and a cache-warm answer must agree too.
            for _ in 0..2 {
                let resp = get_close(running.addr, &format!("/q/demo?range={spec}"));
                assert_eq!(status_of(&resp), 200, "threads={threads} spec={spec}");
                assert_eq!(body_of(&resp), want_body, "threads={threads} spec={spec}");
            }
        }
        // Aggregate and batch bytes agree with the direct renderers as well.
        let sum = direct
            .sum(&Range::parse(":,:,:", &[10, 8, 6]).unwrap())
            .unwrap();
        let resp = get_close(running.addr, "/q/demo?range=:,:,:&agg=sum");
        assert_eq!(
            body_of(&resp),
            format!("{{\"spec\":\":,:,:\",\"agg\":\"sum\",\"value\":{sum}}}")
        );
        let batch = roundtrip(
            running.addr,
            b"POST /q/demo/batch HTTP/1.1\r\nConnection: close\r\nContent-Length: 12\r\n\r\n7,4,5\n2,2,2\n",
        );
        let direct_batch = direct
            .query_batch(&[
                Range::parse("7,4,5", &[10, 8, 6]).unwrap(),
                Range::parse("2,2,2", &[10, 8, 6]).unwrap(),
            ])
            .unwrap();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("results");
        w.begin_array();
        dtucker_serve::json::write_result(&mut w, "7,4,5", &direct_batch[0]);
        dtucker_serve::json::write_result(&mut w, "2,2,2", &direct_batch[1]);
        w.end_array();
        w.end_object();
        assert_eq!(body_of(&batch), w.finish(), "threads={threads}");
        stop(running);
    }
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let running = start(ServeConfig::default());
    let mut s = TcpStream::connect(running.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for i in 0..5 {
        s.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
        let resp = read_one_response(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200"), "request {i}: {resp}");
        assert!(resp.contains("Connection: keep-alive"), "request {i}");
    }
    let stats = stop(running);
    assert_eq!(stats.connections, 1);
    assert!(stats.requests >= 5);
}

#[test]
fn metrics_show_cache_hits_on_repeated_queries() {
    let running = start(ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    });
    for _ in 0..4 {
        let resp = get_close(running.addr, "/q/demo?range=1:6,2:7,:");
        assert_eq!(status_of(&resp), 200);
    }
    let metrics = get_close(running.addr, "/metrics");
    let text = body_of(&metrics);
    let hits_line = text
        .lines()
        .find(|l| l.starts_with("dtucker_cache_events_total{artifact=\"demo\",kind=\"hit\"}"))
        .unwrap_or_else(|| panic!("no hit counter in:\n{text}"));
    let hits: u64 = hits_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(hits > 0, "{hits_line}");
    assert!(text.contains("dtucker_requests_total{route=\"q_range\",status=\"200\"} 4"));
    assert!(text.contains("dtucker_phase_seconds_total{phase=\"plan\"}"));
    assert!(text.contains("dtucker_phase_calls_total{phase=\"serve.handle\"}"));
    assert!(text.contains("dtucker_request_seconds_bucket{le=\"+Inf\"}"));
    stop(running);
}

#[test]
fn overload_sheds_with_503_and_retry_after() {
    let running = start(ServeConfig {
        threads: 1,
        max_inflight: 1,
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    });
    // The single worker picks this connection up and blocks reading it.
    let busy = TcpStream::connect(running.addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // This one fills the only queue slot.
    let queued = TcpStream::connect(running.addr).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // Queue full: the acceptor must shed this connection itself.
    let mut s = TcpStream::connect(running.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let resp = String::from_utf8(out).unwrap();
    assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
    assert!(resp.contains("Retry-After: 1"), "{resp}");
    assert!(resp.contains("{\"error\":"), "{resp}");
    drop(busy);
    drop(queued);
    let stats = stop(running);
    assert!(stats.shed >= 1, "{stats:?}");
}

#[test]
fn slowloris_is_cut_off_by_the_read_timeout() {
    let running = start(ServeConfig {
        threads: 1,
        read_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut s = TcpStream::connect(running.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A drip-fed, never-finished request line.
    s.write_all(b"GET /heal").unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let resp = String::from_utf8(out).unwrap();
    assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
    // The server is still healthy afterwards.
    assert_eq!(status_of(&get_close(running.addr, "/health")), 200);
    stop(running);
}

#[test]
fn batch_route_collision_cannot_kill_the_worker_pool() {
    // Regression: "POST /q/batch" both starts with "/q/" and ends with
    // "/batch"; the old route used index slicing and panicked, and each
    // panic permanently killed one worker — `threads` requests was a
    // full remote DoS. The route must answer 404 and the pool must stay
    // intact well past the worker count.
    let running = start(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    for _ in 0..4 {
        let resp = roundtrip(
            running.addr,
            b"POST /q/batch HTTP/1.1\r\nConnection: close\r\nContent-Length: 6\r\n\r\n1,1,1\n",
        );
        assert_eq!(status_of(&resp), 404, "{resp}");
    }
    assert_eq!(status_of(&get_close(running.addr, "/health")), 200);
    stop(running);
}

#[test]
fn drip_fed_slowloris_hits_the_request_deadline() {
    // Each byte lands well inside the per-read socket timeout, so only
    // the per-request wall-clock deadline can cut this client off.
    let running = start(ServeConfig {
        threads: 1,
        read_timeout: Duration::from_secs(5),
        limits: Limits {
            max_request_duration: Duration::from_millis(400),
            ..Limits::default()
        },
        ..ServeConfig::default()
    });
    let mut s = TcpStream::connect(running.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut w = s.try_clone().unwrap();
    let writer = std::thread::spawn(move || {
        for _ in 0..400 {
            if w.write_all(b"x").is_err() {
                break; // server closed on us — the expected outcome
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    });
    let started = std::time::Instant::now();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    let resp = String::from_utf8(out).unwrap();
    assert!(resp.starts_with("HTTP/1.1 408"), "{resp}");
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "deadline not enforced: took {:?}",
        started.elapsed()
    );
    writer.join().unwrap();
    // The worker is free again and the server healthy.
    assert_eq!(status_of(&get_close(running.addr, "/health")), 200);
    stop(running);
}

#[test]
fn hostile_requests_get_4xx_not_a_dead_server() {
    let limits = Limits {
        max_request_line: 128,
        max_header_count: 8,
        max_header_bytes: 256,
        max_body_bytes: 64,
        ..Limits::default()
    };
    let running = start(ServeConfig {
        limits,
        ..ServeConfig::default()
    });
    let a = running.addr;

    // Oversized request line / headers / body.
    let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(500));
    assert_eq!(status_of(&roundtrip(a, long_line.as_bytes())), 414);
    let fat_headers = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "y".repeat(500));
    assert_eq!(status_of(&roundtrip(a, fat_headers.as_bytes())), 431);
    let big_body = b"POST /q/demo/batch HTTP/1.1\r\nContent-Length: 5000\r\n\r\n";
    assert_eq!(status_of(&roundtrip(a, big_body)), 413);

    // Garbage pipelined after a valid request: the valid one is answered,
    // the garbage earns a 400 and a close.
    let resp = roundtrip(a, b"GET /health HTTP/1.1\r\n\r\n%%%garbage%%%\r\n\r\n");
    let statuses: Vec<&str> = resp.matches("HTTP/1.1 ").collect();
    assert_eq!(statuses.len(), 2, "{resp}");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("HTTP/1.1 400"), "{resp}");

    // Malformed range specs: 400 with a JSON error body.
    for path in [
        "/q/demo?range=0:99,:,:",
        "/q/demo?range=oops",
        "/q/demo?range=1:0,:,:",
        "/q/demo?at=%zz",
    ] {
        let resp = get_close(a, path);
        assert_eq!(status_of(&resp), 400, "{path}");
        assert!(body_of(&resp).starts_with("{\"error\":"), "{path}: {resp}");
    }

    // And after all that abuse, real queries still work.
    assert_eq!(status_of(&get_close(a, "/q/demo?at=1,2,3")), 200);
    stop(running);
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let running = start(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    });
    assert_eq!(status_of(&get_close(running.addr, "/health")), 200);
    let resp = roundtrip(
        running.addr,
        b"POST /shutdown HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status_of(&resp), 200);
    assert_eq!(body_of(&resp), "{\"draining\":true}");
    // run() returns on its own — no begin_drain() needed here.
    let stats = running.handle.join().unwrap();
    assert!(stats.connections >= 2, "{stats:?}");
    assert_eq!(stats.shed, 0);
}
