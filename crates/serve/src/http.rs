//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The parser is deliberately minimal and hostile-input-first: every
//! dimension of a request — request-line length, header count, total
//! header bytes, body size — has a hard cap from [`Limits`], and every
//! violation maps to a typed [`ParseError`] carrying the status code the
//! connection is answered with before closing. Nothing in this module
//! panics on malformed input (the crate is covered by the repo lint's
//! `no-unwrap-in-lib` rule); transport stalls surface as
//! [`ParseError::Timeout`] via the socket's read timeout.
//!
//! Supported surface: `GET`/`POST`, HTTP/1.0 and 1.1, `Content-Length`
//! bodies, keep-alive with pipelining (buffered leftover bytes carry
//! over to the next request on the connection). `Transfer-Encoding` is
//! rejected with `501`.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Hard caps applied while parsing one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of the request line (method + target + version).
    pub max_request_line: usize,
    /// Maximum number of header fields.
    pub max_header_count: usize,
    /// Maximum total bytes across all header lines.
    pub max_header_bytes: usize,
    /// Maximum `Content-Length` accepted for a body.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving one complete request. The socket
    /// read timeout only bounds each *read*; a client dripping one byte
    /// per read could otherwise hold a worker for hours while never
    /// stalling long enough to trip it. Once this deadline passes the
    /// parse fails with [`ParseError::Timeout`] (answered with `408`)
    /// no matter how recently the last byte arrived.
    pub max_request_duration: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 << 10,
            max_header_count: 64,
            max_header_bytes: 16 << 10,
            max_body_bytes: 1 << 20,
            max_request_duration: Duration::from_secs(30),
        }
    }
}

/// Request methods the server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method.
    pub method: Method,
    /// Percent-decoded path (no query string).
    pub path: String,
    /// Percent-decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why parsing one request failed.
#[derive(Debug)]
pub enum ParseError {
    /// Peer closed the connection before sending any byte of a request —
    /// the normal end of a keep-alive connection, not an error.
    Closed,
    /// The socket's read timeout elapsed mid-request (slowloris or an
    /// idle keep-alive connection).
    Timeout,
    /// Transport failure.
    Io(io::Error),
    /// Protocol violation; `status` is the response the connection gets
    /// before closing (400/413/414/431/501/505).
    Bad {
        /// HTTP status to answer with.
        status: u16,
        /// Human-readable reason included in the JSON error body.
        message: String,
    },
}

fn bad(status: u16, message: impl Into<String>) -> ParseError {
    ParseError::Bad {
        status,
        message: message.into(),
    }
}

fn io_err(e: io::Error) -> ParseError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ParseError::Timeout,
        _ => ParseError::Io(e),
    }
}

/// Buffered reader living for the whole connection, so pipelined bytes
/// left over after one request are seen by the next parse.
#[derive(Debug)]
pub struct ConnReader {
    buf: Vec<u8>,
    pos: usize,
    len: usize,
}

impl Default for ConnReader {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnReader {
    /// An empty buffer.
    pub fn new() -> Self {
        ConnReader {
            buf: vec![0; 8 << 10],
            pos: 0,
            len: 0,
        }
    }

    /// Deadline checks only happen when the buffer is empty and a fresh
    /// read is needed — once per syscall, not once per byte.
    fn next_byte(
        &mut self,
        stream: &mut impl Read,
        deadline: Instant,
    ) -> Result<Option<u8>, ParseError> {
        if self.pos == self.len {
            if Instant::now() >= deadline {
                return Err(ParseError::Timeout);
            }
            self.pos = 0;
            self.len = stream.read(&mut self.buf).map_err(io_err)?;
            if self.len == 0 {
                return Ok(None);
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(b))
    }

    /// Reads one line up to `\n` (stripping a trailing `\r`), erroring
    /// with `overflow_status` if it exceeds `cap` bytes. EOF before any
    /// byte yields `Ok(None)`; EOF mid-line is a 400.
    fn read_line(
        &mut self,
        stream: &mut impl Read,
        cap: usize,
        overflow_status: u16,
        deadline: Instant,
    ) -> Result<Option<String>, ParseError> {
        let mut line: Vec<u8> = Vec::new();
        loop {
            match self.next_byte(stream, deadline)? {
                None if line.is_empty() => return Ok(None),
                None => return Err(bad(400, "connection closed mid-line")),
                Some(b'\n') => break,
                Some(b) => {
                    if line.len() >= cap {
                        return Err(bad(overflow_status, "line exceeds the configured limit"));
                    }
                    line.push(b);
                }
            }
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line)
            .map(Some)
            .map_err(|_| bad(400, "non-UTF-8 bytes in header section"))
    }

    fn read_exact_body(
        &mut self,
        stream: &mut impl Read,
        n: usize,
        deadline: Instant,
    ) -> Result<Vec<u8>, ParseError> {
        let mut body = Vec::with_capacity(n);
        // Drain what is already buffered first.
        while body.len() < n && self.pos < self.len {
            body.push(self.buf[self.pos]);
            self.pos += 1;
        }
        while body.len() < n {
            if Instant::now() >= deadline {
                return Err(ParseError::Timeout);
            }
            let mut chunk = vec![0u8; (n - body.len()).min(8 << 10)];
            let got = stream.read(&mut chunk).map_err(io_err)?;
            if got == 0 {
                return Err(bad(400, "connection closed mid-body"));
            }
            body.extend_from_slice(&chunk[..got]);
        }
        Ok(body)
    }
}

/// Percent-decodes `%XX` escapes ( `+` is left alone — range specs never
/// contain spaces). Invalid escapes or non-UTF-8 results are `None`.
fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hi = (hex[0] as char).to_digit(16)?;
            let lo = (hex[1] as char).to_digit(16)?;
            out.push((hi * 16 + lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Parses one request from the connection. `stream` is used for both
/// reading and for writing the interim `100 Continue` when a client asks
/// for it before sending a body.
pub fn parse_request<S: Read + Write>(
    reader: &mut ConnReader,
    stream: &mut S,
    limits: &Limits,
) -> Result<Request, ParseError> {
    // The deadline clock starts when we begin looking for a request, so
    // it also bounds drip-fed request lines, headers and bodies.
    let deadline = Instant::now() + limits.max_request_duration;
    // Tolerate a small number of stray blank lines before the request
    // line (RFC 9112 §2.2), but not an unbounded stream of them.
    let mut line = None;
    for _ in 0..4 {
        match reader.read_line(stream, limits.max_request_line, 414, deadline)? {
            None => return Err(ParseError::Closed),
            Some(l) if l.is_empty() => continue,
            Some(l) => {
                line = Some(l);
                break;
            }
        }
    }
    let line = line.ok_or_else(|| bad(400, "expected a request line"))?;

    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(bad(400, format!("malformed request line '{line}'"))),
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(bad(501, format!("method '{other}' not implemented"))),
    };
    let mut keep_alive = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(bad(505, format!("unsupported version '{other}'"))),
    };
    if !target.starts_with('/') {
        return Err(bad(
            400,
            format!("target '{target}' is not an absolute path"),
        ));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path =
        percent_decode(raw_path).ok_or_else(|| bad(400, "invalid percent-encoding in path"))?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            let k = percent_decode(k)
                .ok_or_else(|| bad(400, "invalid percent-encoding in query name"))?;
            let v = percent_decode(v)
                .ok_or_else(|| bad(400, "invalid percent-encoding in query value"))?;
            query.push((k, v));
        }
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let l = reader
            .read_line(stream, limits.max_request_line, 431, deadline)?
            .ok_or_else(|| bad(400, "connection closed before end of headers"))?;
        if l.is_empty() {
            break;
        }
        header_bytes += l.len();
        if header_bytes > limits.max_header_bytes {
            return Err(bad(431, "header section exceeds the configured byte limit"));
        }
        if headers.len() >= limits.max_header_count {
            return Err(bad(431, "too many header fields"));
        }
        let (name, value) = l
            .split_once(':')
            .ok_or_else(|| bad(400, format!("malformed header line '{l}'")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(bad(400, format!("malformed header name '{name}'")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
        keep_alive,
    };
    match req.header("connection").map(str::to_ascii_lowercase) {
        Some(v) if v.contains("close") => keep_alive = false,
        Some(v) if v.contains("keep-alive") => keep_alive = true,
        _ => {}
    }
    req.keep_alive = keep_alive;

    if req.header("transfer-encoding").is_some() {
        return Err(bad(501, "transfer-encoding is not supported"));
    }
    // Content-Length hygiene (RFC 9112 §6.3): conflicting duplicates are
    // a request-smuggling vector and must be rejected, and the value is
    // digits only — `usize::parse` alone would also accept a leading `+`.
    let mut content_length: Option<String> = None;
    for (name, value) in &req.headers {
        if name != "content-length" {
            continue;
        }
        match &content_length {
            Some(prev) if prev != value => {
                return Err(bad(400, "conflicting content-length headers"));
            }
            _ => content_length = Some(value.clone()),
        }
    }
    if let Some(cl) = content_length {
        if cl.is_empty() || !cl.bytes().all(|b| b.is_ascii_digit()) {
            return Err(bad(400, format!("invalid content-length '{cl}'")));
        }
        let n: usize = cl
            .parse()
            .map_err(|_| bad(400, format!("invalid content-length '{cl}'")))?;
        if n > limits.max_body_bytes {
            return Err(bad(413, format!("body of {n} bytes exceeds the limit")));
        }
        if n > 0 {
            if req
                .header("expect")
                .is_some_and(|v| v.eq_ignore_ascii_case("100-continue"))
            {
                stream
                    .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                    .map_err(io_err)?;
            }
            req.body = reader.read_exact_body(stream, n, deadline)?;
        }
    }
    Ok(req)
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Emits a `Retry-After: n` header (load shedding).
    pub retry_after: Option<u32>,
    /// Forces `Connection: close` regardless of the request.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            close: false,
        }
    }

    /// A plain-text response (used by `/metrics`).
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
            close: false,
        }
    }

    /// A JSON `{"error": ...}` response that also closes the connection.
    pub fn error(status: u16, message: &str) -> Self {
        let mut r = Self::json(status, crate::json::render_error(message));
        r.close = true;
        r
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes `r` with `Content-Length` and the negotiated `Connection`
/// header.
pub fn write_response(stream: &mut impl Write, r: &Response, keep_alive: bool) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        r.status,
        reason(r.status),
        r.content_type,
        r.body.len()
    );
    if let Some(secs) = r.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    let keep = keep_alive && !r.close;
    head.push_str(if keep {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&r.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory bidirectional stream for parser tests.
    struct Fake {
        input: io::Cursor<Vec<u8>>,
        written: Vec<u8>,
    }

    impl Fake {
        fn new(input: &[u8]) -> Self {
            Fake {
                input: io::Cursor::new(input.to_vec()),
                written: Vec::new(),
            }
        }
    }

    impl Read for Fake {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.input.read(buf)
        }
    }

    impl Write for Fake {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn parse(input: &[u8]) -> Result<Request, ParseError> {
        let mut s = Fake::new(input);
        parse_request(&mut ConnReader::new(), &mut s, &Limits::default())
    }

    fn parse_with(input: &[u8], limits: &Limits) -> Result<Request, ParseError> {
        let mut s = Fake::new(input);
        parse_request(&mut ConnReader::new(), &mut s, limits)
    }

    fn status_of(e: ParseError) -> u16 {
        match e {
            ParseError::Bad { status, .. } => status,
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let r =
            parse(b"GET /q/my%20art?range=0:3,1:5,2&agg=sum HTTP/1.1\r\nHost: x\r\nX-A: 1\r\n\r\n")
                .unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/q/my art");
        assert_eq!(r.query_param("range"), Some("0:3,1:5,2"));
        assert_eq!(r.query_param("agg"), Some("sum"));
        assert_eq!(r.query_param("missing"), None);
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.keep_alive);
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_body_and_keepalive_negotiation() {
        let r = parse(b"POST /q/d/batch HTTP/1.1\r\nContent-Length: 9\r\n\r\n0:2,:,:\nX").unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"0:2,:,:\nX");
        assert!(r.keep_alive);
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn expect_100_continue_is_answered() {
        let mut s =
            Fake::new(b"POST /b HTTP/1.1\r\nContent-Length: 2\r\nExpect: 100-continue\r\n\r\nok");
        let r = parse_request(&mut ConnReader::new(), &mut s, &Limits::default()).unwrap();
        assert_eq!(r.body, b"ok");
        assert!(s.written.starts_with(b"HTTP/1.1 100 Continue"));
    }

    #[test]
    fn pipelined_requests_share_the_reader() {
        let mut s = Fake::new(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let mut reader = ConnReader::new();
        let a = parse_request(&mut reader, &mut s, &Limits::default()).unwrap();
        let b = parse_request(&mut reader, &mut s, &Limits::default()).unwrap();
        assert_eq!(a.path, "/a");
        assert_eq!(b.path, "/b");
        assert!(matches!(
            parse_request(&mut reader, &mut s, &Limits::default()),
            Err(ParseError::Closed)
        ));
    }

    #[test]
    fn hostile_inputs_map_to_statuses() {
        // Garbage request line.
        assert_eq!(
            status_of(parse(b"NOT A REQUEST AT ALL\r\n\r\n").err().unwrap()),
            400
        );
        // Unknown method / bad version.
        assert_eq!(
            status_of(parse(b"BREW /pot HTTP/1.1\r\n\r\n").err().unwrap()),
            501
        );
        assert_eq!(
            status_of(parse(b"GET / HTTP/9.9\r\n\r\n").err().unwrap()),
            505
        );
        // Relative target, bad escapes, malformed headers.
        assert_eq!(
            status_of(parse(b"GET nope HTTP/1.1\r\n\r\n").err().unwrap()),
            400
        );
        assert_eq!(
            status_of(parse(b"GET /%zz HTTP/1.1\r\n\r\n").err().unwrap()),
            400
        );
        assert_eq!(
            status_of(
                parse(b"GET / HTTP/1.1\r\nno colon here\r\n\r\n")
                    .err()
                    .unwrap()
            ),
            400
        );
        // Chunked bodies are refused, bad content-length is a 400.
        assert_eq!(
            status_of(
                parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
                    .err()
                    .unwrap()
            ),
            501
        );
        assert_eq!(
            status_of(
                parse(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n")
                    .err()
                    .unwrap()
            ),
            400
        );
        // Truncated mid-line and mid-body.
        assert_eq!(
            status_of(parse(b"GET / HTTP/1.1\r\nHost").err().unwrap()),
            400
        );
        assert_eq!(
            status_of(
                parse(b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
                    .err()
                    .unwrap()
            ),
            400
        );
    }

    #[test]
    fn oversize_dimensions_hit_their_caps() {
        let limits = Limits {
            max_request_line: 64,
            max_header_count: 2,
            max_header_bytes: 64,
            max_body_bytes: 16,
            ..Limits::default()
        };
        // Request line too long → 414.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(200));
        assert_eq!(
            status_of(parse_with(long.as_bytes(), &limits).err().unwrap()),
            414
        );
        // Header bytes / count → 431.
        let fat = format!("GET / HTTP/1.1\r\nX: {}\r\n\r\n", "b".repeat(100));
        assert_eq!(
            status_of(parse_with(fat.as_bytes(), &limits).err().unwrap()),
            431
        );
        let many = b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        assert_eq!(status_of(parse_with(many, &limits).err().unwrap()), 431);
        // Declared body over the cap → 413 without reading it.
        let big = b"POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert_eq!(status_of(parse_with(big, &limits).err().unwrap()), 413);
    }

    #[test]
    fn content_length_hygiene() {
        // Conflicting duplicates are a smuggling vector → 400.
        assert_eq!(
            status_of(
                parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nok")
                    .err()
                    .unwrap()
            ),
            400
        );
        // Identical duplicates are tolerated (RFC 9110 §8.6).
        let r =
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(r.body, b"ok");
        // Digits only: usize::parse alone would accept a leading '+'.
        for raw in [
            b"POST / HTTP/1.1\r\nContent-Length: +2\r\n\r\nok".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length: 2 2\r\n\r\nok".as_slice(),
            b"POST / HTTP/1.1\r\nContent-Length:\r\n\r\n".as_slice(),
        ] {
            assert_eq!(status_of(parse(raw).err().unwrap()), 400);
        }
    }

    /// A stream that never stalls a single read but also never finishes
    /// a request: one byte per read, forever.
    struct Drip;

    impl Read for Drip {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            std::thread::sleep(Duration::from_millis(5));
            buf[0] = b'a';
            Ok(1)
        }
    }

    impl Write for Drip {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn drip_fed_request_hits_the_total_deadline() {
        let limits = Limits {
            max_request_duration: Duration::from_millis(50),
            ..Limits::default()
        };
        let start = Instant::now();
        let err = parse_request(&mut ConnReader::new(), &mut Drip, &limits).unwrap_err();
        assert!(matches!(err, ParseError::Timeout), "{err:?}");
        // Well before the 8 KiB request-line cap (~40s at this drip rate)
        // could have fired.
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn clean_close_and_blank_line_tolerance() {
        assert!(matches!(parse(b""), Err(ParseError::Closed)));
        let r = parse(b"\r\n\r\nGET /x HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.path, "/x");
        // An unbounded blank-line stream is rejected, not looped on.
        assert_eq!(
            status_of(parse(b"\r\n\r\n\r\n\r\n\r\n\r\n").err().unwrap()),
            400
        );
    }

    #[test]
    fn response_writing() {
        let mut out = Vec::new();
        let mut r = Response::json(200, "{\"ok\":true}".into());
        write_response(&mut out, &r, true).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("{\"ok\":true}"));

        r.close = true;
        let mut out = Vec::new();
        write_response(&mut out, &r, true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close"));

        let mut shed = Response::error(503, "over capacity");
        shed.retry_after = Some(1);
        let mut out = Vec::new();
        write_response(&mut out, &shed, false).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Retry-After: 1\r\n"), "{s}");
        assert!(s.contains("503 Service Unavailable"));
        assert!(s.contains("{\"error\":\"over capacity\"}"));
        assert_eq!(reason(418), "Unknown");
    }
}
