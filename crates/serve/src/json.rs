//! The workspace's one JSON serializer.
//!
//! Both the HTTP server and `dtucker-cli query --format json` emit JSON
//! through [`JsonWriter`], so scripted clients see byte-identical
//! encodings regardless of which front end produced them. The writer is
//! push-based (no value tree, no allocations beyond the output buffer),
//! escape-correct for every `&str` it is handed, and renders `f64` with
//! Rust's shortest-round-trip `Display` (non-finite values become
//! `null` — JSON has no NaN/∞).
//!
//! The `render_*` helpers at the bottom are the shared response shapes
//! for query results.

use dtucker_tensor::DenseTensor;

/// Appends `s` to `out` JSON-escaped (without surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A push-based JSON document writer with automatic comma placement.
///
/// Call `begin_object`/`begin_array`, then `key` + a value method inside
/// objects or value methods directly inside arrays, then the matching
/// `end_*`, and take the bytes with [`finish`](JsonWriter::finish).
/// Nesting bookkeeping is a plain stack; misuse (a key outside an
/// object, unbalanced ends) produces malformed output rather than a
/// panic — the unit tests pin the balanced paths used by the crate.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    // One entry per open container: true once a child has been written
    // (so the next child needs a leading comma).
    stack: Vec<bool>,
    // True immediately after `key`, suppressing the comma logic for the
    // value that follows it.
    after_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn comma(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_child) = self.stack.last_mut() {
            if *has_child {
                self.out.push(',');
            }
            *has_child = true;
        }
    }

    /// Opens `{`.
    pub fn begin_object(&mut self) {
        self.comma();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes `}`.
    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens `[`.
    pub fn begin_array(&mut self) {
        self.comma();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes `]`.
    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    /// Writes an object key (escaped) and its `:`.
    pub fn key(&mut self, k: &str) {
        self.comma();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        self.after_key = true;
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, v: &str) {
        self.comma();
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    /// Writes an `f64` value: shortest round-trip decimal, or `null` for
    /// NaN/±∞.
    pub fn number_f64(&mut self, v: f64) {
        self.comma();
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes an unsigned integer value.
    pub fn number_u64(&mut self, v: u64) {
        self.comma();
        self.out.push_str(&format!("{v}"));
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) {
        self.comma();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes `null`.
    pub fn null(&mut self) {
        self.comma();
        self.out.push_str("null");
    }

    /// Consumes the writer and returns the document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// `{"error": MESSAGE}` — the uniform error body for HTTP error statuses
/// and CLI JSON mode.
pub fn render_error(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error");
    w.string(message);
    w.end_object();
    w.finish()
}

/// One query result. Single-element queries render as
/// `{"spec": S, "value": V}`; everything larger as
/// `{"spec": S, "shape": [...], "values": [...]}` with the values
/// flattened in row-major order.
pub fn render_result(spec: &str, t: &DenseTensor) -> String {
    let mut w = JsonWriter::new();
    write_result(&mut w, spec, t);
    w.finish()
}

/// Writes one query result into an open writer (see [`render_result`]).
pub fn write_result(w: &mut JsonWriter, spec: &str, t: &DenseTensor) {
    w.begin_object();
    w.key("spec");
    w.string(spec);
    if t.numel() == 1 {
        w.key("value");
        w.number_f64(t.as_slice()[0]);
    } else {
        w.key("shape");
        w.begin_array();
        for &d in t.shape() {
            w.number_u64(d as u64);
        }
        w.end_array();
        w.key("values");
        w.begin_array();
        for &v in t.as_slice() {
            w.number_f64(v);
        }
        w.end_array();
    }
    w.end_object();
}

/// One aggregate result: `{"spec": S, "agg": KIND, "value": V}`.
pub fn render_aggregate(spec: &str, agg: &str, value: f64) -> String {
    let mut w = JsonWriter::new();
    write_aggregate(&mut w, spec, agg, value);
    w.finish()
}

/// Writes one aggregate result into an open writer.
pub fn write_aggregate(w: &mut JsonWriter, spec: &str, agg: &str, value: f64) {
    w.begin_object();
    w.key("spec");
    w.string(spec);
    w.key("agg");
    w.string(agg);
    w.key("value");
    w.number_f64(value);
    w.end_object();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_correct() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\te\r\u{1}ü");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\r\\u0001ü");
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("k\"ey");
        w.string("v\\al");
        w.end_object();
        assert_eq!(w.finish(), "{\"k\\\"ey\":\"v\\\\al\"}");
    }

    #[test]
    fn commas_and_nesting() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("a");
        w.number_u64(1);
        w.key("b");
        w.begin_array();
        w.number_f64(1.5);
        w.boolean(false);
        w.null();
        w.begin_object();
        w.key("c");
        w.string("x");
        w.end_object();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\"a\":1,\"b\":[1.5,false,null,{\"c\":\"x\"}]}");
    }

    #[test]
    fn f64_round_trip_and_nonfinite() {
        for v in [0.0, -1.5, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let mut w = JsonWriter::new();
            w.begin_array();
            w.number_f64(v);
            w.end_array();
            let s = w.finish();
            let inner = &s[1..s.len() - 1];
            let back: f64 = inner.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
        let mut w = JsonWriter::new();
        w.begin_array();
        w.number_f64(f64::NAN);
        w.number_f64(f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[null,null]");
    }

    #[test]
    fn result_shapes() {
        let one = DenseTensor::from_vec(&[1, 1], vec![2.5]).unwrap();
        assert_eq!(
            render_result("3,4", &one),
            "{\"spec\":\"3,4\",\"value\":2.5}"
        );
        let block = DenseTensor::from_vec(&[2, 1], vec![1.0, -2.0]).unwrap();
        assert_eq!(
            render_result("0:2,4", &block),
            "{\"spec\":\"0:2,4\",\"shape\":[2,1],\"values\":[1,-2]}"
        );
        assert_eq!(
            render_aggregate(":,:", "sum", 7.25),
            "{\"spec\":\":,:\",\"agg\":\"sum\",\"value\":7.25}"
        );
        assert_eq!(
            render_error("no \"such\" artifact"),
            "{\"error\":\"no \\\"such\\\" artifact\"}"
        );
    }
}
