//! Route dispatch: one parsed [`Request`] in, one [`Response`] out.
//!
//! The handler is pure with respect to the transport — it never touches a
//! socket — so every route is unit-testable without a listener, and the
//! integration tests can compare server responses byte-for-byte against
//! direct calls through the same renderers.
//!
//! | Route | Meaning |
//! |---|---|
//! | `GET /health` | liveness + drain state |
//! | `GET /artifacts` | names, shapes and ranks being served |
//! | `GET /q/NAME?range=SPEC` | reconstruct a range (`at=SPEC` for single elements) |
//! | `GET /q/NAME?range=SPEC&agg=sum\|mean\|fro` | aggregate over a range |
//! | `POST /q/NAME/batch` | newline-separated specs through the batch planner |
//! | `GET /metrics` | Prometheus text exposition |
//! | `POST /shutdown` | begin graceful drain |

use crate::http::{Method, Request, Response};
use crate::json::{render_error, render_result, write_result, JsonWriter};
use crate::metrics::{ArtifactReading, Metrics};
use dtucker_core::PhaseProfile;
use dtucker_query::{QueryError, Range, SharedQueryEngine};
use std::sync::atomic::{AtomicBool, Ordering};

/// One artifact being served: its store name and its sharded engine.
#[derive(Debug)]
pub struct ServedArtifact {
    /// The artifact's name in the store (no `.dts` suffix).
    pub name: String,
    /// The sharded engine answering queries over it.
    pub engine: SharedQueryEngine,
}

/// Shared application state: the artifacts, the instruments, and the
/// drain flag the acceptor polls.
#[derive(Debug)]
pub struct App {
    artifacts: Vec<ServedArtifact>,
    /// Server instrumentation (public so the accept loop can record
    /// sheds and queue depths on it).
    pub metrics: Metrics,
    draining: AtomicBool,
}

impl App {
    /// Application state over `artifacts`.
    pub fn new(artifacts: Vec<ServedArtifact>) -> Self {
        App {
            artifacts,
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// The artifacts being served.
    pub fn artifacts(&self) -> &[ServedArtifact] {
        &self.artifacts
    }

    /// Looks an artifact up by name.
    pub fn artifact(&self, name: &str) -> Option<&ServedArtifact> {
        self.artifacts.iter().find(|a| a.name == name)
    }

    /// Whether graceful drain has begun.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins graceful drain: the accept loop stops taking connections
    /// and workers finish their current keep-alive exchanges.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Per-artifact cache readings for the metrics exposition.
    pub fn cache_readings(&self) -> Vec<ArtifactReading> {
        self.artifacts
            .iter()
            .map(|a| ArtifactReading {
                name: a.name.clone(),
                stats: a.engine.cache_stats(),
                used_bytes: a.engine.cache_used_bytes(),
                budget_bytes: a.engine.cache_budget_bytes(),
            })
            .collect()
    }

    /// Engine phase timings merged across all artifacts and shards.
    pub fn engine_profile(&self) -> PhaseProfile {
        let mut merged = PhaseProfile::new();
        for a in &self.artifacts {
            merged.merge(&a.engine.profile());
        }
        merged
    }
}

/// Maps a query-engine failure to an HTTP status: bad input is the
/// client's fault (400), anything else is ours (500).
fn query_status(e: &QueryError) -> u16 {
    match e {
        QueryError::Parse(_) | QueryError::InvalidRange { .. } => 400,
        _ => 500,
    }
}

fn not_found(path: &str) -> Response {
    Response::json(404, render_error(&format!("no route for '{path}'")))
}

fn method_not_allowed(path: &str) -> Response {
    Response::json(
        405,
        render_error(&format!("method not allowed on '{path}'")),
    )
}

fn query_error(e: &QueryError) -> Response {
    Response::json(query_status(e), render_error(&e.to_string()))
}

/// Dispatches one request. `shard` is the calling worker's index, pinning
/// its queries to one engine shard so repeated queries stay cache-warm.
/// Returns the route label (for metrics) and the response.
pub fn handle(app: &App, shard: usize, req: &Request) -> (&'static str, Response) {
    match (req.method, req.path.as_str()) {
        (Method::Get, "/health") => ("health", health(app)),
        (Method::Get, "/artifacts") => ("artifacts", artifacts(app)),
        (Method::Get, "/metrics") => ("metrics", metrics(app)),
        (Method::Post, "/shutdown") => ("shutdown", shutdown(app)),
        (Method::Get, path) if path.starts_with("/q/") => {
            let name = &path[3..];
            if name.is_empty() || name.contains('/') {
                ("other", not_found(path))
            } else {
                query(app, shard, name, req)
            }
        }
        (Method::Post, path) if path.starts_with("/q/") && path.ends_with("/batch") => {
            // strip_prefix + strip_suffix instead of index arithmetic:
            // "/q/batch" satisfies both guards but holds no name, and a
            // slice like `&path[3..2]` would panic.
            match path
                .strip_prefix("/q/")
                .and_then(|rest| rest.strip_suffix("/batch"))
            {
                Some(name) if !name.is_empty() && !name.contains('/') => {
                    ("q_batch", batch(app, shard, name, req))
                }
                _ => ("other", not_found(path)),
            }
        }
        // Right route, wrong method.
        (_, path @ ("/health" | "/artifacts" | "/metrics" | "/shutdown")) => {
            ("other", method_not_allowed(path))
        }
        (_, path) if path.starts_with("/q/") => ("other", method_not_allowed(path)),
        (_, path) => ("other", not_found(path)),
    }
}

fn health(app: &App) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("status");
    w.string("ok");
    w.key("artifacts");
    w.number_u64(app.artifacts.len() as u64);
    w.key("draining");
    w.boolean(app.is_draining());
    w.end_object();
    Response::json(200, w.finish())
}

fn artifacts(app: &App) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("artifacts");
    w.begin_array();
    for a in &app.artifacts {
        w.begin_object();
        w.key("name");
        w.string(&a.name);
        w.key("shape");
        w.begin_array();
        for &d in a.engine.shape() {
            w.number_u64(d as u64);
        }
        w.end_array();
        w.key("ranks");
        w.begin_array();
        for &r in a.engine.ranks() {
            w.number_u64(r as u64);
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    Response::json(200, w.finish())
}

fn metrics(app: &App) -> Response {
    let text = app
        .metrics
        .render_prometheus(&app.cache_readings(), &app.engine_profile());
    Response::text(200, text)
}

fn shutdown(app: &App) -> Response {
    app.begin_drain();
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("draining");
    w.boolean(true);
    w.end_object();
    let mut r = Response::json(200, w.finish());
    r.close = true;
    r
}

fn query(app: &App, shard: usize, name: &str, req: &Request) -> (&'static str, Response) {
    let Some(art) = app.artifact(name) else {
        return (
            "q_range",
            Response::json(404, render_error(&format!("no artifact named '{name}'"))),
        );
    };
    let (label, spec, must_be_element) = match (req.query_param("range"), req.query_param("at")) {
        (Some(_), Some(_)) => {
            return (
                "q_range",
                Response::json(400, render_error("give either 'range' or 'at', not both")),
            )
        }
        (Some(spec), None) => ("q_range", spec, false),
        (None, Some(spec)) => ("q_at", spec, true),
        (None, None) => {
            return (
                "q_range",
                Response::json(400, render_error("missing 'range' or 'at' query parameter")),
            )
        }
    };
    let range = match Range::parse(spec, art.engine.shape()) {
        Ok(r) => r,
        Err(e) => return (label, query_error(&e)),
    };
    if must_be_element && range.numel() != 1 {
        return (
            label,
            Response::json(
                400,
                render_error(&format!(
                    "'at={spec}' selects {} elements, expected 1",
                    range.numel()
                )),
            ),
        );
    }
    if let Some(agg) = req.query_param("agg") {
        let computed = match agg {
            "sum" => art.engine.sum_on(shard, &range),
            "mean" => art.engine.mean_on(shard, &range),
            "fro" => art.engine.fro_norm_on(shard, &range),
            other => {
                return (
                    "q_agg",
                    Response::json(
                        400,
                        render_error(&format!("unknown agg '{other}' (want sum, mean or fro)")),
                    ),
                )
            }
        };
        return match computed {
            Ok(v) => (
                "q_agg",
                Response::json(200, crate::json::render_aggregate(spec, agg, v)),
            ),
            Err(e) => ("q_agg", query_error(&e)),
        };
    }
    match art.engine.query_on(shard, &range) {
        Ok(t) => (label, Response::json(200, render_result(spec, &t))),
        Err(e) => (label, query_error(&e)),
    }
}

fn batch(app: &App, shard: usize, name: &str, req: &Request) -> Response {
    let Some(art) = app.artifact(name) else {
        return Response::json(404, render_error(&format!("no artifact named '{name}'")));
    };
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::json(400, render_error("batch body is not UTF-8"));
    };
    let specs: Vec<&str> = body
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    if specs.is_empty() {
        return Response::json(
            400,
            render_error("empty batch body (one range spec per line)"),
        );
    }
    let mut ranges = Vec::with_capacity(specs.len());
    for spec in &specs {
        match Range::parse(spec, art.engine.shape()) {
            Ok(r) => ranges.push(r),
            Err(e) => return query_error(&e),
        }
    }
    match art.engine.query_batch_on(shard, &ranges) {
        Ok(results) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("results");
            w.begin_array();
            for (spec, t) in specs.iter().zip(&results) {
                write_result(&mut w, spec, t);
            }
            w.end_array();
            w.end_object();
            Response::json(200, w.finish())
        }
        Err(e) => query_error(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtucker_core::TuckerDecomp;
    use dtucker_query::QueryEngine;
    use dtucker_tensor::random::random_tucker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decomp(seed: u64) -> TuckerDecomp {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = random_tucker(&[8, 6, 5], &[3, 2, 2], &mut rng).unwrap();
        TuckerDecomp {
            core: m.core,
            factors: m.factors,
        }
    }

    fn app() -> App {
        App::new(vec![ServedArtifact {
            name: "demo".into(),
            engine: SharedQueryEngine::new(decomp(7), 2, 1 << 20).unwrap(),
        }])
    }

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        parse(raw.as_bytes())
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        parse(raw.as_bytes())
    }

    fn parse(raw: &[u8]) -> Request {
        let mut cursor = std::io::Cursor::new(raw.to_vec());
        crate::http::parse_request(
            &mut crate::http::ConnReader::new(),
            &mut cursor,
            &crate::http::Limits::default(),
        )
        .unwrap()
    }

    fn body(r: &Response) -> String {
        String::from_utf8(r.body.clone()).unwrap()
    }

    #[test]
    fn health_artifacts_and_shutdown() {
        let a = app();
        let (label, r) = handle(&a, 0, &get("/health"));
        assert_eq!((label, r.status), ("health", 200));
        assert_eq!(
            body(&r),
            "{\"status\":\"ok\",\"artifacts\":1,\"draining\":false}"
        );

        let (label, r) = handle(&a, 0, &get("/artifacts"));
        assert_eq!((label, r.status), ("artifacts", 200));
        assert_eq!(
            body(&r),
            "{\"artifacts\":[{\"name\":\"demo\",\"shape\":[8,6,5],\"ranks\":[3,2,2]}]}"
        );

        let (label, r) = handle(&a, 0, &post("/shutdown", ""));
        assert_eq!((label, r.status), ("shutdown", 200));
        assert!(r.close);
        assert!(a.is_draining());
        let (_, r) = handle(&a, 0, &get("/health"));
        assert!(body(&r).contains("\"draining\":true"));
    }

    #[test]
    fn query_routes_match_direct_engine_bytes() {
        let a = app();
        let mut direct = QueryEngine::new(decomp(7)).unwrap();

        // Range query through every shard gives the renderer's exact bytes.
        let want = render_result(
            "0:2,1:3,:",
            &direct
                .query(&Range::parse("0:2,1:3,:", &[8, 6, 5]).unwrap())
                .unwrap(),
        );
        for shard in 0..4 {
            let (label, r) = handle(&a, shard, &get("/q/demo?range=0:2,1:3,:"));
            assert_eq!((label, r.status), ("q_range", 200));
            assert_eq!(body(&r), want);
        }

        // Element via at=.
        let (label, r) = handle(&a, 1, &get("/q/demo?at=3,4,2"));
        assert_eq!((label, r.status), ("q_at", 200));
        let el = direct.element(&[3, 4, 2]).unwrap();
        assert_eq!(body(&r), format!("{{\"spec\":\"3,4,2\",\"value\":{el}}}"));

        // Aggregates.
        let (label, r) = handle(&a, 0, &get("/q/demo?range=:,:,:&agg=sum"));
        assert_eq!((label, r.status), ("q_agg", 200));
        let sum = direct
            .sum(&Range::parse(":,:,:", &[8, 6, 5]).unwrap())
            .unwrap();
        assert_eq!(
            body(&r),
            format!("{{\"spec\":\":,:,:\",\"agg\":\"sum\",\"value\":{sum}}}")
        );

        // Batch equals the direct batch through the same writer.
        let (_, r) = handle(&a, 0, &post("/q/demo/batch", "1,2,3\n0:2,:,4\n\n"));
        assert_eq!(r.status, 200);
        let got = body(&r);
        assert!(
            got.starts_with("{\"results\":[{\"spec\":\"1,2,3\""),
            "{got}"
        );
        let ranges = vec![
            Range::parse("1,2,3", &[8, 6, 5]).unwrap(),
            Range::parse("0:2,:,4", &[8, 6, 5]).unwrap(),
        ];
        let direct_batch = direct.query_batch(&ranges).unwrap();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("results");
        w.begin_array();
        write_result(&mut w, "1,2,3", &direct_batch[0]);
        write_result(&mut w, "0:2,:,4", &direct_batch[1]);
        w.end_array();
        w.end_object();
        assert_eq!(got, w.finish());
    }

    #[test]
    fn error_routes() {
        let a = app();
        let cases = [
            ("/q/ghost?range=:,:,:", 404),
            ("/q/demo", 400),                        // no range/at
            ("/q/demo?range=:,:", 400),              // wrong arity
            ("/q/demo?range=bogus,:,:", 400),        // unparseable term
            ("/q/demo?range=0:99,:,:", 400),         // out of bounds
            ("/q/demo?at=0:2,:,:", 400),             // at= must be one element
            ("/q/demo?range=:,:,:&agg=median", 400), // unknown aggregate
            ("/q/demo?range=1,1,1&at=1,1,1", 400),   // both selectors
            ("/nope", 404),
            ("/q/", 404),
            ("/q/a/b/c", 404),
        ];
        for (path, status) in cases {
            let (_, r) = handle(&a, 0, &get(path));
            assert_eq!(r.status, status, "{path}");
            assert!(body(&r).starts_with("{\"error\":"), "{path}");
        }
        let (_, r) = handle(&a, 0, &post("/health", ""));
        assert_eq!(r.status, 405);
        let (_, r) = handle(&a, 0, &post("/q/demo", "x"));
        assert_eq!(r.status, 405);
        let (_, r) = handle(&a, 0, &post("/q/ghost/batch", "1,1,1"));
        assert_eq!(r.status, 404);
        // Regression: "/q/batch" starts with "/q/" AND ends with "/batch";
        // naive slicing produced &path[3..2] and panicked.
        let (_, r) = handle(&a, 0, &post("/q/batch", "1,1,1"));
        assert_eq!(r.status, 404);
        let (_, r) = handle(&a, 0, &post("/q//batch", "1,1,1"));
        assert_eq!(r.status, 404);
        let (_, r) = handle(&a, 0, &post("/q/demo/batch", "\n\n"));
        assert_eq!(r.status, 400);
        let (_, r) = handle(&a, 0, &post("/q/demo/batch", "not-a-spec"));
        assert_eq!(r.status, 400);
        let mut bad = post("/q/demo/batch", "xx");
        bad.body = vec![0xff, 0xfe];
        let (_, r) = handle(&a, 0, &bad);
        assert_eq!(r.status, 400);
    }

    #[test]
    fn metrics_route_reflects_cache_traffic() {
        let a = app();
        for _ in 0..3 {
            let (_, r) = handle(&a, 0, &get("/q/demo?range=0:4,:,1:4"));
            assert_eq!(r.status, 200);
        }
        let (label, r) = handle(&a, 0, &get("/metrics"));
        assert_eq!((label, r.status), ("metrics", 200));
        let text = body(&r);
        assert!(text.contains("dtucker_cache_events_total{artifact=\"demo\",kind=\"hit\"}"));
        assert!(
            text.contains("dtucker_phase_seconds_total{phase=\"plan\"}"),
            "{text}"
        );
        let stats = a.artifact("demo").unwrap().engine.cache_stats();
        assert!(stats.hits >= 1, "{stats:?}");
    }
}
