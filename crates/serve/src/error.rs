//! Error type for the serving subsystem.

use dtucker_query::QueryError;
use dtucker_store::StoreError;
use std::fmt;
use std::io;

/// Errors surfaced by the server's setup and run paths. Per-request
/// failures never reach this type — they are mapped to HTTP error
/// responses inside the handler.
#[derive(Debug)]
pub enum ServeError {
    /// Binding, accepting, or socket configuration failed.
    Io(io::Error),
    /// Building a query engine over an artifact failed.
    Query(QueryError),
    /// Loading artifacts from the store failed.
    Store(StoreError),
    /// The server configuration is unusable.
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Query(e) => write!(f, "query engine error: {e}"),
            ServeError::Store(e) => write!(f, "store error: {e}"),
            ServeError::Config(d) => write!(f, "invalid serve configuration: {d}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Query(e) => Some(e),
            ServeError::Store(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: ServeError = io::Error::new(io::ErrorKind::AddrInUse, "busy").into();
        assert!(e.to_string().contains("busy"));
        assert!(e.source().is_some());
        let e: ServeError = QueryError::Parse("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        let e: ServeError = StoreError::Format("trunc".into()).into();
        assert!(e.to_string().contains("trunc"));
        let e = ServeError::Config("threads must be > 0".into());
        assert!(e.to_string().contains("threads"));
        assert!(e.source().is_none());
    }
}
