//! The server proper: listener, bounded admission queue, worker pool.
//!
//! Concurrency model:
//!
//! * One **acceptor** (the thread calling [`Server::run`]) polls a
//!   nonblocking listener so it can observe the drain flag between
//!   accepts. Accepted sockets go into a bounded queue; when the queue is
//!   full the acceptor answers `503` with `Retry-After` itself and closes
//!   the socket — load is shed at the door instead of building an
//!   unbounded backlog.
//! * `threads` **workers** pop connections and run the keep-alive loop.
//!   Worker `i` passes shard hint `i` to the handler, so its queries pin
//!   to engine shard `i % shard_count` and stay cache-warm (the
//!   [`SharedQueryEngine`] is built with one shard per worker).
//!
//! Graceful drain: `POST /shutdown` (or [`App::begin_drain`]) flips the
//! drain flag. The acceptor stops accepting and closes the queue; workers
//! finish the connections already admitted — every response during drain
//! carries `Connection: close` — then exit, and [`Server::run`] returns
//! final counters. There is no SIGTERM hook: catching signals requires
//! platform code outside std, so process managers should hit `/shutdown`
//! (documented in DESIGN.md §12).

use crate::error::{Result, ServeError};
use crate::handler::{handle, App, ServedArtifact};
use crate::http::{parse_request, write_response, ConnReader, Limits, ParseError, Response};
use dtucker_core::TuckerDecomp;
use dtucker_query::SharedQueryEngine;
use dtucker_store::{ArtifactKind, ArtifactStore};
use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7070` (port 0 picks a free port).
    pub addr: String,
    /// Worker thread count (also the engine shard count per artifact).
    pub threads: usize,
    /// Total query-cache byte budget **per artifact**, split across that
    /// artifact's shards.
    pub cache_bytes: usize,
    /// Bound on connections admitted but not yet picked up by a worker;
    /// beyond it the acceptor sheds with `503`.
    pub max_inflight: usize,
    /// Per-connection socket read timeout: caps how long a single read
    /// may stall. The slowloris backstop is `limits.max_request_duration`,
    /// which caps the *whole* request regardless of per-read progress.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Keep-alive requests served per connection before forcing a close
    /// (fairness under connection starvation).
    pub max_requests_per_conn: usize,
    /// Request parsing caps.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            threads: 4,
            cache_bytes: 64 << 20,
            max_inflight: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_conn: 1000,
            limits: Limits::default(),
        }
    }
}

/// Final counters returned by [`Server::run`] after drain completes.
#[derive(Debug, Clone, Copy)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests answered (any route, any status).
    pub requests: u64,
    /// Connections turned away with `503`.
    pub shed: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bounded MPMC queue of admitted connections.
struct ConnQueue {
    inner: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits `stream`, or hands it back if the queue is at capacity or
    /// closed. Returns the queue depth after a successful push.
    fn push(&self, stream: TcpStream) -> std::result::Result<usize, TcpStream> {
        let mut g = lock(&self.inner);
        if g.1 || g.0.len() >= self.capacity {
            return Err(stream);
        }
        g.0.push_back(stream);
        let depth = g.0.len();
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks for the next connection; `None` once closed and empty.
    fn pop(&self) -> Option<(TcpStream, usize)> {
        let mut g = lock(&self.inner);
        loop {
            if let Some(s) = g.0.pop_front() {
                let depth = g.0.len();
                return Some((s, depth));
            }
            if g.1 {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admissions and wakes every blocked worker; already-queued
    /// connections still drain.
    fn close(&self) {
        lock(&self.inner).1 = true;
        self.ready.notify_all();
    }
}

/// Servable `(name, decomposition)` pairs plus warnings for skipped files.
pub type LoadedArtifacts = (Vec<(String, TuckerDecomp)>, Vec<String>);

/// Loads every Tucker decomposition in `store`, returning the artifacts
/// ready to serve plus human-readable warnings for `.dts` files that were
/// skipped (foreign/corrupt files, or artifacts of a non-Tucker kind).
/// Callers decide where warnings go — the CLI sends them to stderr so
/// piped JSON stays clean.
pub fn load_store_artifacts(store: &ArtifactStore) -> Result<LoadedArtifacts> {
    let (artifacts, skipped) = store.scan()?;
    let mut out = Vec::new();
    let mut warnings: Vec<String> = skipped
        .iter()
        .map(|(path, reason)| format!("skipping {}: {reason}", path.display()))
        .collect();
    for (name, kind) in artifacts {
        match kind {
            ArtifactKind::Tucker => out.push((name.clone(), store.load_decomposition(&name)?)),
            other => warnings.push(format!("skipping '{name}': not servable (kind {other:?})")),
        }
    }
    Ok((out, warnings))
}

/// A bound listener plus its application state, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    app: Arc<App>,
}

impl Server {
    /// Binds `cfg.addr` and builds one sharded engine per artifact
    /// (shard count = `cfg.threads`, byte budget = `cfg.cache_bytes`).
    pub fn bind(cfg: ServeConfig, artifacts: Vec<(String, TuckerDecomp)>) -> Result<Server> {
        if artifacts.is_empty() {
            return Err(ServeError::Config(
                "no servable artifacts (store holds no Tucker decompositions)".to_string(),
            ));
        }
        let mut cfg = cfg;
        cfg.threads = cfg.threads.max(1);
        cfg.max_inflight = cfg.max_inflight.max(1);
        let mut served = Vec::with_capacity(artifacts.len());
        for (name, decomp) in artifacts {
            served.push(ServedArtifact {
                engine: SharedQueryEngine::new(decomp, cfg.threads, cfg.cache_bytes)?,
                name,
            });
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        Ok(Server {
            listener,
            cfg,
            app: Arc::new(App::new(served)),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle to the shared application state (drain flag, metrics) —
    /// lets embedders trigger [`App::begin_drain`] from outside.
    pub fn app(&self) -> Arc<App> {
        Arc::clone(&self.app)
    }

    /// Serves until drained. Blocks the calling thread (it becomes the
    /// acceptor); returns the lifetime counters once every worker exits.
    pub fn run(self) -> Result<ServerStats> {
        let Server { listener, cfg, app } = self;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(ConnQueue::new(cfg.max_inflight));

        let mut workers = Vec::with_capacity(cfg.threads);
        for i in 0..cfg.threads {
            let app = Arc::clone(&app);
            let queue = Arc::clone(&queue);
            let cfg = cfg.clone();
            workers.push(std::thread::spawn(move || {
                while let Some((stream, depth)) = queue.pop() {
                    app.metrics.set_queue_depth(depth);
                    serve_connection(&app, i, &cfg, stream);
                }
            }));
        }

        while !app.is_draining() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // The listener is nonblocking and accepted sockets can
                    // inherit that; connection handling needs blocking
                    // reads with timeouts.
                    if stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    app.metrics.record_connection();
                    if let Err(stream) = queue.push(stream) {
                        shed(&app, stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if transient_accept_error(&e) => {
                    // FD exhaustion and aborted handshakes are load
                    // conditions — the very thing a shedding server must
                    // survive. Back off briefly and keep accepting.
                    eprintln!("dtucker-serve: transient accept error: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => {
                    queue.close();
                    for w in workers {
                        let _ = w.join();
                    }
                    return Err(ServeError::Io(e));
                }
            }
        }

        queue.close();
        for w in workers {
            let _ = w.join();
        }
        Ok(ServerStats {
            connections: app.metrics.connection_count(),
            requests: app.metrics.request_count(),
            shed: app.metrics.shed_count(),
        })
    }
}

/// Accept errors caused by the peer or by load — aborted handshakes and
/// resource exhaustion (`EMFILE`/`ENFILE`/`ENOBUFS`) — rather than by a
/// broken listener. Shutting down on these would turn an overload spike
/// into an outage, so the accept loop logs and keeps going instead.
fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::OutOfMemory
    ) || matches!(e.raw_os_error(), Some(23 | 24 | 105)) // ENFILE, EMFILE, ENOBUFS (Linux)
}

/// Answers one over-capacity connection with `503` + `Retry-After` and
/// closes it. Runs on the acceptor, so it must never block on the peer:
/// the write is nonblocking and best-effort — a shed client that refuses
/// to read loses the response body, not the acceptor's time.
fn shed(app: &App, mut stream: TcpStream) {
    app.metrics.record_shed();
    let mut resp = Response::error(503, "server at capacity, retry shortly");
    resp.retry_after = Some(1);
    let mut buf = Vec::new();
    let _ = write_response(&mut buf, &resp, false); // writing to a Vec cannot fail
                                                    // On a nonblocking socket write_all cannot stall: a full send buffer
                                                    // surfaces as WouldBlock, and the peer simply loses the body.
    let _ = stream.set_nonblocking(true);
    let _ = stream.write_all(&buf);
}

/// Worker-side wrapper around the keep-alive loop: keeps the in-flight
/// gauge balanced and contains panics. A handler bug must cost one
/// connection, not one worker — a panic escaping to the worker thread
/// would permanently shrink the pool until no requests are served at
/// all. Every lock reachable from here is poison-tolerant, so resuming
/// after a panic is sound.
fn serve_connection(app: &App, worker: usize, cfg: &ServeConfig, stream: TcpStream) {
    app.metrics.connection_started();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        drive_connection(app, worker, cfg, stream)
    }));
    if outcome.is_err() {
        eprintln!(
            "dtucker-serve: worker {worker} recovered from a panic while serving a connection"
        );
    }
    app.metrics.connection_finished();
}

/// The per-connection keep-alive loop.
fn drive_connection(app: &App, worker: usize, cfg: &ServeConfig, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = ConnReader::new();

    for served in 1..=cfg.max_requests_per_conn {
        match parse_request(&mut reader, &mut stream, &cfg.limits) {
            Ok(req) => {
                let start = Instant::now();
                let (route, resp) = handle(app, worker, &req);
                app.metrics
                    .record_request(route, resp.status, start.elapsed());
                let keep = req.keep_alive
                    && !resp.close
                    && !app.is_draining()
                    && served < cfg.max_requests_per_conn;
                if write_response(&mut stream, &resp, keep).is_err() || !keep {
                    break;
                }
            }
            Err(ParseError::Closed) => break,
            Err(ParseError::Timeout) => {
                let resp = Response::error(408, "timed out waiting for a complete request");
                app.metrics.record_request("timeout", 408, Duration::ZERO);
                let _ = write_response(&mut stream, &resp, false);
                break;
            }
            Err(ParseError::Io(_)) => break,
            Err(ParseError::Bad { status, message }) => {
                let resp = Response::error(status, &message);
                app.metrics
                    .record_request("parse_error", status, Duration::ZERO);
                let _ = write_response(&mut stream, &resp, false);
                break;
            }
        }
    }
}
