//! dtucker-serve: a concurrent query-serving subsystem over stored
//! Tucker artifacts.
//!
//! The crate turns the single-threaded query engine into a small,
//! dependency-free network service: a multi-threaded HTTP/1.1 server —
//! hand-rolled on `std::net`, no async runtime — that loads `.dts`
//! artifacts from an [`ArtifactStore`](dtucker_store::ArtifactStore) and
//! answers element/fiber/slice/range reconstruction and aggregate
//! queries over them.
//!
//! Design commitments, in the order they matter:
//!
//! 1. **Answers are bit-identical to direct engine calls** at every
//!    thread count. Workers pin to per-worker engine shards
//!    ([`dtucker_query::SharedQueryEngine`]); since engine results are
//!    independent of cache state, concurrency is invisible in response
//!    bytes (pinned by integration tests at 1, 2 and 8 threads).
//! 2. **Hostile input cannot take the server down.** Every request
//!    dimension is capped ([`http::Limits`]), stalls hit socket
//!    timeouts, and nothing in the crate panics on bad input.
//! 3. **Overload sheds, it does not queue.** Admission is a bounded
//!    queue; past capacity the acceptor answers `503` + `Retry-After`
//!    at the door.
//! 4. **One JSON encoder.** Server responses and
//!    `dtucker-cli query --format json` share [`json::JsonWriter`], so
//!    scripted clients see identical bytes from either front end.
//!
//! The HTTP API and the tuning knobs are documented in DESIGN.md §12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Crate-level error type and `Result` alias.
pub mod error;
/// Route dispatch: maps parsed requests to engine calls and JSON responses.
pub mod handler;
/// Hand-rolled HTTP/1.1 parsing, limits, and response writing.
pub mod http;
/// The single JSON encoder shared by the server and the CLI.
pub mod json;
/// Request/latency/cache counters and Prometheus text rendering.
pub mod metrics;
/// Listener, worker pool, admission queue, and graceful drain.
pub mod server;

pub use error::{Result, ServeError};
pub use handler::{handle, App, ServedArtifact};
pub use http::{Limits, Method, Request, Response};
pub use json::JsonWriter;
pub use metrics::Metrics;
pub use server::{load_store_artifacts, ServeConfig, Server, ServerStats};
