//! Server metrics with a Prometheus text exposition.
//!
//! All hot-path instruments are lock-free atomics except the per-route
//! request counter, which sits behind a mutex-protected `BTreeMap` so
//! `/metrics` renders label sets in a deterministic order. Latency is a
//! fixed-bucket cumulative histogram (the standard Prometheus shape), so
//! recording is two atomic adds and an array increment regardless of
//! traffic volume.
//!
//! Engine-side observability (cache hit/miss/eviction counters, per-phase
//! plan/contract/cache timings) lives in the query crate; the renderer
//! here takes those readings as arguments and folds the server's own
//! handler timings into the same [`PhaseProfile`] currency via
//! [`PhaseProfile::record_n`].

use dtucker_core::PhaseProfile;
use dtucker_query::CacheStats;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Upper bounds (seconds) of the latency histogram buckets; an implicit
/// `+Inf` bucket follows the last entry.
pub const LATENCY_BUCKETS: [f64; 14] = [
    0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Cumulative fixed-bucket latency histogram.
#[derive(Debug, Default)]
struct Histogram {
    // One non-cumulative counter per bucket in LATENCY_BUCKETS, plus the
    // overflow bucket at the end; cumulated at render time.
    buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = LATENCY_BUCKETS
            .iter()
            .position(|&le| secs <= le)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// One artifact's cache reading for the exposition, taken from
/// `SharedQueryEngine` at render time.
#[derive(Debug)]
pub struct ArtifactReading {
    /// Artifact name (metric label).
    pub name: String,
    /// Summed cache counters across shards.
    pub stats: CacheStats,
    /// Payload bytes currently held.
    pub used_bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

/// Shared server instrumentation. One instance per server, shared by the
/// acceptor and every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: Mutex<BTreeMap<(String, u16), u64>>,
    latency: Histogram,
    shed_total: AtomicU64,
    connections_total: AtomicU64,
    queue_depth: AtomicU64,
    inflight: AtomicU64,
    handler_nanos: AtomicU64,
    handler_count: AtomicU64,
}

impl Metrics {
    /// A zeroed instrument set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request: its route label, response status,
    /// and handler latency.
    pub fn record_request(&self, route: &str, status: u16, elapsed: Duration) {
        let mut map = lock(&self.requests);
        *map.entry((route.to_string(), status)).or_insert(0) += 1;
        drop(map);
        self.latency.observe(elapsed);
        self.handler_nanos.fetch_add(
            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        self.handler_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection turned away with `503`.
    pub fn record_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one accepted connection.
    pub fn record_connection(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the accept-queue depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    /// Adjusts the in-flight connection gauge by ±1.
    pub fn connection_started(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// See [`Metrics::connection_started`].
    pub fn connection_finished(&self) {
        // Saturating: a stray call can at worst pin the gauge at zero.
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// Total requests turned away so far.
    pub fn shed_count(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Total requests recorded so far (any route, any status).
    pub fn request_count(&self) -> u64 {
        self.latency.count.load(Ordering::Relaxed)
    }

    /// Total connections accepted so far.
    pub fn connection_count(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// The server's own handler time as a [`PhaseProfile`] phase, for
    /// merging with the engines' plan/contract/cache phases.
    pub fn handler_profile(&self) -> PhaseProfile {
        let mut p = PhaseProfile::new();
        p.record_n(
            "serve.handle",
            Duration::from_nanos(self.handler_nanos.load(Ordering::Relaxed)),
            self.handler_count.load(Ordering::Relaxed),
        );
        p
    }

    /// Renders the Prometheus text exposition. `artifacts` supplies the
    /// per-artifact cache readings and `engine_profile` the merged
    /// per-phase engine timings (the handler phase is appended
    /// automatically).
    pub fn render_prometheus(
        &self,
        artifacts: &[ArtifactReading],
        engine_profile: &PhaseProfile,
    ) -> String {
        let mut out = String::new();

        out.push_str("# HELP dtucker_requests_total Requests served, by route and status.\n");
        out.push_str("# TYPE dtucker_requests_total counter\n");
        for ((route, status), count) in lock(&self.requests).iter() {
            out.push_str(&format!(
                "dtucker_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}\n"
            ));
        }

        out.push_str("# HELP dtucker_request_seconds Handler latency.\n");
        out.push_str("# TYPE dtucker_request_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "dtucker_request_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency.buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "dtucker_request_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "dtucker_request_seconds_sum {}\n",
            self.latency.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!(
            "dtucker_request_seconds_count {}\n",
            self.latency.count.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP dtucker_shed_total Connections turned away with 503.\n");
        out.push_str("# TYPE dtucker_shed_total counter\n");
        out.push_str(&format!("dtucker_shed_total {}\n", self.shed_count()));

        out.push_str("# HELP dtucker_connections_total Connections accepted.\n");
        out.push_str("# TYPE dtucker_connections_total counter\n");
        out.push_str(&format!(
            "dtucker_connections_total {}\n",
            self.connections_total.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP dtucker_accept_queue_depth Connections waiting for a worker.\n");
        out.push_str("# TYPE dtucker_accept_queue_depth gauge\n");
        out.push_str(&format!(
            "dtucker_accept_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP dtucker_inflight_connections Connections currently being served.\n");
        out.push_str("# TYPE dtucker_inflight_connections gauge\n");
        out.push_str(&format!(
            "dtucker_inflight_connections {}\n",
            self.inflight.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP dtucker_cache_events_total Query-cache events, by artifact and kind.\n",
        );
        out.push_str("# TYPE dtucker_cache_events_total counter\n");
        for a in artifacts {
            for (kind, v) in [
                ("hit", a.stats.hits),
                ("miss", a.stats.misses),
                ("insert", a.stats.insertions),
                ("evict", a.stats.evictions),
            ] {
                out.push_str(&format!(
                    "dtucker_cache_events_total{{artifact=\"{}\",kind=\"{kind}\"}} {v}\n",
                    a.name
                ));
            }
        }
        out.push_str("# HELP dtucker_cache_bytes Query-cache bytes, by artifact.\n");
        out.push_str("# TYPE dtucker_cache_bytes gauge\n");
        for a in artifacts {
            out.push_str(&format!(
                "dtucker_cache_bytes{{artifact=\"{}\",kind=\"used\"}} {}\n",
                a.name, a.used_bytes
            ));
            out.push_str(&format!(
                "dtucker_cache_bytes{{artifact=\"{}\",kind=\"budget\"}} {}\n",
                a.name, a.budget_bytes
            ));
        }

        let mut profile = engine_profile.clone();
        profile.merge(&self.handler_profile());
        out.push_str("# HELP dtucker_phase_seconds_total Accumulated per-phase wall clock.\n");
        out.push_str("# TYPE dtucker_phase_seconds_total counter\n");
        for (name, d, count) in profile.phases() {
            out.push_str(&format!(
                "dtucker_phase_seconds_total{{phase=\"{name}\"}} {}\n",
                d.as_secs_f64()
            ));
            out.push_str(&format!(
                "dtucker_phase_calls_total{{phase=\"{name}\"}} {count}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let m = Metrics::new();
        m.record_request("q_range", 200, Duration::from_micros(300));
        m.record_request("q_range", 200, Duration::from_micros(800));
        m.record_request("metrics", 200, Duration::from_micros(50));
        m.record_request("q_range", 400, Duration::from_millis(1));
        m.record_shed();
        m.record_connection();
        m.set_queue_depth(3);
        m.connection_started();
        assert_eq!(m.request_count(), 4);
        assert_eq!(m.shed_count(), 1);

        let reading = ArtifactReading {
            name: "demo".into(),
            stats: CacheStats {
                hits: 5,
                misses: 2,
                insertions: 2,
                evictions: 1,
            },
            used_bytes: 4096,
            budget_bytes: 1 << 20,
        };
        let mut engine = PhaseProfile::new();
        engine.record("contract", Duration::from_millis(2));
        let text = m.render_prometheus(&[reading], &engine);

        assert!(text.contains("dtucker_requests_total{route=\"q_range\",status=\"200\"} 2\n"));
        assert!(text.contains("dtucker_requests_total{route=\"q_range\",status=\"400\"} 1\n"));
        assert!(text.contains("dtucker_request_seconds_count 4\n"));
        assert!(text.contains("dtucker_request_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("dtucker_shed_total 1\n"));
        assert!(text.contains("dtucker_connections_total 1\n"));
        assert!(text.contains("dtucker_accept_queue_depth 3\n"));
        assert!(text.contains("dtucker_inflight_connections 1\n"));
        assert!(text.contains("dtucker_cache_events_total{artifact=\"demo\",kind=\"hit\"} 5\n"));
        assert!(text.contains("dtucker_cache_bytes{artifact=\"demo\",kind=\"used\"} 4096\n"));
        assert!(text.contains("dtucker_phase_seconds_total{phase=\"contract\"}"));
        assert!(text.contains("dtucker_phase_calls_total{phase=\"serve.handle\"} 4\n"));

        m.connection_finished();
        m.connection_finished(); // extra call saturates at zero
        let text = m.render_prometheus(&[], &PhaseProfile::new());
        assert!(text.contains("dtucker_inflight_connections 0\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record_request("h", 200, Duration::from_secs(10)); // lands in +Inf
        m.record_request("h", 200, Duration::from_nanos(10)); // first bucket
        let text = m.render_prometheus(&[], &PhaseProfile::new());
        assert!(
            text.contains("dtucker_request_seconds_bucket{le=\"0.0001\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("dtucker_request_seconds_bucket{le=\"2.5\"} 1\n"));
        assert!(text.contains("dtucker_request_seconds_bucket{le=\"+Inf\"} 2\n"));
    }
}
