//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API subset this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `BenchmarkId::new`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short calibration run picks an
//! iteration count targeting a few milliseconds per sample, then
//! `sample_size` samples are timed and the median per-iteration wall time
//! is printed. No statistics beyond min/median/max, no HTML reports.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall time per sample during measurement.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);
/// Cap on total time spent per benchmark.
const MAX_BENCH_TIME: Duration = Duration::from_secs(3);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 50,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Display, f: F) {
        self.run(&name.to_string(), f);
    }

    /// Benchmarks `f`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.0, |bch| f(bch, input));
    }

    /// Ends the group (printing happens eagerly; this is a no-op hook).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.name, name)
        };
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut per_iter = bencher.samples;
        if per_iter.is_empty() {
            println!("{label:<44} (no samples)");
            return;
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{label:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Identifier combining a function name with a parameter value.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Times closures; handed to each benchmark body.
pub struct Bencher {
    /// Per-iteration wall times in nanoseconds, one per sample.
    samples: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` median-able samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit in TARGET_SAMPLE?
        let start = Instant::now();
        std::hint::black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as usize;

        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed().as_nanos();
            self.samples.push(elapsed / iters as u128);
            if bench_start.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
    }
}

/// Prevents the compiler from optimizing away a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }
}
