//! Offline stand-in for the `bytes` crate.
//!
//! Provides the little-endian [`Buf`]/[`BufMut`] subset this workspace
//! uses for tensor serialization: advancing reads from `&[u8]` and
//! appending writes to `Vec<u8>`.

#![forbid(unsafe_code)]

/// Sequential reader over a byte source; reads advance the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32` and advances.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64` and advances.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "copy_to_slice: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writer that appends bytes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        buf.put_slice(b"HEAD");
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f64_le(-1.25);

        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HEAD");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), -1.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn over_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let mut out = [0u8; 3];
        r.copy_to_slice(&mut out);
    }
}
